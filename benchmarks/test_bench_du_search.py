"""Bench: automated D/U selection (section 3.2's optimization goal).

Runs the training-based search on a scaled VGG-8 and checks that the
selected working point trades SRAM area for accuracy the way Fig. 11
reports: more compression -> less SRAM, within-tolerance accuracy.
"""

from repro.experiments import du_search
from repro.experiments.common import format_table


def test_bench_du_search(benchmark):
    config = du_search.fast_config()
    config.pretrain_epochs = 4
    config.transfer_epochs = 3
    config.n_train = 128
    result = benchmark.pedantic(du_search.run, args=(config,), rounds=1, iterations=1)
    print()
    rows = [
        (
            f"{e.candidate.d}-{e.candidate.u}",
            e.accuracy,
            e.sram_area_mm2,
            e.trainable_params,
        )
        for e in result.evaluations
    ]
    print(format_table(rows, ["D-U", "accuracy", "sram_mm2", "trainable"]))
    selected = result.selected
    print(
        f"selected: D={selected.candidate.d} U={selected.candidate.u} "
        f"(floor {result.accuracy_floor:.3f})"
    )
    # The selection is feasible and minimal by construction; check the
    # landscape shape instead: SRAM area strictly falls with D*U.
    by_du = sorted(result.evaluations, key=lambda e: e.candidate.du)
    areas = [e.sram_area_mm2 for e in by_du]
    assert areas == sorted(areas, reverse=True)
    assert selected.accuracy >= result.accuracy_floor
