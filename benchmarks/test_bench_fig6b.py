"""Fig. 6(b) — ATL transferability decay.

Paper shape: with everything frozen except the classifier, transfer
accuracy drops relative to training all layers; the decay grows as more
of the depth is frozen ("still 1/2~1/4 weights" trainable is needed).
"""

import pytest

from repro.experiments import fig6b
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return fig6b.run(fig6b.fast_config())


def test_bench_fig6b_runs(benchmark):
    config = fig6b.fast_config()
    config.frozen_counts = (0, 6)
    config.pretrain_epochs = 2
    config.transfer_epochs = 2
    config.n_train = 64
    run_result = benchmark.pedantic(fig6b.run, args=(config,), rounds=1, iterations=1)
    assert run_result.points


def test_bench_fig6b_decay(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [(p.n_frozen_convs, p.accuracy, p.trainable_params) for p in result.points]
    print(format_table(rows, ["frozen_convs", "accuracy", "trainable"]))
    accs = result.accuracies()
    # Fully frozen features never beat full fine-tuning.
    assert accs[-1] <= accs[0] + 1e-9
    # Trainable parameter count decays monotonically with freezing.
    params = [p.trainable_params for p in result.points]
    assert params == sorted(params, reverse=True)


def test_bench_fig6b_source_learned(benchmark, result):
    benchmark(lambda: None)
    assert result.source_accuracy > 0.7
