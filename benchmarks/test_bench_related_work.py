"""Bench: the section 2.3 sub-8-bit quantization claim.

"Ultra-scaled networks below 8-bit quantization, such as TNN and BNN,
are still difficult to implement on modern networks like ResNet and
MobileNet."  Post-training weight quantization at int8/int4/ternary/
binary on VGG-8 vs MobileNet: int8 is free for both, the extreme
alphabets cost the depthwise model most.
"""

from repro.experiments import related_work_quant
from repro.experiments.common import format_table


def test_bench_sub8bit_quantization(benchmark):
    config = related_work_quant.fast_config()
    result = benchmark.pedantic(
        related_work_quant.run, args=(config,), rounds=1, iterations=1
    )
    print()
    print(f"baselines: {result.baselines}")
    print(
        format_table(
            result.rows(),
            ["model", "scheme", "accuracy", "drop", "weight_err"],
        )
    )
    for model in config.model_names:
        # int8 post-training quantization is essentially free...
        assert result.at(model, "int8").accuracy_drop < 0.05
        # ...while the binary alphabet costs real accuracy.
        assert result.at(model, "binary").accuracy_drop > result.at(
            model, "int8"
        ).accuracy_drop
    # Weight-space damage of the extreme schemes is worst on MobileNet.
    assert (
        result.at("mobilenet", "ternary").weight_error
        > 0.8 * result.at("vgg8", "ternary").weight_error
    )
