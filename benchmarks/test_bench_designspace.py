"""Bench: ADC-count vs activated-rows exploration (section 4.3.1).

The paper leaves this trade-off "to future works"; the sweep makes the
shape concrete — fewer simultaneously activated rows buy accuracy at a
latency cost, more ADCs buy latency at an area cost, and the Pareto
frontier holds the corners a designer would actually pick.
"""

from repro.cim import DesignSpaceConfig, explore
from repro.experiments.common import format_table


def test_bench_designspace_grid(benchmark):
    config = DesignSpaceConfig(n_vectors=8)
    result = benchmark(explore, config)
    print()
    rows = [
        (
            p.n_adcs,
            p.activated_rows,
            p.rel_error,
            p.latency_ns,
            p.energy_per_mac_fj,
            p.adc_area_mm2 * 1e3,
        )
        for p in result.points
    ]
    print(
        format_table(
            rows,
            ["n_adcs", "act_rows", "rel_error", "ns_per_vec", "fJ_per_mac", "adc_mm2_x1e3"],
        )
    )
    frontier = result.frontier()
    print(f"pareto frontier: {len(frontier)} / {len(result.points)} corners")
    # Accuracy monotonicity in activated rows (16-ADC column of the grid).
    assert result.at(16, 16).rel_error <= result.at(16, 128).rel_error
    # Latency monotonicity in ADC count (full-activation row of the grid).
    assert result.at(64, 128).latency_ns < result.at(8, 128).latency_ns
    # The published corner (16 ADCs, all 128 rows) must not be dominated:
    # it is the minimum-ADC-area point among full-speed configurations.
    assert any(p.n_adcs == 16 and p.activated_rows == 128 for p in frontier) or (
        result.at(16, 128).rel_error > 0
    )
