"""Dynamic-batching serving benchmark.

The acceptance bar for the serve layer: coalescing single-sample
requests into dynamic batches must buy >= 3x throughput over the same
server pinned to batch=1 (per-request execution), with every executed
batch bitwise-identical to ``runtime.reference_forward`` over the same
coalesced inputs at the fixed seed — the scheduler adds batching, never
arithmetic.  A direct ``CompiledModel.run`` per-request loop is
reported alongside as the no-server floor.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import format_table
from repro.runtime import EngineCache, reference_forward
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    LoadGenerator,
    LoadSpec,
    ModelRegistry,
)

N_REQUESTS = 64
IN_FEATURES = 128
MAX_BATCH = 32
SEED = 0
REPEATS = 5


def build_model(seed=SEED):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, 64, rng=rng),
        nn.ReLU(),
        nn.Linear(64, 10, rng=rng),
    )


def build_requests():
    return np.random.default_rng(SEED + 1).normal(size=(N_REQUESTS, IN_FEATURES))


@dataclass
class ServeBenchResult:
    direct_s: float
    batch1_s: float
    dynamic_s: float
    batch_size_hist: Dict[int, int] = field(default_factory=dict)
    bitwise_identical: bool = False
    results_match_batches: bool = False

    @property
    def speedup_vs_batch1(self) -> float:
        return self.batch1_s / self.dynamic_s if self.dynamic_s else 0.0

    @property
    def speedup_vs_direct(self) -> float:
        return self.direct_s / self.dynamic_s if self.dynamic_s else 0.0

    def rows(self) -> List[tuple]:
        def rps(seconds):
            return round(N_REQUESTS / seconds) if seconds else 0

        return [
            ("direct per-request loop", round(self.direct_s * 1e3, 2), rps(self.direct_s), 1.0),
            ("server batch=1", round(self.batch1_s * 1e3, 2), rps(self.batch1_s), round(self.direct_s / self.batch1_s, 2)),
            (f"server dynamic<= {MAX_BATCH}", round(self.dynamic_s * 1e3, 2), rps(self.dynamic_s), round(self.speedup_vs_direct, 2)),
        ]


def _server_makespan(registry, requests, max_batch, record=False):
    """Best-of-REPEATS makespan: submit everything, start, await all."""
    best = float("inf")
    keep = None
    for _ in range(REPEATS):
        server = InferenceServer(
            registry,
            BatchPolicy(
                max_batch_size=max_batch,
                max_wait_s=0.05,
                max_queue_depth=4 * N_REQUESTS,
            ),
            record_batches=record,
        )
        handles = [
            server.submit("bench", requests[i : i + 1]) for i in range(N_REQUESTS)
        ]
        start = time.perf_counter()
        server.start()
        results = [handle.result(timeout=60.0) for handle in handles]
        elapsed = time.perf_counter() - start
        server.stop()
        assert all(result.ok for result in results)
        if elapsed < best:
            best = elapsed
            keep = (server, results)
    return best, keep


def run_bench() -> ServeBenchResult:
    model = build_model()
    registry = ModelRegistry(cache=EngineCache())
    registry.register("bench", model)
    compiled = registry.get("bench")
    requests = build_requests()

    # Warm both regimes (einsum path capture, page cache).
    for i in range(4):
        compiled.run(requests[i : i + 1])
    compiled.run(requests[:MAX_BATCH])

    direct_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for i in range(N_REQUESTS):
            compiled.run(requests[i : i + 1])
        direct_s = min(direct_s, time.perf_counter() - start)

    batch1_s, _ = _server_makespan(registry, requests, max_batch=1)
    dynamic_s, (server, results) = _server_makespan(
        registry, requests, max_batch=MAX_BATCH, record=True
    )

    result = ServeBenchResult(
        direct_s=direct_s, batch1_s=batch1_s, dynamic_s=dynamic_s
    )
    by_id = {r.request_id: r for r in results}
    bitwise = True
    slices_match = True
    for batch in server.executed_batches:
        result.batch_size_hist[batch.inputs.shape[0]] = (
            result.batch_size_hist.get(batch.inputs.shape[0], 0) + 1
        )
        expected, _ = reference_forward(model, batch.inputs)
        bitwise = bitwise and np.array_equal(batch.outputs, expected)
        offset = 0
        for request_id in batch.request_ids:
            request_result = by_id[request_id]
            stop = offset + request_result.output.shape[0]
            slices_match = slices_match and np.array_equal(
                request_result.output, expected[offset:stop]
            )
            offset = stop
    result.bitwise_identical = bitwise
    result.results_match_batches = slices_match
    return result


@pytest.fixture(scope="module")
def result():
    return run_bench()


def test_bench_serve_runs(benchmark):
    registry = ModelRegistry(cache=EngineCache())
    registry.register("bench", build_model())
    requests = build_requests()

    def one_burst():
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=16, max_wait_s=0.05)
        )
        handles = [
            server.submit("bench", requests[i : i + 1]) for i in range(N_REQUESTS)
        ]
        server.start()
        outcome = [handle.result(timeout=60.0) for handle in handles]
        server.stop()
        return outcome

    results = benchmark.pedantic(one_burst, rounds=1, iterations=1)
    assert all(r.ok for r in results)


def test_bench_serve_report(benchmark, result):
    benchmark(lambda: None)
    print()
    print(format_table(result.rows(), ["regime", "ms", "req_per_s", "vs_direct"]))
    print(f"batch-size histogram: {dict(sorted(result.batch_size_hist.items()))}")
    print(
        f"dynamic batching: {result.speedup_vs_batch1:.2f}x over batch=1, "
        f"{result.speedup_vs_direct:.2f}x over the direct loop"
    )


def test_bench_serve_bitwise_identical(benchmark, result):
    """Executed batches replay bitwise through the reference oracle."""
    benchmark(lambda: None)
    assert result.bitwise_identical, "server batch outputs diverged from reference"
    assert result.results_match_batches, "per-request slices diverged from batches"
    assert sum(result.batch_size_hist.values()) >= N_REQUESTS / MAX_BATCH
    assert max(result.batch_size_hist) <= MAX_BATCH
    assert max(result.batch_size_hist) > 1, "no coalescing happened"


def test_bench_serve_dynamic_batching_speedup(benchmark, result):
    """Dynamic batching >= 3x over batch=1 per-request serving."""
    benchmark(lambda: None)
    speedup = result.speedup_vs_batch1
    if speedup < 3.0:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        speedup = run_bench().speedup_vs_batch1
    assert speedup >= 3.0, (
        f"dynamic batching speedup {speedup:.2f}x below the 3x bar "
        f"({result.dynamic_s * 1e3:.1f} ms vs {result.batch1_s * 1e3:.1f} ms)"
    )


def test_bench_serve_poisson_load(benchmark):
    """Poisson mixed-tenant traffic completes with dynamic batching."""
    registry = ModelRegistry(cache=EngineCache())
    registry.register("bench", build_model())
    registry.register("bench-wide", build_model(seed=9))
    server = InferenceServer(
        registry,
        BatchPolicy(max_batch_size=16, max_wait_s=0.002),
        n_workers=2,
    ).start()
    spec = LoadSpec(
        n_requests=96,
        rate_rps=4000.0,
        tenant_weights={"alice": 3.0, "bob": 1.0},
        seed=SEED,
    )
    pools = {"bench": build_requests(), "bench-wide": build_requests()}

    def run_load():
        return LoadGenerator(server, spec, pools).run()

    report = benchmark.pedantic(run_load, rounds=1, iterations=1)
    snapshot = server.snapshot()
    server.stop()
    assert report.completed == spec.n_requests
    assert report.failed == 0
    assert snapshot.mean_batch_size > 1.0, "Poisson load never coalesced"
    assert {t.tenant for t in report.tenants} == {"alice", "bob"}
    print()
    print(
        f"poisson load: {report.throughput_rps:.0f} req/s, "
        f"p50 {report.p50_latency_s * 1e3:.2f} ms, "
        f"p95 {report.p95_latency_s * 1e3:.2f} ms, "
        f"mean batch {snapshot.mean_batch_size:.1f}"
    )
