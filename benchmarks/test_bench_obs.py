"""Observability overhead benchmark.

The acceptance bar for the tracing subsystem: with tracing *disabled*
(the default), ``CompiledModel.run`` must stay within 3% of the
pre-instrumentation execution path — a closure that builds the run
state and walks ``_execute_plan`` directly, with no tracer guard at
all.  And tracing must never touch arithmetic: runs with the tracer
installed are bitwise identical to untraced runs and to
``runtime.reference_forward``.
"""

import time
from typing import List

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import format_table
from repro.obs import trace
from repro.runtime import EngineCache, compile_model, reference_forward
from repro.runtime.compiled import _RunState

IN_FEATURES = 128
BATCH = 8
SEED = 0
CALLS = 200
REPEATS = 7
OVERHEAD_BAR = 0.03


def build_model():
    rng = np.random.default_rng(SEED)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, 64, rng=rng),
        nn.ReLU(),
        nn.Linear(64, 10, rng=rng),
    )


def build_batch():
    return np.random.default_rng(SEED + 1).normal(size=(BATCH, IN_FEATURES))


def _baseline_runner(compiled):
    """The pre-instrumentation hot path: no tracer guard, no branch."""
    execute = compiled._execute_plan
    encoding = compiled.config.encoding
    rng = compiled._rng

    def run(x):
        state = _RunState(rng=rng, encoding=encoding)
        return execute(np.asarray(x, dtype=np.float64), state), state.stats

    return run


def _time_leg(fn, x) -> float:
    start = time.perf_counter()
    for _ in range(CALLS):
        fn(x)
    return time.perf_counter() - start


def measure_overhead() -> tuple:
    compiled = compile_model(build_model(), cache=EngineCache())
    x = build_batch()
    baseline = _baseline_runner(compiled)
    # Warm both paths (einsum caching, page cache).
    for _ in range(8):
        baseline(x)
        compiled.run(x)
    assert trace.current() is None, "tracing must be off for this benchmark"
    # Interleave the legs so slow drift on a shared runner (thermal,
    # co-running jobs) hits both paths alike; best-of then discards the
    # transient spikes.
    baseline_s = guarded_s = float("inf")
    for _ in range(REPEATS):
        baseline_s = min(baseline_s, _time_leg(baseline, x))
        guarded_s = min(guarded_s, _time_leg(compiled.run, x))
    return baseline_s, guarded_s


@pytest.fixture(scope="module")
def overhead():
    return measure_overhead()


def test_bench_obs_report(benchmark, overhead):
    benchmark(lambda: None)
    baseline_s, guarded_s = overhead
    rows: List[tuple] = [
        ("pre-instrumentation loop", round(baseline_s * 1e3, 2), 1.0),
        (
            "run() with tracer guard",
            round(guarded_s * 1e3, 2),
            round(guarded_s / baseline_s, 4),
        ),
    ]
    print()
    print(format_table(rows, ["path", f"ms / {CALLS} calls", "ratio"]))


def test_bench_obs_disabled_overhead_under_3pct(benchmark, overhead):
    """Tracing off: the guard costs < 3% end to end."""
    benchmark(lambda: None)
    baseline_s, guarded_s = overhead
    ratio = guarded_s / baseline_s
    if ratio > 1.0 + OVERHEAD_BAR:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        baseline_s, guarded_s = measure_overhead()
        ratio = guarded_s / baseline_s
    assert ratio <= 1.0 + OVERHEAD_BAR, (
        f"disabled-tracing overhead {100 * (ratio - 1):.2f}% exceeds "
        f"{100 * OVERHEAD_BAR:.0f}% ({guarded_s * 1e3:.2f} ms vs "
        f"{baseline_s * 1e3:.2f} ms per {CALLS} calls)"
    )


def test_bench_obs_tracing_never_touches_arithmetic(benchmark):
    """Traced, untraced, and reference outputs are bitwise identical."""
    benchmark(lambda: None)
    model = build_model()
    compiled = compile_model(model, cache=EngineCache())
    x = build_batch()
    expected, _ = reference_forward(model, x)
    untraced, _ = compiled.run(x, rng=np.random.default_rng(SEED + 2))
    with trace.tracing() as tracer:
        traced, _ = compiled.run(x, rng=np.random.default_rng(SEED + 2))
    assert len(tracer) > 0, "tracing was enabled but recorded nothing"
    assert np.array_equal(untraced, traced)
    assert np.array_equal(untraced, expected)
