"""Warm-start benchmark: artifact load must beat cold compile >= 5x.

The acceptance bar for the persistent artifact store: restoring a
serving-scale compiled classifier from a snapshot must be at least 5x
faster than programming it from scratch (quantize + bit planes + tile
placement + kernel fusion), with outputs bitwise identical to the
freshly compiled model — both measured by the same
``experiments/warmstart_study`` run, so the numbers and the identity
check come from the same artifacts.
"""

import pytest

from repro.experiments import warmstart_study
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return warmstart_study.run(warmstart_study.full_config())


def test_bench_warmstart_runs(benchmark):
    config = warmstart_study.fast_config()
    run_result = benchmark.pedantic(
        warmstart_study.run, args=(config,), rounds=1, iterations=1
    )
    assert run_result.results


def test_bench_warmstart_report(benchmark, result):
    benchmark(lambda: None)
    print()
    print(
        format_table(
            result.rows(),
            [
                "model",
                "layers",
                "cold_ms",
                "save_ms",
                "load_ms",
                "speedup",
                "artifact_MB",
                "bitwise",
            ],
        )
    )


def test_bench_warmstart_bitwise_identical(benchmark, result):
    # The same study run that produced the timings verified the loaded
    # models' outputs bit for bit against the freshly compiled ones.
    benchmark(lambda: None)
    for entry in result.results:
        assert entry.bitwise_identical, f"{entry.model} outputs diverged"


def test_bench_warmstart_speedup(benchmark, result):
    """Serving-scale warm start: load >= 5x faster than cold compile."""
    benchmark(lambda: None)
    entry = result.result("mlp")
    assert entry.bitwise_identical
    if entry.speedup < 5.0:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        entry = warmstart_study.run(warmstart_study.full_config()).result("mlp")
    assert entry.speedup >= 5.0, (
        f"warm-start speedup {entry.speedup:.2f}x below the 5x bar "
        f"({entry.load_ms:.1f} ms load vs {entry.cold_compile_ms:.1f} ms "
        f"cold compile)"
    )
    assert entry.bitwise_identical
