"""Fig. 12 — detection mAP and chip area across deployment methods.

Paper shape: chip area YOLoC ~9.7x smaller than all-SRAM YOLO and ~2.4x
smaller than all-SRAM Tiny-YOLO; mAP YOLoC ~= all-trainable SRAM-CiM
(-0.5%..+0.2%), DeepConv below, Tiny-YOLO well below.
"""

import pytest

from repro.experiments import fig12
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return fig12.run(fig12.fast_config())


def test_bench_fig12_runs(benchmark):
    config = fig12.fast_config()
    config.n_train = 32
    config.n_test = 24
    config.pretrain_epochs = 2
    config.transfer_epochs = 2
    run_result = benchmark.pedantic(fig12.run, args=(config,), rounds=1, iterations=1)
    assert run_result.rows


def test_bench_fig12_chip_area(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [
        (a.method, a.rom_cim_cm2, a.sram_cim_cm2, a.total_cm2) for a in result.areas
    ]
    print(format_table(rows, ["method", "rom_cm2", "sram_cm2", "total_cm2"]))
    areas = result.area_by_method()
    assert areas["sram_cim"] / areas["yoloc"] > 5      # paper: 9.7x
    assert areas["tiny_yolo"] / areas["yoloc"] > 1.5   # paper: 2.4x
    assert areas["yoloc"] == min(areas.values())


def test_bench_fig12_map_orderings(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [
        (r.method, r.target, r.map50, r.trainable_params) for r in result.rows
    ]
    print(format_table(rows, ["method", "target", "mAP@0.5", "trainable"]))
    table = result.map_table()["voc"]
    # The smaller backbone trails the transferred big-backbone methods.
    assert table["yoloc"] >= table["tiny_yolo"]
    # ReBranch stays within reach of the fully-trainable baseline.
    assert table["yoloc"] >= table["sram_cim"] - 0.25


def test_bench_fig12_source_detector_learned(benchmark, result):
    benchmark(lambda: None)
    assert result.source_map["yolo"] > 0.05
