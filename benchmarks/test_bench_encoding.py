"""Bench: activation-encoding speed-accuracy trade-off (section 3.1).

Not a numbered figure — the paper flags the pulse-width alternative in
one sentence — but the axes it names (cycles vs accuracy) are measured
here for all three encodings at 2/4/8-bit activations.
"""

from repro.experiments import encoding_study
from repro.experiments.common import format_table


def test_bench_encoding_design_space(benchmark):
    result = benchmark(encoding_study.run, encoding_study.fast_config())
    print()
    print(
        format_table(
            result.rows(),
            [
                "encoding",
                "bits",
                "wl_cycles",
                "conv/col",
                "rel_error",
                "fJ_per_mac",
                "ns_per_vec",
            ],
        )
    )
    keys = result.by_key()
    # Speed: pulse-width < bit-serial < unary at 8-bit activations.
    assert keys[("pulse-width", 8)].latency_ns < keys[("bit-serial", 8)].latency_ns
    assert keys[("bit-serial", 8)].latency_ns < keys[("unary-pulse", 8)].latency_ns
    # ADC frugality: one conversion per column for both pulse encodings.
    assert keys[("unary-pulse", 8)].conversions_per_column == 1
    assert keys[("pulse-width", 8)].conversions_per_column == 1


def test_bench_pulse_width_jitter(benchmark):
    rows = benchmark(encoding_study.jitter_sweep)
    print()
    print(
        format_table(
            [(r["jitter_sigma_slots"], r["rel_error"]) for r in rows],
            ["jitter_slots", "rel_error"],
        )
    )
    assert rows[-1]["rel_error"] > rows[0]["rel_error"]
