"""Table I — ROM-CiM macro specification summary.

Regenerates every Table I row from the circuit model and micro-benchmarks
the functional bit-serial macro kernel itself.
"""

import numpy as np
import pytest

from repro.cim import AdcSpec, CimMacro, MacroConfig
from repro.cim.spec import TABLE1_PAPER
from repro.experiments import table1


def test_bench_table1_rows(benchmark):
    result = benchmark(table1.run)
    print()
    print(table1.format_report(result))
    # Every non-zero row within 2% of the printed paper value.
    assert result.max_relative_error() < 0.02
    # Supporting density claims of Figs. 2/4.
    ratios = {name: ratio for name, _, ratio in result.cell_comparison}
    assert ratios["sram-6t"] == pytest.approx(16.0)
    assert ratios["sram-cim-6t"] == pytest.approx(18.5)
    assert 17 < result.sram_density_ratio < 21


def test_bench_macro_mvm_kernel(benchmark):
    """Throughput of the functional bit-serial MVM (one full subarray)."""
    rng = np.random.default_rng(0)
    config = MacroConfig(adc=AdcSpec(bits=5))
    macro = CimMacro(config, rng.integers(-128, 128, size=(128, 32)), rng=rng)
    x = rng.integers(0, 256, size=(128, 8))

    out, stats = benchmark(macro.matmul, x)
    assert out.shape == (32, 8)
    assert stats.macs == 128 * 32 * 8
    # Energy model stays calibrated to Table I's order of magnitude.
    assert 20 < stats.energy_per_mac_fj < 500
