"""Bench: ping-pong weight-reload relief (section 4.3.3).

The paper's perspectives paragraph claims ping-pong/pipelining "can
relieve the latency issue, but little could be done to the energy
overhead".  Both halves are asserted: latency relief > 1 on the
reload-bound models, DRAM energy bit-identical between schedules.
"""

import pytest

from repro.experiments import pipeline_study
from repro.experiments.common import format_table


def test_bench_pingpong_relief(benchmark):
    result = benchmark(pipeline_study.run, pipeline_study.full_config())
    print()
    rows = [
        (
            r["model"],
            r["resident_fraction"],
            r["serial_ns"] / 1e6,
            r["pingpong_ns"] / 1e6,
            r["latency_relief"],
            r["serial_dram_pj"] / 1e6,
        )
        for r in result.rows
    ]
    print(
        format_table(
            rows,
            ["model", "resident", "serial_ms", "pingpong_ms", "relief", "dram_uJ"],
        )
    )
    by_model = result.by_model()
    # VGG-8 fits on chip: nothing to hide, schedules identical.
    assert by_model["vgg8"]["latency_relief"] == pytest.approx(1.0)
    # YOLO is reload-bound: overlap buys real latency.
    assert by_model["yolo"]["latency_relief"] > 1.1
    # And the energy half of the sentence: nothing changes.
    for row in result.rows:
        assert row["serial_dram_pj"] == row["pingpong_dram_pj"]


def test_bench_pingpong_slowdown_sensitivity(benchmark):
    rows = benchmark(pipeline_study.slowdown_sensitivity)
    print()
    print(
        format_table(
            [(r["compute_slowdown"], r["latency_relief"]) for r in rows],
            ["compute_slowdown", "latency_relief"],
        )
    )
    reliefs = [r["latency_relief"] for r in rows]
    assert reliefs == sorted(reliefs, reverse=True)
