"""Benchmark-suite configuration.

Each ``test_bench_*`` module regenerates one table or figure of the
paper (the index is in ``src/repro/experiments/__init__.py``).  The
pytest-benchmark fixture
times the regeneration; the assertions check the reproduced *shape*
(orderings and factor magnitudes), and the printed reports show the
actual rows — run with ``pytest benchmarks/ --benchmark-only -s`` to see
them.
"""
