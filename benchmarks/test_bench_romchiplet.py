"""Bench: ROM-CiM chiplet assembly (section 4.3.3's named future work).

Sweeps the per-die area budget and compares the ROM-chiplet YOLoC
partition against the paper's SRAM-CiM chiplet baseline on the YOLO
(DarkNet-19) model: die count, total silicon, and per-inference energy.
"""

import numpy as np
import pytest

from repro import models
from repro.arch import chiplet_scaling, partition_summary
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def yolo_profile():
    model = models.build_model("yolo", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 416, 416))


def test_bench_rom_chiplet_scaling(benchmark, yolo_profile):
    result = benchmark(
        chiplet_scaling, yolo_profile, (25.0, 50.0, 100.0), "yolo"
    )
    print()
    rows = [
        (
            p.die_area_mm2,
            p.rom_chips,
            p.sram_chips,
            p.rom_area_cm2,
            p.sram_area_cm2,
            p.rom_energy_uj,
            p.sram_energy_uj,
        )
        for p in result.points
    ]
    print(
        format_table(
            rows,
            [
                "die_mm2",
                "rom_chips",
                "sram_chips",
                "rom_cm2",
                "sram_cm2",
                "rom_uJ",
                "sram_uJ",
            ],
        )
    )
    for point in result.points:
        # Order-of-magnitude fewer dies and silicon at every budget.
        assert point.chip_count_ratio > 5
        assert point.sram_area_cm2 > 5 * point.rom_area_cm2
        # Energy near parity: branch MACs offset the link saving.
        assert point.energy_ratio == pytest.approx(1.0, abs=0.2)


def test_bench_rom_chiplet_partition_summary(benchmark, yolo_profile):
    summary = benchmark(partition_summary, yolo_profile, 25.0)
    print()
    print(format_table(sorted(summary.items()), ["metric", "value"]))
    assert summary["chip_count_ratio"] > 5
    assert summary["area_ratio"] > 5
