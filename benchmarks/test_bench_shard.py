"""Bench: sharded pipeline-parallel execution across chiplets.

The acceptance bar for the sharding subsystem: pipelining a stream of
micro-batches across balanced chiplet shards must buy >= 1.5x
throughput over the single-shard serial execution of the same stream,
with inter-chiplet link energy reported in the stats, and every sharded
output bitwise identical to the unsharded compiled model.

Throughput here is in *simulated chip time*: the makespans are computed
from the per-stage macro latencies and SIMBA-link transfer times of the
really-executed traffic (``StreamResult``), so the bar is
machine-independent — the host worker threads that physically executed
the pipeline may sit on a single core (CI runners often do).
"""

import numpy as np
import pytest

from repro import nn
from repro.experiments.common import format_table
from repro.runtime import RuntimeConfig, compile_model, shard, stream_rng

HW = 12
N_BATCHES = 8
BATCH = 4
SEED = 0


def build_model(seed=SEED):
    """Four same-width convs at one resolution: near-equal pipeline
    stages, so the layer-cut can actually balance the shards."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(16, 10, rng=rng),
    )


def build_stream():
    return [
        np.random.default_rng([SEED + 1, i]).normal(size=(BATCH, 3, HW, HW))
        for i in range(N_BATCHES)
    ]


def run_sharded_stream():
    compiled = compile_model(build_model(), RuntimeConfig())
    sharded = shard(compiled, 4, input_shape=(1, 3, HW, HW))
    stream = sharded.run_stream(build_stream(), seed=SEED)
    return compiled, sharded, stream


def test_bench_shard_pipeline_speedup(benchmark):
    compiled, sharded, _ = run_sharded_stream()
    stream = benchmark(sharded.run_stream, build_stream(), seed=SEED)

    serial_ms = stream.serial_makespan_ns / 1e6
    pipelined_ms = stream.pipelined_makespan_ns / 1e6
    print()
    print(
        format_table(
            [
                ("serial (1 shard)", round(serial_ms, 3), 0.0),
                (
                    "pipelined (4 shards)",
                    round(pipelined_ms, 3),
                    round(stream.stats.link_energy_fj / 1e6, 2),
                ),
            ],
            ["regime", "makespan_ms", "link_nJ"],
        )
    )
    print(sharded.plan.describe())
    print(f"pipeline speedup: {stream.pipeline_speedup:.2f}x")

    # The acceptance bar: pipeline-parallel >= 1.5x the single-shard
    # serial makespan of the same executed stream.
    assert stream.pipeline_speedup >= 1.5

    # Link energy is really charged and really reported.
    assert stream.stats.link_energy_fj > 0
    assert stream.stats.link_bits > 0
    assert all(s.link_energy_fj > 0 for s in stream.per_batch)
    # ... and is part of total energy, not a side channel.
    assert stream.stats.total_energy_fj > sum(
        (
            stream.stats.wl_energy_fj,
            stream.stats.bitline_energy_fj,
            stream.stats.adc_energy_fj,
            stream.stats.peripheral_energy_fj,
        )
    )


def test_bench_shard_serial_equals_monolithic():
    """The 'serial' side of the comparison is honest: it equals the
    unsharded compiled model's latency total for the same stream."""
    compiled, _, stream = run_sharded_stream()
    monolithic_ns = 0.0
    for i, batch in enumerate(build_stream()):
        _, stats = compiled.run(batch, rng=stream_rng(SEED, i))
        monolithic_ns += stats.latency_ns
    assert stream.serial_makespan_ns == pytest.approx(monolithic_ns)


def test_bench_shard_bitwise_identity():
    compiled, _, stream = run_sharded_stream()
    for i, batch in enumerate(build_stream()):
        expected, _ = compiled.run(batch, rng=stream_rng(SEED, i))
        assert np.array_equal(stream.outputs[i], expected)
