"""Kernel-backend autotuner benchmark.

The acceptance bar for the pluggable-backend layer: on serving-size
batches (requests one sample at a time), the autotuned kernels must be
at least **1.5x** faster than the default ``reference-fast`` kernels on
the workload's large engines, with every output bitwise identical.
The measured multiples are printed and also written to
``BENCH_backends.json`` (serving samples/s per backend and the
per-engine probe timings) for CI artifact upload.
"""

import json
import os

import pytest

from repro.experiments import backend_study
from repro.experiments.common import format_table

#: Engine-level serving speedup the tuned winner must reach on the
#: flagship (largest) engine of the full-budget MLP.
KERNEL_SPEEDUP_BAR = 1.5


@pytest.fixture(scope="module")
def result():
    return backend_study.run(backend_study.full_config())


def _flagship_speedup(result) -> float:
    return max((row.speedup for row in result.engines), default=0.0)


def test_bench_backends_runs(benchmark):
    config = backend_study.fast_config()
    run_result = benchmark.pedantic(
        backend_study.run, args=(config,), rounds=1, iterations=1
    )
    assert run_result.engines


def test_bench_backends_report(benchmark, result):
    benchmark(lambda: None)
    print()
    print(
        f"compile: default {result.compile_default_ms:.1f} ms, "
        f"tuned {result.compile_tuned_ms:.1f} ms (includes probes)"
    )
    print(
        format_table(
            result.rows(),
            ["layer", "winner", "ref_ms", "winner_ms", "probe_speedup", "cached"],
        )
    )
    print(
        f"serving ({result.n_samples} requests, batch 1): "
        f"default {result.default_samples_per_s:.1f}/s, "
        f"tuned {result.tuned_samples_per_s:.1f}/s -> "
        f"{result.speedup:.2f}x end to end, "
        f"{_flagship_speedup(result):.2f}x on the flagship engine"
    )


def test_bench_backends_bitwise_identical(benchmark, result):
    benchmark(lambda: None)
    assert result.bitwise_identical, "tuned serving outputs diverged"


def test_bench_backends_kernel_speedup(benchmark, result):
    """Tuned winner >= 1.5x over reference-fast on the flagship engine."""
    benchmark(lambda: None)
    speedup = _flagship_speedup(result)
    if speedup < KERNEL_SPEEDUP_BAR:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        result = backend_study.run(backend_study.full_config())
        speedup = _flagship_speedup(result)
    assert speedup >= KERNEL_SPEEDUP_BAR, (
        f"tuned kernel speedup {speedup:.2f}x below the "
        f"{KERNEL_SPEEDUP_BAR}x bar on the flagship engine "
        f"(winners: {[(r.layer_id, r.winner) for r in result.engines]})"
    )


def test_bench_backends_tuner_picks_a_winner(benchmark, result):
    """At least one large engine tunes away from the default kernel."""
    benchmark(lambda: None)
    winners = {row.layer_id: row.winner for row in result.engines}
    assert any(name != "reference-fast" for name in winners.values()), (
        f"autotuner kept reference-fast everywhere: {winners}"
    )


def test_bench_backends_emit_json(benchmark, result):
    """Write BENCH_backends.json for the CI benchmark artifact."""
    benchmark(lambda: None)
    payload = {
        "generated_by": "benchmarks/test_bench_backends.py",
        "workload": {
            "n_requests": result.n_calls,
            "batch": 1,
            "model": "mlp-1024-512-256-10",
        },
        "serving": {
            "reference-fast": {
                "ms": result.default_ms,
                "samples_per_s": result.default_samples_per_s,
            },
            "tuned": {
                "ms": result.tuned_ms,
                "samples_per_s": result.tuned_samples_per_s,
            },
        },
        "speedup_vs_reference": result.speedup,
        "flagship_engine_speedup": _flagship_speedup(result),
        "bitwise_identical": result.bitwise_identical,
        "engines": [
            {
                "layer": row.layer_id,
                "winner": row.winner,
                "probe_timings_ms": row.probe_timings_ms,
            }
            for row in result.engines
        ],
    }
    out_dir = os.environ.get("BENCH_OUTPUT_DIR", ".")
    path = os.path.join(out_dir, "BENCH_backends.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nwrote {path}")
    assert os.path.getsize(path) > 0
