"""Model-zoo serving benchmark: resnet8 through the graph-plan runtime.

The acceptance bar for opening the zoo: serving requests against a
compiled `resnet8` — a residual network the runtime could not execute
at all before the DAG plan IR — must beat the seed per-call reference
path (which re-quantizes weights and rebuilds every subarray tile on
each request) by at least **5x**, with bitwise-identical outputs.

Two regimes, mirroring the contract shape of ``test_bench_runtime.py``:

* **serving (coalesced)** — the headline: N single-sample requests
  executed the way ``repro.serve`` executes them, as one coalesced
  ``CompiledModel.run`` batch, against N per-call reference forwards
  (the seed deployment's only option).  This composes the compile-once
  and dynamic-batching wins on the newly-unlocked zoo; the bitwise
  contract is numerics.md clause 4 — the executed batch equals
  ``reference_forward`` over the coalesced inputs, bit for bit.
* **serving (per-call)** — amortization only: the same N requests, one
  ``CompiledModel.run`` per request on both sides.  Programming
  amortizes away but every call still streams all weight bits through
  the macros, so the bar here is a conservative >= 2.5x.
"""

import time

import numpy as np
import pytest

from repro import models
from repro.runtime import (
    EngineCache,
    RuntimeConfig,
    compile_model,
    reference_forward,
)

N_REQUESTS = 16
HW = 4
REPEATS = 2


def _min_time(fn, repeats=REPEATS):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, value


class ZooServingResult:
    def __init__(self):
        model = models.build_model("resnet8", rng=np.random.default_rng(0))
        model.eval()
        self.compile_ms, self.compiled = _min_time(
            lambda: compile_model(
                model, RuntimeConfig(fold_bn=True), cache=EngineCache()
            ),
            repeats=1,
        )
        self.model = model  # fold_bn mutated it in place during compile
        self.requests = np.random.default_rng(1).normal(
            size=(N_REQUESTS, 3, HW, HW)
        )
        self.measure()

    def measure(self):
        compiled, model, requests = self.compiled, self.model, self.requests
        calls = [requests[i : i + 1] for i in range(N_REQUESTS)]
        # Warm both paths (page cache, einsum dispatch caches).
        compiled.run(requests)
        compiled.run(calls[0])
        reference_forward(model, calls[0])

        self.per_call_ms, per_call_outs = _min_time(
            lambda: [compiled.run(x)[0] for x in calls]
        )
        self.coalesced_ms, coalesced_out = _min_time(
            lambda: compiled.run(requests)[0]
        )
        self.reference_ms, reference_outs = _min_time(
            lambda: [reference_forward(model, x)[0] for x in calls]
        )
        self.per_call_bitwise = all(
            np.array_equal(a, b) for a, b in zip(per_call_outs, reference_outs)
        )
        # Numerics.md clause 4: the executed (coalesced) batch equals the
        # oracle over the coalesced inputs.
        coalesced_reference, _ = reference_forward(model, requests)
        self.coalesced_bitwise = bool(
            np.array_equal(coalesced_out, coalesced_reference)
        )

    @property
    def coalesced_speedup(self):
        return self.reference_ms / self.coalesced_ms if self.coalesced_ms else 0.0

    @property
    def per_call_speedup(self):
        return self.reference_ms / self.per_call_ms if self.per_call_ms else 0.0


@pytest.fixture(scope="module")
def result():
    return ZooServingResult()


def test_bench_zoo_report(benchmark, result):
    benchmark(lambda: None)
    print()
    print(
        f"resnet8 ({result.compiled.n_weight_layers} weight layers, "
        f"compile {result.compile_ms:.0f} ms), {N_REQUESTS} requests:"
    )
    print(
        f"  reference per-call   {result.reference_ms:8.1f} ms"
    )
    print(
        f"  compiled per-call    {result.per_call_ms:8.1f} ms "
        f"({result.per_call_speedup:.2f}x, bitwise={result.per_call_bitwise})"
    )
    print(
        f"  compiled coalesced   {result.coalesced_ms:8.1f} ms "
        f"({result.coalesced_speedup:.2f}x, bitwise={result.coalesced_bitwise})"
    )


def test_bench_zoo_bitwise_identical(benchmark, result):
    benchmark(lambda: None)
    assert result.per_call_bitwise, "per-call outputs diverged from reference"
    assert result.coalesced_bitwise, (
        "coalesced batch diverged from the oracle over the coalesced inputs"
    )


def test_bench_zoo_serving_speedup(benchmark, result):
    """Coalesced zoo serving: >= 5x over the seed per-call path."""
    benchmark(lambda: None)
    speedup = result.coalesced_speedup
    if speedup < 5.0:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        result.measure()
        speedup = result.coalesced_speedup
    assert speedup >= 5.0, (
        f"coalesced resnet8 serving speedup {speedup:.2f}x below the 5x bar "
        f"({result.coalesced_ms:.0f} ms vs {result.reference_ms:.0f} ms)"
    )


def test_bench_zoo_per_call_amortization(benchmark, result):
    """Per-call compiled serving still beats per-call reference."""
    benchmark(lambda: None)
    speedup = result.per_call_speedup
    if speedup < 2.5:
        result.measure()
        speedup = result.per_call_speedup
    assert speedup >= 2.5, (
        f"per-call resnet8 serving speedup {speedup:.2f}x below the 2.5x bar"
    )
