"""Bench: end-to-end accuracy through the CiM path.

Ties the circuit-level studies back to the paper's headline framing
("almost no accuracy loss"): a trained classifier deployed on the
functional macro at each (ADC resolution, word-line encoding) corner.
Expected shape: 8-bit ADC preserves float accuracy under either
encoding; at the macro's 5-bit design point the single coarse
conversion of pulse-width costs real accuracy while bit-serial
degrades gracefully — the section 3.1 trade-off, measured on a
network instead of a matrix.
"""

import pytest

from repro.experiments import cim_accuracy
from repro.experiments.common import format_table


def test_bench_cim_accuracy_grid(benchmark):
    result = benchmark.pedantic(
        cim_accuracy.run, args=(cim_accuracy.fast_config(),), rounds=1, iterations=1
    )
    print()
    print(f"float accuracy: {result.float_accuracy:.3f}")
    print(
        format_table(
            result.rows(),
            ["adc_bits", "encoding", "noise", "accuracy", "fJ_per_mac"],
        )
    )
    # 8-bit conversion preserves float accuracy for both encodings.
    assert result.at(8, "bit-serial").accuracy >= result.float_accuracy - 0.1
    assert result.at(8, "pulse-width").accuracy >= result.float_accuracy - 0.1
    # At the 5-bit design point, bit-serial beats the single coarse
    # pulse-width conversion.
    assert (
        result.at(5, "bit-serial").accuracy
        > result.at(5, "pulse-width").accuracy
    )
    # And the pulse encoding's ADC frugality shows up as energy.
    assert (
        result.at(8, "pulse-width").energy_per_mac_fj
        < 0.7 * result.at(8, "bit-serial").energy_per_mac_fj
    )
