"""Fig. 11 — ReBranch compression-ratio design space.

Paper shape: (a) area shrinks as D*U grows while accuracy degrades at
large ratios (16x is the sweet spot); (b) balanced D=U=4 is at least as
good as the strongly asymmetric splits.
"""

import pytest

from repro.experiments import fig11
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return fig11.run(fig11.fast_config())


def test_bench_fig11_runs(benchmark):
    config = fig11.fast_config()
    config.ratio_sweep = ((4, 4),)
    config.split_sweep = ()
    config.pretrain_epochs = 2
    config.transfer_epochs = 2
    config.n_train = 64
    run_result = benchmark.pedantic(fig11.run, args=(config,), rounds=1, iterations=1)
    assert run_result.ratio_points


def test_bench_fig11a_area_vs_ratio(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [
        (f"D{p.d}xU{p.u}", p.du, p.accuracy, p.normalized_area, p.trainable_params)
        for p in result.ratio_points
    ]
    print(format_table(rows, ["point", "D*U", "accuracy", "norm_area", "trainable"]))
    by_du = {p.du: p for p in result.ratio_points}
    assert by_du[16].normalized_area < by_du[4].normalized_area
    assert by_du[16].trainable_params < by_du[4].trainable_params


def test_bench_fig11b_split_sweep(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [(f"D{p.d}-U{p.u}", p.accuracy) for p in result.split_points]
    print(format_table(rows, ["split", "accuracy"]))
    accs = {(p.d, p.u): p.accuracy for p in result.split_points}
    # Balanced split is competitive: within noise of the best split.
    assert accs[(4, 4)] >= max(accs.values()) - 0.15
    for p in result.split_points:
        assert p.accuracy > 0.18  # well above 8-class chance


def test_bench_fig11_all_points_above_chance(benchmark, result):
    benchmark(lambda: None)
    for p in result.ratio_points:
        assert p.accuracy > 0.18
