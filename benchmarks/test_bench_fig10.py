"""Fig. 10 — ReBranch generalization: accuracy and memory area.

Paper shape: ReBranch ~= All-SRAM accuracy on every migration target
(within ~0.5%at full budget), All-ROM clearly worse, and ReBranch's
memory area ~0.1-0.3x of the All-SRAM baseline (~10x saving).
"""

import pytest

from repro.experiments import fig10
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return fig10.run(fig10.fast_config())


def test_bench_fig10_runs(benchmark):
    # Time one tiny end-to-end round (pretrain + one transfer method).
    config = fig10.fast_config()
    config.methods = ("all_rom",)
    config.pretrain_epochs = 2
    config.transfer_epochs = 2
    config.n_train = 64
    run_result = benchmark.pedantic(fig10.run, args=(config,), rounds=1, iterations=1)
    assert run_result.rows


def test_bench_fig10a_accuracy_ordering(benchmark, result):
    benchmark(lambda: None)
    print()
    rows = [
        (r.method, r.accuracy, r.normalized_area, r.trainable_params)
        for r in result.rows
    ]
    print(format_table(rows, ["method", "accuracy", "norm_area", "trainable"]))
    table = result.accuracy_table()["vgg8"]["near"]
    assert table["rebranch"] > table["all_rom"]
    gap = table["all_sram"] - table["all_rom"]
    assert table["rebranch"] >= table["all_rom"] + 0.5 * gap


def test_bench_fig10b_area_saving(benchmark, result):
    benchmark(lambda: None)
    areas = result.area_table()["vgg8"]
    # Paper: ReBranch saves ~10x memory area vs all-SRAM-CiM.
    assert areas["rebranch"] < 0.35 * areas["all_sram"]
    assert areas["all_rom"] < areas["rebranch"]


def test_bench_fig10_source_model_learned(benchmark, result):
    benchmark(lambda: None)
    assert result.source_accuracy["vgg8"] > 0.7
