"""Bench: NoC transport share of compute energy (Fig. 9 floorplan).

The paper's energy accounting folds on-chip activation transport into
the buffer term.  This bench checks the simplification holds on every
benchmark model: NoC energy stays a single-digit percentage of the CiM
compute energy under a serpentine layer-to-tile floorplan.
"""

import numpy as np

from repro import models
from repro.arch import MeshNocSpec, map_layers_to_tiles, noc_share_of_compute
from repro.arch.mapping import map_model
from repro.cim.spec import rom_macro_spec
from repro.experiments.common import format_table

BENCHMARKS = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


def _shares():
    rng = np.random.default_rng(0)
    rows = []
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        mapping = map_model(profile, "yoloc")
        compute_pj = mapping.total_macs * rom_macro_spec().energy_per_op_fj / 1000.0
        report = map_layers_to_tiles(profile, MeshNocSpec(rows=4, cols=4))
        rows.append(
            (
                name,
                report.total_bits / 1e6,
                report.total_energy_pj / 1e6,
                noc_share_of_compute(profile, compute_pj),
                report.max_link_load_bits / 1e6,
            )
        )
    return rows


def test_bench_noc_share(benchmark):
    rows = benchmark(_shares)
    print()
    print(
        format_table(
            rows,
            ["model", "traffic_Mb", "noc_uJ", "share_of_compute", "hot_link_Mb"],
        )
    )
    # The Fig. 9 simplification is sound for every benchmark model.
    for _, _, _, share, _ in rows:
        assert share < 0.10
