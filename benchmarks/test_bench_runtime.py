"""Compile-once runtime speedup benchmark.

The acceptance bar for the deployment runtime: serving 32 single-sample
requests through a compiled classifier must be at least 5x faster than
the seed per-call path (which re-quantizes weights and rebuilds every
subarray tile on each request), with bitwise-identical outputs at the
fixed seed.  The streaming regime (one 32-sample batch per call)
measures the optimized execution kernels alone, since programming cost
amortizes over the batch either way.
"""

import pytest

from repro.experiments import runtime_study
from repro.experiments.common import format_table


@pytest.fixture(scope="module")
def result():
    return runtime_study.run(runtime_study.full_config())


def test_bench_runtime_runs(benchmark):
    config = runtime_study.fast_config()
    run_result = benchmark.pedantic(
        runtime_study.run, args=(config,), rounds=1, iterations=1
    )
    assert run_result.regimes


def test_bench_runtime_report(benchmark, result):
    benchmark(lambda: None)
    print()
    print(
        f"compile: {result.compile_ms:.1f} ms, "
        f"{result.engines_programmed} engines programmed once"
    )
    print(
        format_table(
            result.rows(),
            [
                "regime",
                "calls",
                "samples",
                "compiled_ms",
                "reference_ms",
                "speedup",
                "bitwise",
            ],
        )
    )


def test_bench_runtime_bitwise_identical(benchmark, result):
    benchmark(lambda: None)
    for regime in result.regimes:
        assert regime.bitwise_identical, f"{regime.regime} outputs diverged"


def test_bench_runtime_programs_each_layer_once(benchmark, result):
    benchmark(lambda: None)
    # Three weight layers -> three programmed engines, regardless of how
    # many batches were executed afterwards.
    assert result.engines_programmed == 3
    assert result.cache_misses == result.engines_programmed


def test_bench_runtime_serving_speedup(benchmark, result):
    """32-sample repeated inference: >= 5x over the seed per-call path."""
    benchmark(lambda: None)
    serving = result.regime("serving")
    assert serving.n_samples == 32
    assert serving.bitwise_identical
    if serving.speedup < 5.0:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        serving = runtime_study.run(runtime_study.full_config()).regime("serving")
    assert serving.speedup >= 5.0, (
        f"compiled serving speedup {serving.speedup:.2f}x below the 5x bar "
        f"({serving.compiled_ms:.0f} ms vs {serving.reference_ms:.0f} ms)"
    )


def test_bench_runtime_streaming_no_slower(benchmark, result):
    """Batched streaming still beats the seed path (kernels only)."""
    benchmark(lambda: None)
    streaming = result.regime("streaming")
    assert streaming.bitwise_identical
    if streaming.speedup < 1.2:
        # Same transient-load allowance as the serving check.
        streaming = runtime_study.run(runtime_study.full_config()).regime(
            "streaming"
        )
    assert streaming.speedup >= 1.2
