"""Bench: static-variation tolerance of the ROM-CiM macro.

Backs the section 2 reliability argument with numbers: the Monte-Carlo
grid over cell mismatch and ADC offset, plus the headline "tolerable
mismatch" figure at a 5%-error budget.
"""

import pytest

from repro.cim import tolerable_cell_sigma, variation_sweep
from repro.experiments.common import format_table


def test_bench_variation_grid(benchmark):
    results = benchmark(variation_sweep)
    print()
    rows = [
        (v.cell_sigma, v.adc_offset_sigma, r.mean, r.p95, r.worst)
        for v, r in results
    ]
    print(
        format_table(
            rows, ["cell_sigma", "adc_offset", "mean_err", "p95_err", "worst_err"]
        )
    )
    by_key = {(v.cell_sigma, v.adc_offset_sigma): r for v, r in results}
    # Error grows with cell mismatch.
    assert by_key[(0.10, 0.0)].mean > by_key[(0.0, 0.0)].mean
    # Behind the 5-bit ADC, a 1-2 count offset hides inside the ~4-count
    # quantization step (it can even dither the error slightly): the
    # offset axis stays within 20% of baseline across the sweep.
    for offset in (1.0, 2.0):
        assert by_key[(0.0, offset)].mean == pytest.approx(
            by_key[(0.0, 0.0)].mean, rel=0.2
        )


def test_bench_tolerable_mismatch(benchmark):
    sigma = benchmark.pedantic(
        tolerable_cell_sigma, kwargs={"error_budget": 0.05}, rounds=1, iterations=1
    )
    print(f"\ntolerable cell mismatch sigma at 5% error budget: {sigma:.2f}")
    # The bit-serial + 5-bit-ADC arithmetic absorbs a few percent of
    # static cell mismatch without blowing the budget.
    assert sigma >= 0.01
