"""Fig. 14 — chip-level comparison with SRAM-CiM systems.

Regenerates (a) the energy-efficiency/area comparison, (b) the YOLoC
area breakdown, and (c) the per-model energy breakdown + improvement
ratios.  Paper shape: improvements 1x / 4.8x / 10.2x / 14.8x for
VGG-8 / ResNet-18 / Tiny-YOLO / YOLO, ~2% vs chiplets at ~10x less
area, <8% branch latency overhead.
"""

import pytest

from repro.experiments import fig14


@pytest.fixture(scope="module")
def result():
    return fig14.run(fig14.full_config())


def test_bench_fig14a_energy_efficiency(benchmark, result):
    run_result = benchmark(fig14.run, fig14.full_config())
    print()
    print(fig14.format_report(run_result))
    improvements = run_result.improvements()
    # Crossover: VGG-8 fits on chip -> parity; everything else wins big.
    assert 0.7 < improvements["vgg8"] < 1.3
    assert improvements["resnet18"] > 4
    assert improvements["tiny_yolo"] > 4
    assert improvements["yolo"] > 4
    # Monotone in model size, the paper's qualitative trend.
    assert improvements["vgg8"] < improvements["resnet18"] < improvements["yolo"]


def test_bench_fig14a_chiplet_comparison(benchmark, result):
    benchmark(lambda: None)
    for comparison in result.comparisons:
        if comparison.model != "yolo":
            continue
        assert 0.9 < comparison.improvement_vs_chiplet < 1.3  # ~2% in paper
        assert comparison.area_saving_vs_chiplet > 7  # ~10x in paper
        assert comparison.chiplet.n_chips >= 5  # paper deploys 10 chiplets


def test_bench_fig14b_area_breakdown(benchmark, result):
    benchmark(lambda: None)
    breakdown = result.yoloc_area_breakdown("yolo")
    print()
    print("YOLoC area breakdown:", {k: round(v, 3) for k, v in breakdown.items()})
    # Paper: Array 37%, ADC 21%, R/W 20%, Buffer 10%, Peripheral 12%.
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["array"] == max(breakdown.values())
    assert breakdown["adc"] > 0.1
    assert 0 < breakdown["rw"] < breakdown["array"]


def test_bench_fig14c_energy_breakdown(benchmark, result):
    benchmark(lambda: None)
    print()
    for model in ("vgg8", "resnet18", "tiny_yolo", "yolo"):
        breakdown = result.energy_breakdown(model)
        print(f"  {model:10s}", {k: round(v, 3) for k, v in breakdown.items()})
    # DRAM share grows with model size; VGG-8 has none (fits on chip).
    assert result.energy_breakdown("vgg8")["dram"] == 0.0
    assert (
        result.energy_breakdown("resnet18")["dram"]
        < result.energy_breakdown("yolo")["dram"]
    )
    assert result.energy_breakdown("yolo")["dram"] > 0.5


def test_bench_fig14_latency_overhead(benchmark, result):
    benchmark(lambda: None)
    print()
    print("branch latency overheads:", {
        k: f"{v * 100:.1f}%" for k, v in result.latency_overheads.items()
    })
    for model, overhead in result.latency_overheads.items():
        assert 0 <= overhead < 0.08, model
