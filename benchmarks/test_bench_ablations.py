"""Ablation benches: design choices the paper argues in prose.

Covers the ADC-resolution trade-off (section 4.3.1's future-work
paragraph), bit-line noise robustness, the section 4.3.2 subarray
packing optimization, the Fig. 1(a) technology-scaling motivation, and
the non-volatility standby-power claim.
"""

import pytest

from repro.arch import technology as tech
from repro.experiments import ablations
from repro.experiments.common import format_table


def test_bench_adc_resolution_sweep(benchmark):
    rows = benchmark(ablations.adc_resolution_sweep)
    print()
    print(
        format_table(
            [(r["adc_bits"], r["rel_error"], r["energy_per_mac_fj"]) for r in rows],
            ["adc_bits", "rel_error", "fJ_per_mac"],
        )
    )
    errors = {r["adc_bits"]: r["rel_error"] for r in rows}
    assert errors[8] < errors[5] < errors[3]
    assert errors[8] < 1e-9


def test_bench_bitline_noise_sweep(benchmark):
    rows = benchmark(ablations.bitline_noise_sweep)
    print()
    print(
        format_table(
            [(r["noise_sigma"], r["rel_error"]) for r in rows],
            ["noise_sigma", "rel_error"],
        )
    )
    assert rows[0]["rel_error"] < rows[-1]["rel_error"]


def test_bench_packing_ablation(benchmark):
    report = benchmark(ablations.packing_ablation)
    print()
    print(format_table(sorted(report.items()), ["metric", "value"]))
    assert report["subarray_saving"] > 1.0
    assert report["packed_array_utilization"] > report["naive_array_utilization"]


def test_bench_fig1a_technology_scaling(benchmark):
    curve = benchmark(tech.scaling_curve)
    print()
    rows = [(node, d, c) for node, (d, c) in sorted(curve.items(), reverse=True)]
    print(format_table(rows, ["node_nm", "density_x", "tapeout_cost_x"]))
    # Fig. 1(a): cost grows much faster than density below 16nm.
    density_5, cost_5 = curve[5]
    assert cost_5 > density_5
    # And the 28nm ROM cell already beats 5nm SRAM density.
    assert 5 in tech.nodes_beaten_by_rom28()


def test_bench_standby_power(benchmark):
    rows = benchmark(ablations.duty_cycle_ablation)
    print()
    print(
        format_table(
            [(r["duty_cycle"], r["rom_advantage"]) for r in rows],
            ["duty_cycle", "rom_advantage"],
        )
    )
    advantages = [r["rom_advantage"] for r in rows]
    assert advantages == sorted(advantages)  # grows as the system idles


def test_bench_options_study(benchmark):
    from repro.experiments import options_study

    config = options_study.fast_config()
    config.pretrain_epochs = 4
    config.transfer_epochs = 3
    config.n_train = 96
    result = benchmark.pedantic(
        options_study.run, args=(config,), rounds=1, iterations=1
    )
    print()
    rows = [
        (r.option, r.accuracy, r.normalized_area) for r in result.rows
    ]
    print(format_table(rows, ["option", "accuracy", "norm_area"]))
    by_option = result.by_option()
    assert by_option["rebranch"].normalized_area < by_option["spwd"].normalized_area
