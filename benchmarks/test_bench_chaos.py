"""Chaos runtime acceptance benchmarks.

Two bars from the chaos issue:

* **Zero-fault overhead** — streaming through the chaos executor with
  an *inert* controller (a schedule of zero-magnitude faults) must stay
  within 3% wall clock of the uninstrumented ``run_stream``, and the
  delivered outputs must be bitwise identical — chaos instrumentation
  is free when nothing fails.
* **Recovery availability** — a 64-micro-batch campaign with a single
  shard death (a few in-flight micro-batches abandoned with the dead
  chiplet's buffers) must still deliver >= 90% of the requested
  micro-batches, and every micro-batch admitted *after* the recovery —
  the post-failover suffix — must be bitwise identical to the clean
  oracle.
"""

import time
from typing import List

import numpy as np
import pytest

from repro import nn
from repro.chaos import (
    ADC_DRIFT,
    BITLINE_NOISE,
    ChaosController,
    FaultEvent,
    FaultSchedule,
    LINK_DEGRADE,
    SHARD_DEATH,
)
from repro.experiments.common import format_table
from repro.runtime import EngineCache, compile_model, shard, stream_rng

HW = 8
N_SHARDS = 2
SEED = 0
REPEATS = 7
OVERHEAD_BAR = 0.03
CAMPAIGN_BATCHES = 64
CAMPAIGN_DROP = 4
AVAILABILITY_BAR = 0.90


def build_model():
    rng = np.random.default_rng(SEED)
    return nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(6, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(8 * (HW // 2) ** 2, 4, rng=rng),
    )


def build_batches(n, batch=2):
    return [
        np.random.default_rng([SEED + 1, i]).normal(size=(batch, 3, HW, HW))
        for i in range(n)
    ]


def inert_controller():
    """Every fault kind represented, every event a strict no-op."""
    return ChaosController(
        FaultSchedule(
            seed=SEED,
            events=(
                FaultEvent(kind=BITLINE_NOISE, at_index=0, magnitude=0.0),
                FaultEvent(
                    kind=ADC_DRIFT, at_index=1, magnitude=0.0, gain_slope=0.0
                ),
                FaultEvent(
                    kind=LINK_DEGRADE,
                    shard=0,
                    at_index=2,
                    latency_factor=1.0,
                    energy_factor=1.0,
                ),
            ),
        )
    )


def _time_leg(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def measure_overhead(n_batches=24) -> tuple:
    compiled = compile_model(build_model(), cache=EngineCache())
    sharded = shard(compiled, N_SHARDS, input_shape=(1, 3, HW, HW))
    batches = build_batches(n_batches)

    def clean():
        return sharded.run_stream(batches, seed=SEED)

    def chaotic():
        return sharded.run_stream(batches, seed=SEED, chaos=inert_controller())

    # Warm both paths, and pin the bitwise witness on the warmup runs.
    clean_result = clean()
    chaos_result = chaotic()
    assert len(chaos_result.outputs) == len(clean_result.outputs)
    for got, want in zip(chaos_result.outputs, clean_result.outputs):
        assert np.array_equal(got, want), (
            "inert chaos stream must be bitwise identical to run_stream"
        )
    # Interleave the legs so slow drift on a shared runner hits both
    # alike; best-of then discards the transient spikes.
    clean_s = chaos_s = float("inf")
    for _ in range(REPEATS):
        clean_s = min(clean_s, _time_leg(clean))
        chaos_s = min(chaos_s, _time_leg(chaotic))
    return clean_s, chaos_s


@pytest.fixture(scope="module")
def overhead():
    return measure_overhead()


def test_bench_chaos_report(benchmark, overhead):
    benchmark(lambda: None)
    clean_s, chaos_s = overhead
    rows: List[tuple] = [
        ("run_stream (clean)", round(clean_s * 1e3, 2), 1.0),
        (
            "run_stream (inert chaos)",
            round(chaos_s * 1e3, 2),
            round(chaos_s / clean_s, 4),
        ),
    ]
    print()
    print(format_table(rows, ["path", "ms / stream", "ratio"]))


def test_bench_chaos_zero_fault_overhead_under_3pct(benchmark, overhead):
    """No faults firing: chaos instrumentation costs < 3% end to end."""
    benchmark(lambda: None)
    clean_s, chaos_s = overhead
    ratio = chaos_s / clean_s
    if ratio > 1.0 + OVERHEAD_BAR:
        # Wall-clock ratios are load-sensitive on shared runners; give a
        # transient spike one re-measure before calling it a regression.
        clean_s, chaos_s = measure_overhead()
        ratio = chaos_s / clean_s
    assert ratio <= 1.0 + OVERHEAD_BAR, (
        f"zero-fault chaos overhead {100 * (ratio - 1):.2f}% exceeds "
        f"{100 * OVERHEAD_BAR:.0f}% ({chaos_s * 1e3:.2f} ms vs "
        f"{clean_s * 1e3:.2f} ms per stream)"
    )


def test_bench_chaos_recovery_availability(benchmark):
    """64 micro-batches, one shard death, drop=4: availability >= 90%
    and the post-recovery suffix is bitwise identical to the oracle."""
    benchmark(lambda: None)
    compiled = compile_model(build_model(), cache=EngineCache())
    sharded = shard(compiled, N_SHARDS, input_shape=(1, 3, HW, HW))
    batches = build_batches(CAMPAIGN_BATCHES, batch=1)
    oracle = [
        compiled.run(b, rng=stream_rng(SEED, i))[0]
        for i, b in enumerate(batches)
    ]
    schedule = FaultSchedule(
        seed=SEED,
        events=(
            FaultEvent(
                kind=SHARD_DEATH,
                shard=1,
                at_index=20,
                drop=CAMPAIGN_DROP,
                label="bench-campaign",
            ),
        ),
    )
    controller = ChaosController(schedule, input_shape=(1, 3, HW, HW))
    result = sharded.run_stream(batches, seed=SEED, chaos=controller)
    assert result.n_requested == CAMPAIGN_BATCHES
    assert result.availability >= AVAILABILITY_BAR, (
        f"availability {result.availability:.3f} under a single shard "
        f"death fell below {AVAILABILITY_BAR:.0%}"
    )
    assert len(result.recoveries) == 1
    recovery = result.recoveries[0]
    assert len(recovery.dropped) == CAMPAIGN_DROP
    # The post-recovery suffix — everything not in flight at the fault —
    # keeps bitwise identity (replays do too; assert the lot).
    suffix = [
        i for i in result.delivered_indexes if i not in set(recovery.displaced)
    ]
    assert suffix, "campaign must exercise micro-batches beyond the fault"
    for i, out in result.outputs_by_index.items():
        assert np.array_equal(out, oracle[i]), (
            f"delivered micro-batch {i} diverged from the clean oracle"
        )
