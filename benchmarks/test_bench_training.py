"""Bench: on-chip training overhead, full vs ReBranch (section 3.3).

The paper claims YOLoC "greatly reduce[s] the on-chip training
overhead" because only the SRAM-resident branch weights train.  The
table reports per-SGD-step energy and trainable-weight reduction for
the four benchmark models.
"""

import numpy as np
import pytest

from repro import models
from repro.arch import TrainingCostModel
from repro.experiments.common import format_table

BENCHMARKS = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


def _summaries():
    cost_model = TrainingCostModel()
    rng = np.random.default_rng(0)
    rows = []
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        summary = cost_model.summary(profile)
        summary["model"] = name
        rows.append(summary)
    return rows


def test_bench_onchip_training(benchmark):
    rows = benchmark(_summaries)
    print()
    print(
        format_table(
            [
                (
                    r["model"],
                    r["full_step_uj"],
                    r["rebranch_step_uj"],
                    r["energy_saving"],
                    r["trainable_reduction"],
                    r["full_dram_uj"],
                )
                for r in rows
            ],
            ["model", "full_uJ", "rebranch_uJ", "saving", "train_reduc", "full_dram_uJ"],
        )
    )
    by_model = {r["model"]: r for r in rows}
    # Every model trains cheaper under ReBranch...
    for row in rows:
        assert row["energy_saving"] > 1.0
    # ...and the big models, whose full training spills to DRAM, win most.
    assert by_model["yolo"]["energy_saving"] > by_model["vgg8"]["energy_saving"]
    assert by_model["yolo"]["rebranch_dram_uj"] == pytest.approx(0.0)
