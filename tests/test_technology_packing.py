"""Tests for the Fig. 1 technology model and subarray packing."""

import numpy as np
import pytest

from repro import models
from repro.arch import technology as tech
from repro.arch.packing import (
    WeightTile,
    compare_packings,
    pack_first_fit,
    pack_naive,
    packing_latency_passes,
)
from repro.cim.macro import MacroConfig
from repro.cim.spec import rom_macro_spec, sram_macro_spec


@pytest.fixture(scope="module")
def small_profile():
    model = models.vgg8(width_mult=0.125, rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


class TestProcessNodes:
    def test_density_monotone_with_scaling(self):
        nodes = tech.node_table()
        densities = [n.sram_density_mb_mm2 for n in nodes]
        assert densities == sorted(densities)

    def test_cost_monotone_with_scaling(self):
        nodes = tech.node_table()
        costs = [n.tapeout_cost_musd for n in nodes]
        assert costs == sorted(costs)

    def test_get_node(self):
        assert tech.get_node(28).node_nm == 28

    def test_get_unknown_node(self):
        with pytest.raises(KeyError):
            tech.get_node(3)

    def test_rom28_beats_5nm_sram_cell(self):
        # The paper: "even denser than the commercial SRAM at the 5-7nm node".
        beaten = tech.nodes_beaten_by_rom28()
        assert 5 in beaten and 7 in beaten and 28 in beaten

    def test_rom28_macro_beats_28nm_sram_macro(self):
        beaten = tech.nodes_beaten_by_rom28(include_macro_overhead=True)
        assert 28 in beaten

    def test_cost_of_density(self):
        node = tech.cost_of_density(10.0)
        assert node is not None
        assert node.sram_density_mb_mm2 >= 10.0

    def test_cost_of_unreachable_density(self):
        assert tech.cost_of_density(1000.0) is None

    def test_scaling_curve_normalized(self):
        curve = tech.scaling_curve()
        assert curve[130] == (1.0, 1.0)
        density_5, cost_5 = curve[5]
        assert density_5 > 50  # ~70x denser
        assert cost_5 > 100  # cost explodes faster


class TestStandbyPower:
    def test_rom_standby_zero(self):
        assert tech.standby_energy_j(rom_macro_spec(), 3600.0) == 0.0

    def test_sram_standby_positive(self):
        assert tech.standby_energy_j(sram_macro_spec(), 3600.0) > 0.0

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError):
            tech.standby_energy_j(rom_macro_spec(), -1.0)

    def test_duty_cycle_advantage_grows_when_idle(self):
        busy = tech.duty_cycle_energy_ratio(1e-3, 30.0, 400_000_000, duty_cycle=1.0)
        idle = tech.duty_cycle_energy_ratio(1e-3, 30.0, 400_000_000, duty_cycle=0.01)
        assert idle["rom_advantage"] > busy["rom_advantage"]
        assert busy["rom_advantage"] >= 1.0

    def test_duty_cycle_validation(self):
        with pytest.raises(ValueError):
            tech.duty_cycle_energy_ratio(1e-3, 30.0, 1_000_000, duty_cycle=0.0)
        with pytest.raises(ValueError):
            tech.duty_cycle_energy_ratio(1e-3, -1.0, 1_000_000)


class TestPacking:
    def test_naive_one_tile_per_subarray(self, small_profile):
        result = pack_naive(small_profile)
        assert result.n_subarrays == sum(len(a.tiles) for a in result.assignments)
        assert all(len(a.tiles) == 1 for a in result.assignments)

    def test_packed_never_more_subarrays(self, small_profile):
        naive = pack_naive(small_profile)
        packed = pack_first_fit(small_profile)
        assert packed.n_subarrays <= naive.n_subarrays

    def test_packed_preserves_all_words(self, small_profile):
        naive = pack_naive(small_profile)
        packed = pack_first_fit(small_profile)
        assert packed.total_words == naive.total_words
        assert sum(a.used_words() for a in packed.assignments) == packed.total_words

    def test_no_subarray_overflows(self, small_profile):
        config = MacroConfig()
        packed = pack_first_fit(small_profile, config)
        for assignment in packed.assignments:
            assert assignment.used_rows() <= config.rows
            for shelf in assignment.shelves:
                assert shelf.used_cols <= config.logical_columns
                for tile in shelf.tiles:
                    assert tile.rows <= shelf.height

    def test_utilization_improves(self, small_profile):
        report = compare_packings(small_profile)
        assert report["packed_array_utilization"] >= report["naive_array_utilization"]
        assert report["subarray_saving"] >= 1.0

    def test_passes_positive_and_packed_not_worse(self, small_profile):
        naive = pack_naive(small_profile)
        packed = pack_first_fit(small_profile)
        assert packing_latency_passes(packed) <= packing_latency_passes(naive)
        assert packing_latency_passes(packed) > 0

    def test_utilization_bounded(self, small_profile):
        packed = pack_first_fit(small_profile)
        assert 0 < packed.array_utilization <= 1.0
        assert 0 < packed.adc_utilization <= 1.0

    def test_tile_words(self):
        tile = WeightTile("layer", 10, 4)
        assert tile.words == 40

    def test_fragmented_case_packs_2d(self):
        """Many quarter-size tiles must share subarrays in both dims."""
        from repro import nn
        from repro.models.profile import profile_model

        rng = np.random.default_rng(0)
        layers = [nn.Conv2d(4, 8, 3, padding=1, rng=rng)]
        layers += [nn.Conv2d(8, 8, 3, padding=1, rng=rng) for _ in range(7)]
        model = nn.Sequential(*layers)
        # 72-row x 8-col tiles: four fit side by side per 128x32 subarray.
        profile = profile_model(model, (1, 4, 8, 8))
        naive = pack_naive(profile)
        packed = pack_first_fit(profile)
        assert naive.n_subarrays == 8
        assert packed.n_subarrays <= 3
