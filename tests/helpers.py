"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. inputs[index]."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).data.sum()
        flat[i] = original - eps
        minus = fn(*inputs).data.sum()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradients match central differences for all inputs."""
    out = fn(*inputs)
    out.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_grad(fn, inputs, index)
        assert tensor.grad is not None, f"input {index} has no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {index}",
        )
