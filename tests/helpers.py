"""Shared test utilities: numerical gradient checking and event-based
synchronization for the serving tests.

The synchronization helpers exist so timing-sensitive serve/shard tests
never assert on wall-clock windows ("finished within N seconds") or
sample completion flags at racy moments.  Every wait blocks on the real
synchronization primitive — the queue's condition variable via
``next_batch``, the handle's completion event via ``result`` — with one
generous shared deadline (:data:`DEADLINE`) whose only job is to turn a
genuine deadlock into a test failure instead of a hang.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.nn.tensor import Tensor

#: Shared upper bound for every blocking wait in the serving tests.
#: Generous on purpose: reaching it means the event never fired (a real
#: bug), not that a loaded CI runner was slow.
DEADLINE = 30.0


def next_batch_or_fail(queue, timeout: float = DEADLINE):
    """Block on the queue's condition variable until a batch releases.

    ``next_batch`` returns ``None`` only when the policy never released
    a batch before ``timeout`` — so a non-None return *is* the event
    "the policy (max_batch_size / max_wait) released this batch", with
    no wall-clock assertion needed on top.
    """
    batch = queue.next_batch(timeout=timeout)
    assert batch is not None, (
        f"queue released no batch within {timeout} s — the batching "
        f"policy never fired"
    )
    return batch


def await_results(handles: Sequence, timeout: float = DEADLINE) -> List:
    """Block on every handle's completion event; returns their results.

    ``RequestHandle.result`` waits on a ``threading.Event`` set by the
    worker that completes the request, so this never polls.
    """
    return [handle.result(timeout=timeout) for handle in handles]


def immediate_results(handles: Sequence) -> List:
    """Results of handles that completed *synchronously* at submit time.

    Admission verdicts (queue-full, tenant-cap, unknown-model, shutdown)
    complete the handle inside ``submit`` before it returns, so checking
    ``done()`` here is not a racy sample — a handle still pending was
    admitted and will complete through a worker instead.
    """
    return [handle.result(timeout=0) for handle in handles if handle.done()]


def numerical_grad(
    fn: Callable[..., Tensor], inputs: Sequence[Tensor], index: int, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. inputs[index]."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).data.sum()
        flat[i] = original - eps
        minus = fn(*inputs).data.sum()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradients match central differences for all inputs."""
    out = fn(*inputs)
    out.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_grad(fn, inputs, index)
        assert tensor.grad is not None, f"input {index} has no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {index}",
        )
