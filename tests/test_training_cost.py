"""Tests for the on-chip training cost model (section 3.3)."""

import numpy as np
import pytest

from repro import models
from repro.arch import TrainingCostModel


@pytest.fixture(scope="module")
def vgg_profile():
    model = models.build_model("vgg8", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


@pytest.fixture(scope="module")
def yolo_profile():
    model = models.build_model("yolo", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 416, 416))


@pytest.fixture()
def cost_model():
    return TrainingCostModel()


class TestStepCost:
    def test_full_step_is_three_forwards(self, cost_model, vgg_profile):
        cost = cost_model.step_cost(vgg_profile, "full")
        assert cost.activation_grad_pj == pytest.approx(cost.forward_pj)
        assert cost.weight_grad_pj == pytest.approx(cost.forward_pj)

    def test_rebranch_weight_grad_much_smaller(self, cost_model, vgg_profile):
        cost = cost_model.step_cost(vgg_profile, "rebranch")
        assert cost.weight_grad_pj < 0.35 * cost.forward_pj

    def test_rebranch_trains_small_fraction(self, cost_model, vgg_profile):
        cost = cost_model.step_cost(vgg_profile, "rebranch")
        assert cost.trainable_fraction < 0.35

    def test_full_trains_everything(self, cost_model, vgg_profile):
        cost = cost_model.step_cost(vgg_profile, "full")
        assert cost.trainable_fraction == pytest.approx(1.0)

    def test_write_energy_scales_with_trainable_bits(self, cost_model, vgg_profile):
        full = cost_model.step_cost(vgg_profile, "full")
        rebranch = cost_model.step_cost(vgg_profile, "rebranch")
        assert full.array_write_pj / rebranch.array_write_pj == pytest.approx(
            full.trainable_bits / rebranch.trainable_bits
        )

    def test_unknown_regime_rejected(self, cost_model, vgg_profile):
        with pytest.raises(ValueError, match="regime"):
            cost_model.step_cost(vgg_profile, "lora")

    def test_small_model_no_dram(self, cost_model, vgg_profile):
        for regime in ("full", "rebranch"):
            cost = cost_model.step_cost(vgg_profile, regime)
            if cost.trainable_bits <= cost_model.sram_capacity_bits:
                assert cost.dram_pj == 0.0

    def test_large_model_full_training_hits_dram(self, cost_model, yolo_profile):
        full = cost_model.step_cost(yolo_profile, "full")
        rebranch = cost_model.step_cost(yolo_profile, "rebranch")
        assert full.dram_pj > 0.0
        # The YOLoC branch weights fit on chip: no per-step DRAM.
        assert rebranch.dram_pj == 0.0

    def test_stronger_compression_cheaper_updates(self, cost_model, vgg_profile):
        loose = cost_model.step_cost(vgg_profile, "rebranch", d=2, u=2)
        tight = cost_model.step_cost(vgg_profile, "rebranch", d=8, u=8)
        assert tight.trainable_bits < loose.trainable_bits
        assert tight.array_write_pj < loose.array_write_pj


class TestSummary:
    def test_rebranch_saves_energy(self, cost_model, yolo_profile):
        summary = cost_model.summary(yolo_profile)
        assert summary["energy_saving"] > 1.5

    def test_trainable_reduction_order_of_magnitude(self, cost_model, yolo_profile):
        summary = cost_model.summary(yolo_profile)
        assert summary["trainable_reduction"] > 5

    def test_summary_consistent_with_step_costs(self, cost_model, vgg_profile):
        summary = cost_model.summary(vgg_profile)
        full = cost_model.step_cost(vgg_profile, "full")
        assert summary["full_step_uj"] == pytest.approx(full.total_pj / 1e6)
