"""Tests for sharded pipeline-parallel execution across chiplets.

The load-bearing guarantees:

* **bitwise identity** — ``shard(compiled, n).run(batch)`` equals
  ``compiled.run(batch)`` bit for bit, for every shard count, including
  under bit-line noise (the RNG stream is consumed in plan order either
  way); pipelined streams replay bitwise against per-batch unsharded
  runs seeded by ``stream_rng``, independent of thread interleaving;
* **plan integrity** — shards cover every step exactly once, in order,
  each anchored on a weight layer, balanced over profile cost;
* **link accounting** — every shard boundary charges SIMBA-link
  transfer energy/latency into the ``link_*`` stats fields (and from
  there into sessions), and compute stats are untouched by sharding;
* **serving integration** — a sharded deployment registers and serves
  through the dynamic-batching server unchanged.
"""

import numpy as np
import pytest

from repro import nn
from repro.arch import ChipletLinkSpec, SIMBA_LINK
from repro.cim import BitlineModel, MacroConfig
from repro.cim.cells import ROM_1T
from repro.rebranch.branch import ReBranchConv2d
from repro.runtime import (
    RuntimeConfig,
    ShardedModel,
    compile_model,
    plan_shards,
    reference_forward,
    shard,
    stream_rng,
)
from repro.runtime.sharded import _balanced_cuts
from repro.serve import BatchPolicy, InferenceServer, ModelRegistry

from .helpers import await_results

HW = 8  # input images are (3, HW, HW)


def conv_model(seed=0):
    """Four convs + classifier head: five weight-anchored blocks."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(6, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(8, 10, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(10 * (HW // 2) ** 2, 4, rng=rng),
    )


def linear_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(3 * HW * HW, 32, rng=rng),
        nn.ReLU(),
        nn.Linear(32, 24, rng=rng),
        nn.Tanh(),
        nn.Linear(24, 16, rng=rng),
        nn.ReLU(),
        nn.Linear(16, 4, rng=rng),
    )


def rebranch_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        ReBranchConv2d(nn.Conv2d(8, 8, 3, padding=1, rng=rng), d=2, u=2, rng=rng),
        nn.ReLU(),
        ReBranchConv2d(nn.Conv2d(8, 8, 3, padding=1, rng=rng), d=2, u=2, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(8, 4, rng=rng),
    )


MODELS = {
    "conv": conv_model,
    "linear": linear_model,
    "rebranch": rebranch_model,
}


def model_input(name, n=3, seed=1):
    x = np.random.default_rng(seed).normal(size=(n, 3, HW, HW))
    if name == "linear":
        return x.reshape(n, -1)
    return x


def input_shape(name):
    return (1, 3 * HW * HW) if name == "linear" else (1, 3, HW, HW)


# ----------------------------------------------------------------------
# Bitwise identity
# ----------------------------------------------------------------------
class TestBitwiseIdentity:
    @pytest.mark.parametrize("name", sorted(MODELS))
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_run_matches_unsharded(self, name, n_shards):
        compiled = compile_model(MODELS[name]())
        x = model_input(name)
        expected, expected_stats = compiled.run(x, rng=np.random.default_rng(9))
        sharded = shard(compiled, n_shards, input_shape=input_shape(name))
        got, got_stats = sharded.run(x, rng=np.random.default_rng(9))
        assert np.array_equal(expected, got)
        # Compute accounting is untouched; only link_* fields are added.
        assert got_stats.latency_ns == expected_stats.latency_ns
        assert got_stats.cycles == expected_stats.cycles
        assert got_stats.macs == expected_stats.macs
        for field in (
            "wl_energy_fj",
            "bitline_energy_fj",
            "adc_energy_fj",
            "peripheral_energy_fj",
        ):
            assert getattr(got_stats, field) == getattr(expected_stats, field)

    def test_identity_under_bitline_noise(self):
        """The RNG stream is consumed in plan order on both paths."""
        config = RuntimeConfig(
            rom_config=MacroConfig(
                cell=ROM_1T,
                bitline=BitlineModel(max_rows=128, noise_sigma_counts=0.5),
            )
        )
        compiled = compile_model(conv_model(), config)
        x = model_input("conv")
        expected, _ = compiled.run(x, rng=np.random.default_rng(3))
        sharded = shard(compiled, 3)
        got, _ = sharded.run(x, rng=np.random.default_rng(3))
        assert np.array_equal(expected, got)

    def test_matches_seed_reference_path(self):
        model = conv_model()
        compiled = compile_model(model)
        x = model_input("conv")
        expected, _ = reference_forward(model, x)
        got, _ = shard(compiled, 2).run(x)
        assert np.array_equal(expected, got)

    def test_compile_with_shards_returns_sharded(self):
        sharded = compile_model(conv_model(), shards=2)
        assert isinstance(sharded, ShardedModel)
        assert sharded.n_shards == 2
        # shards=1 is the serial baseline of a sweep — same type, no
        # link crossings — and both entry points agree on it.
        baseline = compile_model(conv_model(), shards=1)
        assert isinstance(baseline, ShardedModel)
        assert baseline.n_shards == 1
        compiled = compile_model(conv_model())
        x = model_input("conv")
        assert np.array_equal(compiled.run(x)[0], sharded.run(x)[0])


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_segments_cover_plan_in_order(self):
        compiled = compile_model(conv_model())
        plan = plan_shards(compiled, 3)
        covered = [i for seg in plan.segments for i in seg.step_indices]
        assert covered == list(range(len(compiled._steps)))
        assert all(seg.layer_ids for seg in plan.segments)

    def test_mac_balance_uses_profile(self):
        compiled = compile_model(conv_model())
        plan = plan_shards(compiled, 2, input_shape=input_shape("conv"))
        assert plan.total_macs > 0
        # The DP minimizes the max segment cost: no segment may carry
        # more than the whole plan minus the smallest block.
        costs = [seg.cost for seg in plan.segments]
        assert max(costs) < plan.total_macs
        assert plan.balance >= 1.0

    def test_weight_bits_fallback_without_shape(self):
        compiled = compile_model(linear_model())
        plan = plan_shards(compiled, 2)
        assert plan.total_macs == 0
        assert plan.total_weight_bits > 0
        assert all(seg.cost == seg.weight_bits for seg in plan.segments)

    def test_too_many_shards_rejected(self):
        compiled = compile_model(conv_model())
        with pytest.raises(ValueError, match="weight-anchored blocks"):
            plan_shards(compiled, 64)

    def test_bad_shard_count_rejected(self):
        compiled = compile_model(conv_model())
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards(compiled, 0)

    def test_plan_mismatch_rejected(self):
        compiled = compile_model(conv_model())
        plan = plan_shards(compiled, 2)
        with pytest.raises(ValueError, match="plan has 2 shards"):
            shard(compiled, 3, plan=plan)

    def test_reshard_recuts_underlying_model(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 4)
        recut = shard(sharded, 2)
        assert recut.n_shards == 2
        assert recut.compiled is compiled

    def test_balanced_cuts_minimize_max_run(self):
        assert _balanced_cuts([1, 1, 1, 1], 2) == [2, 2]
        assert _balanced_cuts([4, 1, 1, 1, 1], 2) == [1, 4]
        assert sum(_balanced_cuts([5, 1, 1, 5], 3)) == 4


# ----------------------------------------------------------------------
# Link accounting
# ----------------------------------------------------------------------
class TestLinkAccounting:
    def test_single_shard_has_no_link_traffic(self):
        compiled = compile_model(conv_model())
        _, stats = shard(compiled, 1).run(model_input("conv"))
        assert stats.link_bits == 0
        assert stats.link_energy_fj == 0
        assert stats.link_latency_ns == 0

    def test_boundary_crossings_charge_simba_link(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 3)
        x = model_input("conv")
        _, stats = sharded.run(x)
        # Replay the boundaries by hand: run each stage serially and
        # measure the tensors crossing the two cuts.
        expected_bits = 0.0
        y = x
        for s in range(sharded.n_shards):
            y = sharded._run_stage(s, y, _fresh_state(compiled))
            if s < sharded.n_shards - 1:
                expected_bits += y.size * compiled.config.activation_bits
        assert stats.link_bits == expected_bits
        assert stats.link_energy_fj == pytest.approx(
            SIMBA_LINK.transfer_energy_pj(expected_bits) * 1e3
        )
        # Transfer time is linear in bits, so the per-boundary sum
        # collapses to one transfer of the total payload.
        assert stats.link_latency_ns == pytest.approx(
            SIMBA_LINK.transfer_time_ns(expected_bits)
        )
        assert stats.total_energy_fj > stats.link_energy_fj > 0

    def test_custom_link_spec(self):
        link = ChipletLinkSpec(energy_pj_per_bit=2.34, pins_per_link=16)
        compiled = compile_model(conv_model())
        _, default_stats = shard(compiled, 2).run(model_input("conv"))
        _, custom_stats = shard(compiled, 2, link=link).run(model_input("conv"))
        assert custom_stats.link_bits == default_stats.link_bits
        assert custom_stats.link_energy_fj == pytest.approx(
            2 * default_stats.link_energy_fj
        )
        assert custom_stats.link_latency_ns == pytest.approx(
            2 * default_stats.link_latency_ns
        )

    def test_session_accumulates_link_energy(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 2)
        session = sharded.new_session()
        x = model_input("conv")
        sharded.run(x, session=session)
        sharded.run(x, session=session)
        assert session.batches == 2
        assert session.samples == 2 * x.shape[0]
        assert session.stats.link_energy_fj > 0
        assert session.energy_per_sample_fj > 0


def _fresh_state(compiled):
    from repro.runtime.compiled import _RunState

    return _RunState(rng=np.random.default_rng(0), encoding=compiled.config.encoding)


# ----------------------------------------------------------------------
# Pipelined streams
# ----------------------------------------------------------------------
class TestRunStream:
    def stream(self, n_batches=6, n=2, seed=0):
        return [model_input("conv", n=n, seed=100 + i) for i in range(n_batches)]

    def test_outputs_bitwise_match_per_batch_unsharded(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 4, input_shape=input_shape("conv"))
        batches = self.stream()
        result = sharded.run_stream(batches, seed=7)
        assert len(result.outputs) == len(batches)
        for i, batch in enumerate(batches):
            expected, _ = compiled.run(batch, rng=stream_rng(7, i))
            assert np.array_equal(result.outputs[i], expected)

    def test_noisy_stream_is_deterministic(self):
        """Thread interleaving must never change outputs: each
        micro-batch owns its RNG."""
        config = RuntimeConfig(
            rom_config=MacroConfig(
                cell=ROM_1T,
                bitline=BitlineModel(max_rows=128, noise_sigma_counts=0.5),
            )
        )
        compiled = compile_model(conv_model(), config)
        sharded = shard(compiled, 3)
        batches = self.stream(n_batches=5)
        first = sharded.run_stream(batches, seed=3)
        second = sharded.run_stream(batches, seed=3)
        for a, b in zip(first.outputs, second.outputs):
            assert np.array_equal(a, b)

    def test_makespans(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 4, input_shape=input_shape("conv"))
        result = sharded.run_stream(self.stream(n_batches=8), seed=0)
        # Serial makespan is exactly the monolithic compute total.
        assert result.serial_makespan_ns == pytest.approx(
            float(result.compute_ns.sum())
        )
        # Pipelining can only help, and can never beat the critical
        # stage (the pipeline's steady-state bound).
        assert result.pipelined_makespan_ns < result.serial_makespan_ns
        slowest_stage = float(result.compute_ns.sum(axis=0).max())
        assert result.pipelined_makespan_ns >= slowest_stage
        assert result.pipeline_speedup > 1.0
        assert (
            result.sharded_serial_makespan_ns
            == result.serial_makespan_ns + result.link_ns.sum()
        )

    def test_stream_session_accounting(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 2)
        session = sharded.new_session()
        batches = self.stream(n_batches=4, n=3)
        result = sharded.run_stream(batches, seed=0, session=session)
        assert session.batches == 4
        assert session.samples == 12
        assert session.stats.link_energy_fj == pytest.approx(
            result.stats.link_energy_fj
        )

    def test_explicit_rngs_replay(self):
        compiled = compile_model(conv_model())
        sharded = shard(compiled, 2)
        batches = self.stream(n_batches=3)
        rngs = [np.random.default_rng(40 + i) for i in range(3)]
        result = sharded.run_stream(batches, rngs=rngs)
        for i, batch in enumerate(batches):
            expected, _ = compiled.run(batch, rng=np.random.default_rng(40 + i))
            assert np.array_equal(result.outputs[i], expected)

    def test_rng_count_mismatch_rejected(self):
        sharded = shard(compile_model(conv_model()), 2)
        with pytest.raises(ValueError, match="rngs"):
            sharded.run_stream(self.stream(n_batches=3), rngs=[np.random.default_rng(0)])

    def test_bad_queue_depth_rejected(self):
        sharded = shard(compile_model(conv_model()), 2)
        with pytest.raises(ValueError, match="queue_depth"):
            sharded.run_stream(self.stream(), queue_depth=0)

    def test_stage_error_propagates(self):
        sharded = shard(compile_model(conv_model()), 2)
        bad = [np.zeros((2, 3, HW, HW)), np.zeros((2, 5, HW, HW))]
        with pytest.raises(Exception):
            sharded.run_stream(bad)

    def test_empty_stream(self):
        sharded = shard(compile_model(conv_model()), 2)
        result = sharded.run_stream([])
        assert result.outputs == []
        assert result.serial_makespan_ns == 0.0
        assert result.pipelined_makespan_ns == 0.0


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
class TestServeIntegration:
    def test_register_and_serve_sharded(self):
        registry = ModelRegistry()
        entry = registry.register(
            "sharded-conv",
            conv_model(),
            shards=2,
            shard_input_shape=input_shape("conv"),
        )
        assert entry.n_shards == 2
        assert isinstance(registry.get("sharded-conv"), ShardedModel)

        x = model_input("conv", n=1)
        policy = BatchPolicy(max_batch_size=4, max_wait_s=0.001)
        with InferenceServer(registry, policy, record_batches=True) as server:
            handles = [
                server.submit("sharded-conv", x, tenant="alice") for _ in range(4)
            ]
            results = await_results(handles)
        assert all(r.ok for r in results)
        # The serving layer adds scheduling, never arithmetic: executed
        # batches replay bitwise through the seed reference path.
        for batch in server.executed_batches:
            expected, _ = reference_forward(
                registry.get(batch.model).model, batch.inputs
            )
            assert np.array_equal(batch.outputs, expected)
        # Link energy reaches tenant accounting.
        assert server.session("alice").stats.link_energy_fj > 0

    def test_unsharded_entry_reports_one_shard(self):
        registry = ModelRegistry()
        entry = registry.register("mono", conv_model())
        assert entry.n_shards == 1
        assert not isinstance(entry.compiled, ShardedModel)

    def test_shards_one_registers_single_shard_deployment(self):
        registry = ModelRegistry()
        entry = registry.register("one", conv_model(), shards=1)
        assert entry.n_shards == 1
        assert isinstance(entry.compiled, ShardedModel)

    def test_hot_swap_to_sharded(self):
        registry = ModelRegistry()
        registry.register("m", conv_model())
        entry = registry.register("m", conv_model(), replace=True, shards=4)
        assert entry.generation == 1
        assert entry.n_shards == 4
