"""Unit tests for functional ops: convolution, pooling, activations, losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .helpers import check_gradients

RNG = np.random.default_rng(42)


def _rand(*shape, grad=True):
    return Tensor(RNG.normal(size=shape), requires_grad=grad)


def _reference_conv2d(x, w, b, stride, padding):
    """Direct nested-loop convolution used as ground truth."""
    n, c, h, wd = x.shape
    oc, ic, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, oc, out_h, out_w))
    for ni in range(n):
        for oi in range(oc):
            for yi in range(out_h):
                for xi in range(out_w):
                    patch = xp[ni, :, yi * sh : yi * sh + kh, xi * sw : xi * sw + kw]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum()
            if b is not None:
                out[ni, oi] += b[oi]
    return out


class TestIm2Col:
    def test_round_trip_shapes(self):
        x = RNG.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 27, 64)
        assert (oh, ow) == (8, 8)

    def test_stride_two(self):
        x = RNG.normal(size=(1, 1, 6, 6))
        cols, (oh, ow) = F.im2col(x, (2, 2), (2, 2), (0, 0))
        assert (oh, ow) == (3, 3)
        assert cols.shape == (1, 4, 9)

    def test_empty_output_raises(self):
        x = RNG.normal(size=(1, 1, 2, 2))
        with pytest.raises(ValueError):
            F.im2col(x, (5, 5), (1, 1), (0, 0))

    def test_col2im_adjointness(self):
        # col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>.
        x = RNG.normal(size=(2, 3, 7, 7))
        cols, _ = F.im2col(x, (3, 3), (2, 2), (1, 1))
        c = RNG.normal(size=cols.shape)
        lhs = (cols * c).sum()
        rhs = (x * F.col2im(c, x.shape, (3, 3), (2, 2), (1, 1))).sum()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)


class TestConv2d:
    @pytest.mark.parametrize(
        "stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), ((1, 2), (2, 1))]
    )
    def test_matches_reference(self, stride, padding):
        x = _rand(2, 3, 7, 8, grad=False)
        w = _rand(4, 3, 3, 3, grad=False)
        b = _rand(4, grad=False)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        ref = _reference_conv2d(
            x.data, w.data, b.data, F._pair(stride), F._pair(padding)
        )
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_gradients(self):
        x, w, b = _rand(2, 2, 5, 5), _rand(3, 2, 3, 3), _rand(3)
        check_gradients(
            lambda a, ww, bb: F.conv2d(a, ww, bb, stride=1, padding=1), [x, w, b]
        )

    def test_gradients_stride2_no_bias(self):
        x, w = _rand(1, 2, 6, 6), _rand(2, 2, 3, 3)
        check_gradients(lambda a, ww: F.conv2d(a, ww, stride=2, padding=1), [x, w])

    def test_pointwise_conv_equals_matmul(self):
        # 1x1 convolution is a per-pixel channel mixing.
        x = _rand(2, 4, 3, 3, grad=False)
        w = _rand(5, 4, 1, 1, grad=False)
        out = F.conv2d(x, w)
        flat = np.einsum("oc,nchw->nohw", w.data[:, :, 0, 0], x.data)
        np.testing.assert_allclose(out.data, flat, rtol=1e-10)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(_rand(1, 3, 5, 5), _rand(2, 4, 3, 3))


class TestPooling:
    def test_max_pool_value(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[[1, 1, 3, 3], [1, 3, 1, 3]] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_max_pool_stride(self):
        x = _rand(2, 3, 6, 6)
        out = F.max_pool2d(x, 2, stride=2)
        assert out.shape == (2, 3, 3, 3)

    def test_avg_pool_value(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, np.ones((1, 1, 2, 2)))

    def test_avg_pool_gradients(self):
        check_gradients(lambda a: F.avg_pool2d(a, 2), [_rand(1, 2, 4, 4)])

    def test_global_avg_pool(self):
        x = _rand(2, 3, 5, 5)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(
            out.data[:, :, 0, 0], x.data.mean(axis=(2, 3)), rtol=1e-10
        )


class TestPadUpsample:
    def test_pad2d_shape_and_values(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        out = F.pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        assert out.data[0, 0, 1, 1] == 1.0

    def test_pad2d_gradients(self):
        check_gradients(lambda a: F.pad2d(a, (1, 2)), [_rand(1, 2, 3, 3)])

    def test_upsample_values(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2))
        out = F.upsample_nearest2d(x, 2)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_upsample_gradients(self):
        check_gradients(lambda a: F.upsample_nearest2d(a, 2), [_rand(1, 2, 3, 3)])


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_relu_gradients(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_leaky_relu_values(self):
        out = F.leaky_relu(Tensor([-2.0, 3.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_leaky_relu_gradients(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        F.leaky_relu(x, 0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_range_and_gradients(self):
        check_gradients(lambda a: F.sigmoid(a), [_rand(4, 3)])
        out = F.sigmoid(Tensor([-100.0, 100.0]))
        assert 0.0 <= out.data[0] < 1e-20
        assert out.data[1] >= 1.0 - 1e-12

    def test_tanh_gradients(self):
        check_gradients(lambda a: F.tanh(a), [_rand(5)])


class TestDropout:
    def test_identity_in_eval(self):
        x = _rand(10, 10, grad=False)
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_identity_when_p_zero(self):
        x = _rand(10, grad=False)
        assert F.dropout(x, 0.0, training=True) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(_rand(3), 1.5, training=True)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_gradient_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((50, 50)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestSoftmaxLosses:
    def test_softmax_normalizes(self):
        out = F.softmax(_rand(4, 7, grad=False), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4), rtol=1e-12)

    def test_softmax_gradients(self):
        check_gradients(lambda a: F.softmax(a, axis=-1), [_rand(3, 5)])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _rand(3, 6, grad=False)
        np.testing.assert_allclose(
            F.log_softmax(x, 1).data, np.log(F.softmax(x, 1).data), rtol=1e-10
        )

    def test_log_softmax_gradients(self):
        check_gradients(lambda a: F.log_softmax(a, axis=-1), [_rand(2, 4)])

    def test_log_softmax_stability(self):
        x = Tensor([[1000.0, 1000.0]])
        out = F.log_softmax(x, axis=1)
        np.testing.assert_allclose(out.data, np.log([[0.5, 0.5]]), rtol=1e-10)

    def test_cross_entropy_matches_manual(self):
        logits = _rand(5, 3, grad=False)
        targets = np.array([0, 1, 2, 0, 1])
        loss = F.cross_entropy(logits, targets)
        probs = F.softmax(logits, 1).data
        manual = -np.log(probs[np.arange(5), targets]).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-10)

    def test_cross_entropy_gradients(self):
        logits = _rand(4, 3)
        targets = np.array([0, 2, 1, 1])
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        probs = F.softmax(Tensor(logits.data), 1).data
        expected = probs.copy()
        expected[np.arange(4), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, expected / 4, rtol=1e-8)

    def test_cross_entropy_rejects_2d_targets(self):
        with pytest.raises(ValueError):
            F.cross_entropy(_rand(2, 3), np.zeros((2, 3), dtype=int))

    def test_mse_loss(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        target = Tensor([0.0, 0.0])
        loss = F.mse_loss(pred, target)
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_bce_with_logits_matches_manual(self):
        logits = _rand(6, grad=False)
        targets = (RNG.random(6) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        p = 1 / (1 + np.exp(-logits.data))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss.item(), manual, rtol=1e-8)

    def test_bce_with_logits_gradients(self):
        logits = _rand(8)
        targets = (RNG.random(8) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(logits, targets)
        loss.backward()
        p = 1 / (1 + np.exp(-logits.data))
        np.testing.assert_allclose(logits.grad, (p - targets) / 8, rtol=1e-8)

    def test_bce_with_logits_extreme_values_finite(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_bce_weighting(self):
        logits = Tensor([0.0, 0.0])
        targets = np.array([1.0, 1.0])
        weighted = F.binary_cross_entropy_with_logits(
            logits, targets, weight=np.array([2.0, 0.0])
        )
        unweighted = F.binary_cross_entropy_with_logits(logits, targets)
        np.testing.assert_allclose(weighted.item(), unweighted.item())
