"""Tests for ReBranch and the alternative flexibility options."""

import numpy as np
import pytest

from repro import models, nn
from repro.nn.tensor import Tensor
from repro.rebranch import (
    ReBranchConv2d,
    SpwdConv2d,
    TcamDistanceClassifier,
    RoslClassifier,
    TrainConfig,
    TransferTrainer,
    apply_all_rom,
    apply_all_sram,
    apply_atl,
    apply_deep_conv,
    apply_rebranch,
    convert_to_rebranch,
    convert_to_spwd,
    evaluate_accuracy,
    method_footprint,
    rebranch_modules,
)

RNG = np.random.default_rng(17)


def _conv(in_c=8, out_c=8, k=3, stride=1):
    return nn.Conv2d(in_c, out_c, k, stride=stride, padding=k // 2, rng=np.random.default_rng(0))


def _x(*shape):
    return Tensor(RNG.normal(size=shape))


class TestReBranchConv2d:
    def test_initially_identical_to_trunk(self):
        trunk = _conv()
        reference = trunk.weight.data.copy()
        layer = ReBranchConv2d(trunk, rng=np.random.default_rng(1))
        x = _x(2, 8, 6, 6)
        expected = nn.conv2d(x, Tensor(reference), trunk.bias, 1, 1)
        np.testing.assert_allclose(layer(x).data, expected.data)

    def test_trunk_frozen_branch_trainable(self):
        layer = ReBranchConv2d(_conv(), rng=np.random.default_rng(1))
        assert not layer.trunk.weight.requires_grad
        assert not layer.compress.weight.requires_grad
        assert not layer.decompress.weight.requires_grad
        assert layer.res_conv.weight.requires_grad

    def test_compression_ratio_near_du(self):
        layer = ReBranchConv2d(_conv(16, 16), d=4, u=4, rng=np.random.default_rng(1))
        assert layer.compression_ratio == pytest.approx(16.0, rel=0.1)

    def test_stride_preserved(self):
        layer = ReBranchConv2d(_conv(8, 16, 3, stride=2), rng=np.random.default_rng(1))
        out = layer(_x(1, 8, 8, 8))
        assert out.shape == (1, 16, 4, 4)

    def test_branch_changes_output_after_update(self):
        layer = ReBranchConv2d(_conv(), rng=np.random.default_rng(1))
        x = _x(1, 8, 6, 6)
        before = layer(x).data.copy()
        layer.res_conv.weight.data += 0.1
        after = layer(x).data
        assert not np.allclose(before, after)

    def test_gradients_only_reach_res_conv(self):
        layer = ReBranchConv2d(_conv(), rng=np.random.default_rng(1))
        layer(_x(1, 8, 6, 6)).sum().backward()
        assert layer.res_conv.weight.grad is not None
        assert layer.trunk.weight.grad is None

    def test_invalid_ratios(self):
        with pytest.raises(ValueError):
            ReBranchConv2d(_conv(), d=0)

    def test_small_channel_counts_clamped(self):
        layer = ReBranchConv2d(_conv(2, 2), d=8, u=8, rng=np.random.default_rng(1))
        assert layer.res_conv.in_channels == 1
        assert layer(_x(1, 2, 4, 4)).shape == (1, 2, 4, 4)

    def test_profile_forward_counts_all_four_convs(self):
        layer = ReBranchConv2d(_conv(8, 8), rng=np.random.default_rng(1))
        profile = models.profile_model(layer, (1, 8, 6, 6))
        conv_layers = [l for l in profile.layers if l.kind == "conv"]
        assert len(conv_layers) == 4


class TestConvert:
    def test_converts_spatial_convs_only(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        n = convert_to_rebranch(model, skip_last=False, rng=np.random.default_rng(1))
        assert n == 6
        assert len(rebranch_modules(model)) == 6

    def test_function_preserved_after_conversion(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        model.eval()
        x = _x(2, 3, 16, 16)
        before = model(x).data.copy()
        convert_to_rebranch(model, skip_last=False, rng=np.random.default_rng(1))
        model.eval()
        np.testing.assert_allclose(model(x).data, before, atol=1e-10)

    def test_skip_last_leaves_final_conv(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        n = convert_to_rebranch(model, skip_last=True, rng=np.random.default_rng(1))
        assert n == 5

    def test_resnet_shortcuts_untouched(self):
        model = models.resnet18(
            num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0)
        )
        convert_to_rebranch(model, skip_last=False, rng=np.random.default_rng(1))
        for block in model.modules():
            if isinstance(block, models.BasicBlock) and isinstance(
                block.shortcut, nn.Module
            ):
                assert not isinstance(block.shortcut, ReBranchConv2d)

    def test_forward_works_after_resnet_conversion(self):
        model = models.resnet18(
            num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0)
        )
        convert_to_rebranch(model, rng=np.random.default_rng(1))
        assert model(_x(1, 3, 16, 16)).shape == (1, 5)

    def test_custom_predicate(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        n = convert_to_rebranch(
            model, predicate=lambda name, conv: False, rng=np.random.default_rng(1)
        )
        assert n == 0


class TestPolicies:
    def _model(self):
        return models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))

    def test_all_sram_everything_trainable(self):
        model = apply_all_sram(self._model())
        assert model.num_parameters(trainable_only=True) == model.num_parameters()

    def test_all_rom_only_classifier(self):
        model = apply_all_rom(self._model())
        trainable = {n for n, p in model.named_parameters() if p.requires_grad}
        assert trainable
        assert all(name.startswith("classifier") for name in trainable)

    def test_deep_conv_unfreezes_last_spatial_conv(self):
        model = apply_deep_conv(self._model())
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert convs[-1].weight.requires_grad
        assert not convs[0].weight.requires_grad

    def test_atl_freezes_prefix(self):
        model = apply_atl(self._model(), 3)
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert all(not c.weight.requires_grad for c in convs[:3])
        assert all(c.weight.requires_grad for c in convs[3:])

    def test_atl_negative_rejected(self):
        with pytest.raises(ValueError):
            apply_atl(self._model(), -1)

    def test_rebranch_policy_trainable_fraction(self):
        model = apply_rebranch(self._model(), rng=np.random.default_rng(1))
        trainable = model.num_parameters(trainable_only=True)
        assert 0 < trainable < 0.4 * model.num_parameters()


class TestSpwd:
    def test_decoration_initially_zero(self):
        layer = SpwdConv2d(_conv(), rng=np.random.default_rng(1))
        x = _x(1, 8, 6, 6)
        expected = layer.trunk(x)
        np.testing.assert_allclose(layer(x).data, expected.data)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SpwdConv2d(_conv(), bits=0)

    def test_decoration_is_low_bit(self):
        layer = SpwdConv2d(_conv(), bits=2, rng=np.random.default_rng(1))
        layer.decoration.weight.data = RNG.normal(size=layer.decoration.weight.shape)
        out = layer(_x(1, 8, 6, 6))
        assert out.shape == (1, 8, 6, 6)

    def test_convert_counts(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        assert convert_to_spwd(model, rng=np.random.default_rng(1)) == 6

    def test_footprint_counts_low_bits(self):
        model = nn.Sequential(_conv())
        convert_to_spwd(model, bits=2, rng=np.random.default_rng(1))
        footprint = method_footprint(model, weight_bits=8)
        layer = model[0]
        assert footprint.sram_bits == layer.decoration.weight.size * 2
        assert footprint.rom_bits == (layer.trunk.weight.size + layer.trunk.bias.size) * 8


class TestRosl:
    def test_tcam_stores_and_classifies(self):
        tcam = TcamDistanceClassifier(feature_dim=16, num_classes=3)
        rng = np.random.default_rng(0)
        prototypes = rng.normal(size=(3, 16))
        features = np.repeat(prototypes, 5, axis=0) + 0.05 * rng.normal(size=(15, 16))
        labels = np.repeat(np.arange(3), 5)
        tcam.fit(features, labels)
        assert (tcam.predict(features) == labels).mean() > 0.9

    def test_unfitted_classes_never_predicted(self):
        tcam = TcamDistanceClassifier(feature_dim=8, num_classes=4)
        tcam.fit(np.ones((2, 8)), np.array([0, 0]))
        preds = tcam.predict(np.random.default_rng(0).normal(size=(5, 8)))
        assert (preds == 0).all()

    def test_tcam_bits(self):
        tcam = TcamDistanceClassifier(feature_dim=10, num_classes=4)
        assert tcam.tcam_bits == 2 * 4 * 10

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            TcamDistanceClassifier(0, 3)

    def test_feature_dim_mismatch(self):
        tcam = TcamDistanceClassifier(8, 2)
        with pytest.raises(ValueError):
            tcam.fit(np.ones((2, 9)), np.array([0, 1]))

    def test_rosl_end_to_end(self):
        conv = nn.Conv2d(1, 4, 3, padding=1, rng=np.random.default_rng(0))
        # Deterministic mean-sign detectors: channels respond to the
        # input's global sign with alternating polarity.
        conv.weight.data = np.stack(
            [((-1.0) ** c / 9.0) * np.ones((1, 3, 3)) for c in range(4)]
        )
        conv.bias.data = np.zeros(4)
        extractor = nn.Sequential(conv, nn.GlobalAvgPool2d(), nn.Flatten())
        rosl = RoslClassifier(extractor, feature_dim=4, num_classes=2)
        rng = np.random.default_rng(1)
        x0 = rng.normal(loc=-1.0, size=(10, 1, 8, 8))
        x1 = rng.normal(loc=1.0, size=(10, 1, 8, 8))
        x = np.concatenate([x0, x1])
        y = np.array([0] * 10 + [1] * 10)
        rosl.fit(x, y)
        assert rosl.accuracy(x, y) > 0.8
        # Extractor must remain frozen (ROM).
        assert all(not p.requires_grad for p in extractor.parameters())


class TestTrainer:
    def test_requires_trainable_params(self):
        model = models.vgg8(num_classes=3, width_mult=0.0625, rng=np.random.default_rng(0))
        model.freeze()
        with pytest.raises(ValueError):
            TransferTrainer(model)

    def test_short_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(12, 16, rng=rng), nn.ReLU(), nn.Linear(16, 2, rng=rng)
        )
        x = rng.normal(size=(64, 3, 2, 2))
        y = (x.reshape(64, -1)[:, 0] > 0).astype(int)
        result = TransferTrainer(model, TrainConfig(epochs=12, lr=1e-2)).fit(x, y, x, y)
        assert result.losses[-1] < result.losses[0]
        assert result.test_accuracy > 0.8

    def test_frozen_weights_unchanged_during_training(self):
        rng = np.random.default_rng(0)
        model = models.vgg8(num_classes=3, width_mult=0.0625, rng=rng)
        apply_all_rom(model)
        frozen_before = model.features[0].conv.weight.data.copy()
        x = rng.normal(size=(32, 3, 16, 16))
        y = rng.integers(0, 3, size=32)
        TransferTrainer(model, TrainConfig(epochs=2)).fit(x, y)
        np.testing.assert_array_equal(model.features[0].conv.weight.data, frozen_before)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")

    def test_evaluate_accuracy(self):
        model = nn.Sequential(nn.Flatten(), nn.Linear(4, 2, rng=np.random.default_rng(0)))
        model[1].weight.data = np.array([[1.0, 0, 0, 0], [-1.0, 0, 0, 0]])
        model[1].bias.data = np.zeros(2)
        x = np.zeros((4, 1, 2, 2))
        x[:2, 0, 0, 0] = 5.0
        x[2:, 0, 0, 0] = -5.0
        y = np.array([0, 0, 1, 1])
        assert evaluate_accuracy(model, x, y) == 1.0


class TestFootprint:
    def test_rebranch_saves_area_vs_all_sram(self):
        base = models.vgg8(num_classes=5, width_mult=0.125, rng=np.random.default_rng(0))
        all_sram = method_footprint(apply_all_sram(base))
        branched = models.vgg8(num_classes=5, width_mult=0.125, rng=np.random.default_rng(0))
        apply_rebranch(branched, rng=np.random.default_rng(1))
        rebranch = method_footprint(branched)
        # Paper: ~10x memory area saving vs the all-SRAM baseline.
        assert rebranch.normalized_to(all_sram) < 0.35

    def test_all_rom_smallest(self):
        model = models.vgg8(num_classes=5, width_mult=0.125, rng=np.random.default_rng(0))
        apply_all_rom(model)
        footprint = method_footprint(model)
        assert footprint.rom_area_mm2 < footprint.sram_area_mm2 * 20
        assert footprint.total_bits == model.num_parameters() * 8
