"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cim import AdcSpec, CimMacro, MacroConfig
from repro.cim.macro import _bit_planes
from repro.eval.detection import iou, iou_matrix
from repro.nn import functional as F
from repro.nn.tensor import Tensor, unbroadcast
from repro.quant import QuantSpec, dequantize, quantize

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestQuantProperties:
    @given(finite_arrays, st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_error_within_half_step(self, values, bits):
        spec = QuantSpec(bits=bits)
        codes, scale = quantize(values, spec)
        recon = dequantize(codes, scale)
        # Values inside the symmetric range reconstruct within scale/2;
        # the most negative extreme may clip by at most one step.
        assert np.abs(recon - values).max() <= float(scale) + 1e-9

    @given(finite_arrays, st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_codes_in_declared_range(self, values, bits):
        spec = QuantSpec(bits=bits)
        codes, _ = quantize(values, spec)
        assert codes.min() >= spec.qmin
        assert codes.max() <= spec.qmax

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_quantization_idempotent(self, values):
        spec = QuantSpec(bits=8)
        codes, scale = quantize(values, spec)
        recon = dequantize(codes, scale)
        codes2, scale2 = quantize(recon, spec)
        np.testing.assert_allclose(dequantize(codes2, scale2), recon, atol=1e-9)

    @given(
        st.integers(2, 8),
        hnp.arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
            elements=st.integers(-128, 127),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_planes_reconstruct(self, bits, codes):
        codes = np.clip(codes, -(2 ** (bits - 1)), 2 ** (bits - 1) - 1)
        planes, weights = _bit_planes(codes, bits, signed=True)
        recon = np.einsum("k,k...->...", weights, planes)
        np.testing.assert_array_equal(recon, codes)


class TestIouProperties:
    boxes = st.tuples(
        st.floats(0, 0.8), st.floats(0, 0.8), st.floats(0.05, 0.2), st.floats(0.05, 0.2)
    ).map(lambda t: np.array([t[0], t[1], t[0] + t[2], t[1] + t[3]]))

    @given(boxes, boxes)
    @settings(max_examples=100, deadline=None)
    def test_iou_symmetric(self, a, b):
        assert iou(a, b) == iou(b, a)

    @given(boxes, boxes)
    @settings(max_examples=100, deadline=None)
    def test_iou_in_unit_interval(self, a, b):
        value = iou(a, b)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(boxes)
    @settings(max_examples=50, deadline=None)
    def test_iou_self_is_one(self, a):
        assert abs(iou(a, a) - 1.0) < 1e-9

    @given(st.lists(boxes, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_iou_matrix_consistent_with_scalar(self, box_list):
        boxes = np.stack(box_list)
        matrix = iou_matrix(boxes, boxes)
        for i in range(len(boxes)):
            assert abs(matrix[i, i] - 1.0) < 1e-9
            for j in range(len(boxes)):
                assert abs(matrix[i, j] - iou(boxes[i], boxes[j])) < 1e-9


class TestTensorProperties:
    small = hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
        elements=st.floats(-10, 10, allow_nan=False),
    )

    @given(small)
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(values, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(values))

    @given(small, small)
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, a, b):
        if a.shape != b.shape:
            return
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_array_equal(left, right)

    @given(small)
    @settings(max_examples=50, deadline=None)
    def test_relu_idempotent(self, values):
        once = F.relu(Tensor(values)).data
        twice = F.relu(Tensor(once)).data
        np.testing.assert_array_equal(once, twice)

    @given(small)
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_sum_to_one(self, values):
        if values.ndim != 2:
            return
        probs = F.softmax(Tensor(values), axis=1).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(values.shape[0]), rtol=1e-9)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, values):
        target_shape = (1,) + values.shape[1:]
        grad = np.broadcast_to(np.ones(target_shape), values.shape).copy()
        reduced = unbroadcast(grad, target_shape)
        assert reduced.shape == target_shape
        assert reduced.sum() == grad.sum()


class TestMacroProperties:
    @given(
        st.integers(1, 31),  # rows (full_scale <= levels-1 keeps ADC exact)
        st.integers(1, 4),  # logical cols
        st.integers(0, 3),  # data seed
    )
    @settings(max_examples=40, deadline=None)
    def test_macro_exact_when_adc_resolves_rows(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        config = MacroConfig(
            rows=rows if rows > 0 else 1,
            phys_columns=32,
            n_adcs=16,
            adc=AdcSpec(bits=5),
            signed_inputs=True,
        )
        weights = rng.integers(-128, 128, size=(rows, min(cols, config.logical_columns)))
        macro = CimMacro(config, weights)
        x = rng.integers(-128, 128, size=(rows, 2))
        out, _ = macro.matmul(x)
        np.testing.assert_array_equal(out, macro.exact_matmul(x))

    @given(st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_energy_monotone_in_vectors(self, seed):
        rng = np.random.default_rng(seed)
        config = MacroConfig()
        macro = CimMacro(config, rng.integers(-8, 8, size=(64, 8)))
        x1 = rng.integers(0, 32, size=(64, 1))
        x2 = np.concatenate([x1, x1], axis=1)
        _, s1 = macro.matmul(x1)
        _, s2 = macro.matmul(x2)
        assert s2.total_energy_fj > s1.total_energy_fj
        assert s2.macs == 2 * s1.macs


# -- chaos fault schedules ---------------------------------------------

from repro.chaos import FaultEvent, FaultSchedule, generate_schedule
from repro.chaos.schedule import (
    ADC_DRIFT,
    BITLINE_NOISE,
    LINK_DEGRADE,
    SHARD_DEATH,
)


@st.composite
def fault_events(draw):
    """Valid FaultEvents across every kind and firing mode."""
    kind = draw(st.sampled_from((SHARD_DEATH, LINK_DEGRADE, ADC_DRIFT, BITLINE_NOISE)))
    by_index = draw(st.booleans())
    kwargs = {
        "kind": kind,
        "at_index": draw(st.integers(0, 256)) if by_index else None,
        "at_chip_ns": (
            None
            if by_index
            else draw(st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False))
        ),
        "label": draw(st.sampled_from(("", "a", "ramp-1"))),
    }
    if kind in (SHARD_DEATH, LINK_DEGRADE):
        kwargs["shard"] = draw(st.integers(0, 7))
    else:
        kwargs["shard"] = draw(st.one_of(st.none(), st.integers(0, 7)))
    if kind == SHARD_DEATH:
        kwargs["drop"] = draw(st.integers(0, 4))
    else:
        kwargs["duration"] = draw(st.one_of(st.none(), st.integers(1, 64)))
    if kind in (ADC_DRIFT, BITLINE_NOISE):
        kwargs["magnitude"] = draw(
            st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
        )
    if kind == ADC_DRIFT:
        kwargs["gain_slope"] = draw(
            st.floats(-0.5, 0.5, allow_nan=False, allow_infinity=False)
        )
    if kind == LINK_DEGRADE:
        kwargs["latency_factor"] = draw(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False, exclude_min=True)
        )
        kwargs["energy_factor"] = draw(
            st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False, exclude_min=True)
        )
    return FaultEvent(**kwargs)


fault_schedules = st.builds(
    FaultSchedule,
    seed=st.integers(0, 2**31 - 1),
    events=st.lists(fault_events(), max_size=8).map(tuple),
)


class TestFaultScheduleProperties:
    @given(fault_schedules)
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trip_identity(self, schedule):
        # meta round trip is exact (events are frozen dataclasses with
        # value equality), and the JSON text itself is stable.
        assert FaultSchedule.from_meta(schedule.to_meta()) == schedule
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored == schedule
        assert restored.to_json() == schedule.to_json()

    @given(fault_schedules)
    @settings(max_examples=60, deadline=None)
    def test_normalization_sorts_and_is_idempotent(self, schedule):
        normalized = schedule.normalized()
        keys = [e.firing_key() for e in normalized.events]
        assert keys == sorted(keys)
        # Stable sort: idempotent, and a second normalization returns
        # the very same object (the no-op fast path).
        assert normalized.normalized() is normalized
        # Same multiset of events — normalization reorders, never edits.
        assert sorted(map(id, normalized.events)) == sorted(
            map(id, schedule.events)
        )

    @given(fault_schedules, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_event_order_invariance_under_shuffle(self, schedule, rnd):
        # Normalizing any permutation yields the same firing-key order;
        # ties (stable sort) preserve the permuted insertion order, so
        # compare the sorted key sequences and the event multiset.
        shuffled = list(schedule.events)
        rnd.shuffle(shuffled)
        from dataclasses import replace

        permuted = replace(schedule, events=tuple(shuffled)).normalized()
        assert [e.firing_key() for e in permuted.events] == [
            e.firing_key() for e in schedule.normalized().events
        ]
        assert sorted(permuted.events, key=repr) == sorted(
            schedule.events, key=repr
        )

    @given(
        st.integers(0, 2**16),
        st.integers(1, 64),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_schedules_monotone_and_replayable(
        self, seed, n_batches, n_shards, n_events
    ):
        schedule = generate_schedule(
            seed, n_batches=n_batches, n_shards=n_shards, n_events=n_events
        )
        indexes = [e.at_index for e in schedule.events]
        assert all(i is not None for i in indexes)
        assert indexes == sorted(indexes)  # firing-point monotonicity
        assert all(0 <= i < n_batches for i in indexes)
        # Same seed, same draw — generation is replayable.
        again = generate_schedule(
            seed, n_batches=n_batches, n_shards=n_shards, n_events=n_events
        )
        assert again == schedule
