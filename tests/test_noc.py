"""Tests for the Fig. 9 on-chip network model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import models
from repro.arch import (
    MeshNocSpec,
    map_layers_to_tiles,
    noc_share_of_compute,
)


@pytest.fixture(scope="module")
def vgg_profile():
    model = models.build_model("vgg8", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


class TestMeshSpec:
    def test_tile_count(self):
        assert MeshNocSpec(rows=3, cols=5).n_tiles == 15

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError, match="mesh"):
            MeshNocSpec(rows=0, cols=4)

    def test_coord_round_trip(self):
        spec = MeshNocSpec(rows=4, cols=4)
        assert spec.tile_coord(0) == (0, 0)
        assert spec.tile_coord(5) == (1, 1)
        assert spec.tile_coord(15) == (3, 3)

    def test_coord_out_of_range(self):
        with pytest.raises(IndexError):
            MeshNocSpec(rows=2, cols=2).tile_coord(4)

    def test_hops_manhattan(self):
        spec = MeshNocSpec(rows=4, cols=4)
        assert spec.hops(0, 0) == 0
        assert spec.hops(0, 3) == 3
        assert spec.hops(0, 15) == 6

    def test_route_is_xy(self):
        spec = MeshNocSpec(rows=3, cols=3)
        # 0=(0,0) -> 8=(2,2): X first to (0,2)=2, then Y through 5 to 8.
        assert spec.route(0, 8) == [0, 1, 2, 5, 8]

    def test_route_length_matches_hops(self):
        spec = MeshNocSpec(rows=4, cols=5)
        for src in (0, 7, 19):
            for dst in (0, 12, 19):
                assert len(spec.route(src, dst)) == spec.hops(src, dst) + 1

    def test_graph_is_connected_mesh(self):
        import networkx as nx

        spec = MeshNocSpec(rows=3, cols=4)
        graph = spec.graph()
        assert graph.number_of_nodes() == 12
        assert nx.is_connected(graph)
        # Interior nodes have degree 4, corners 2.
        degrees = dict(graph.degree())
        assert degrees[5] == 4
        assert degrees[0] == 2

    def test_graph_distance_equals_hops(self):
        import networkx as nx

        spec = MeshNocSpec(rows=3, cols=3)
        graph = spec.graph()
        for src in range(9):
            for dst in range(9):
                assert (
                    nx.shortest_path_length(graph, src, dst) == spec.hops(src, dst)
                )

    def test_zero_hop_transfer_free(self):
        spec = MeshNocSpec()
        assert spec.transfer_energy_pj(1e6, 3, 3) == 0.0
        assert spec.transfer_latency_ns(1e6, 3, 3) == 0.0

    def test_energy_linear_in_bits_and_hops(self):
        spec = MeshNocSpec(rows=4, cols=4)
        one = spec.transfer_energy_pj(100, 0, 1)
        assert spec.transfer_energy_pj(200, 0, 1) == pytest.approx(2 * one)
        assert spec.transfer_energy_pj(100, 0, 3) == pytest.approx(3 * one)

    def test_average_hops_grows_with_mesh(self):
        small = MeshNocSpec(rows=2, cols=2).average_hops
        large = MeshNocSpec(rows=6, cols=6).average_hops
        assert large > small

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 35), st.integers(0, 35))
    @settings(max_examples=50, deadline=None)
    def test_hops_symmetric_and_triangle(self, rows, cols, a, b):
        spec = MeshNocSpec(rows=rows, cols=cols)
        a %= spec.n_tiles
        b %= spec.n_tiles
        assert spec.hops(a, b) == spec.hops(b, a)
        assert spec.hops(a, b) <= spec.hops(a, 0) + spec.hops(0, b)


class TestTrafficMapping:
    def test_flows_cover_layer_chain(self, vgg_profile):
        report = map_layers_to_tiles(vgg_profile)
        assert len(report.flows) == len(vgg_profile.weight_layers()) - 1
        assert report.total_bits > 0

    def test_serpentine_keeps_neighbors_adjacent(self, vgg_profile):
        report = map_layers_to_tiles(vgg_profile, MeshNocSpec(rows=4, cols=4))
        hop_counts = [
            report.spec.hops(src, dst) for _, src, dst, _ in report.flows
        ]
        # A feed-forward chain on a serpentine floorplan: every flow
        # between distinct tiles is exactly one hop.
        assert all(h <= 1 for h in hop_counts)

    def test_link_loads_positive(self, vgg_profile):
        report = map_layers_to_tiles(vgg_profile)
        loads = report.link_loads()
        assert all(load > 0 for load in loads.values())
        assert report.max_link_load_bits == max(loads.values())

    def test_tiny_mesh_wraps(self, vgg_profile):
        report = map_layers_to_tiles(vgg_profile, MeshNocSpec(rows=1, cols=2))
        assert report.total_energy_pj >= 0

    def test_share_of_compute_small(self, vgg_profile):
        """The Fig. 9 simplification: NoC is a few percent of compute."""
        from repro.arch.mapping import map_model
        from repro.cim.spec import rom_macro_spec

        mapping = map_model(vgg_profile, "yoloc")
        compute_pj = mapping.total_macs * rom_macro_spec().energy_per_op_fj / 1000.0
        share = noc_share_of_compute(vgg_profile, compute_pj)
        assert 0 < share < 0.10

    def test_share_requires_positive_compute(self, vgg_profile):
        with pytest.raises(ValueError, match="compute energy"):
            noc_share_of_compute(vgg_profile, 0.0)
