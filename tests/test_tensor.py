"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled, unbroadcast, tensor

from .helpers import check_gradients


RNG = np.random.default_rng(1234)


def _rand(*shape):
    return Tensor(RNG.normal(size=shape), requires_grad=True)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_tensor_factory(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad

    def test_construction_from_tensor_copies_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_cuts_graph(self):
        a = _rand(3)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_without_grad_raises(self):
        t = _rand(3)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_wrong_grad_shape_raises(self):
        t = _rand(3)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones((4,)))

    def test_grad_accumulates_across_backwards(self):
        t = _rand(2)
        (t.sum()).backward()
        (t.sum()).backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(2))

    def test_zero_grad(self):
        t = _rand(2)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        a = _rand(3)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_flag_restored_after_exception(self):
        assert is_grad_enabled()
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_new_tensor_in_no_grad_does_not_require_grad(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_leading_dim(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, 4 * np.ones((2, 3)))

    def test_kept_one_dim(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (1, 3))
        np.testing.assert_allclose(out, 2 * np.ones((1, 3)))

    def test_scalar(self):
        g = np.ones((5, 5))
        out = unbroadcast(g, ())
        assert out.shape == ()
        assert out == 25


class TestArithmeticGradients:
    def test_add(self):
        check_gradients(lambda a, b: a + b, [_rand(3, 4), _rand(3, 4)])

    def test_add_broadcast(self):
        check_gradients(lambda a, b: a + b, [_rand(3, 4), _rand(4)])

    def test_add_scalar(self):
        check_gradients(lambda a: a + 2.5, [_rand(3)])

    def test_radd(self):
        check_gradients(lambda a: 2.5 + a, [_rand(3)])

    def test_sub(self):
        check_gradients(lambda a, b: a - b, [_rand(2, 3), _rand(2, 3)])

    def test_rsub(self):
        check_gradients(lambda a: 1.0 - a, [_rand(3)])

    def test_neg(self):
        check_gradients(lambda a: -a, [_rand(3)])

    def test_mul(self):
        check_gradients(lambda a, b: a * b, [_rand(3, 4), _rand(3, 4)])

    def test_mul_broadcast(self):
        check_gradients(lambda a, b: a * b, [_rand(2, 3, 4), _rand(1, 3, 1)])

    def test_div(self):
        a = _rand(3, 4)
        b = Tensor(RNG.uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        check_gradients(lambda x, y: x / y, [a, b])

    def test_rdiv(self):
        b = Tensor(RNG.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda y: 2.0 / y, [b])

    def test_pow(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda x: x**3, [a])

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            _rand(3) ** _rand(3)

    def test_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda x: x.sqrt(), [a])

    def test_abs(self):
        a = Tensor([1.5, -2.5, 3.0], requires_grad=True)
        check_gradients(lambda x: x.abs(), [a])

    def test_clip(self):
        a = Tensor([-2.0, -0.5, 0.5, 2.0], requires_grad=True)
        out = a.clip(-1.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(out.data, [-1.0, -0.5, 0.5, 1.0])
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0])


class TestUnaryGradients:
    def test_exp(self):
        check_gradients(lambda x: x.exp(), [_rand(3, 2)])

    def test_log(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda x: x.log(), [a])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda x: x.sum(), [_rand(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda x: x.sum(axis=1), [_rand(3, 4)])

    def test_sum_axis_keepdims(self):
        check_gradients(lambda x: x.sum(axis=0, keepdims=True), [_rand(3, 4)])

    def test_sum_multiple_axes(self):
        check_gradients(lambda x: x.sum(axis=(0, 2)), [_rand(2, 3, 4)])

    def test_mean_all(self):
        check_gradients(lambda x: x.mean(), [_rand(5)])

    def test_mean_axis(self):
        check_gradients(lambda x: x.mean(axis=(2, 3), keepdims=True), [_rand(2, 3, 4, 4)])

    def test_max_all(self):
        a = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        out = a.max()
        out.backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [0, 0]])

    def test_max_axis(self):
        a = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape(self):
        check_gradients(lambda x: x.reshape(6), [_rand(2, 3)])

    def test_reshape_tuple_arg(self):
        t = _rand(2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_reshape_minus_one(self):
        t = _rand(2, 3, 4)
        assert t.reshape(2, -1).shape == (2, 12)

    def test_transpose_default(self):
        check_gradients(lambda x: x.transpose(), [_rand(2, 3)])

    def test_transpose_axes(self):
        check_gradients(lambda x: x.transpose(2, 0, 1), [_rand(2, 3, 4)])

    def test_getitem_slice(self):
        check_gradients(lambda x: x[1:], [_rand(4, 3)])

    def test_getitem_fancy(self):
        t = _rand(4, 3)
        idx = (np.array([0, 1, 2]), np.array([2, 1, 0]))
        picked = t[idx]
        picked.sum().backward()
        expected = np.zeros((4, 3))
        expected[idx] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        t = _rand(3)
        picked = t[np.array([0, 0, 1])]
        picked.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 1.0, 0.0])

    def test_concatenate(self):
        a, b = _rand(2, 3), _rand(4, 3)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((4, 3)))

    def test_concatenate_axis1_gradients(self):
        a, b = _rand(2, 3), _rand(2, 2)
        check_gradients(lambda x, y: Tensor.concatenate([x, y], axis=1), [a, b])


class TestMatmul:
    def test_2d(self):
        check_gradients(lambda a, b: a @ b, [_rand(3, 4), _rand(4, 5)])

    def test_matvec(self):
        check_gradients(lambda a, b: a @ b, [_rand(3, 4), _rand(4)])

    def test_batched(self):
        check_gradients(lambda a, b: a @ b, [_rand(2, 3, 4), _rand(2, 4, 5)])

    def test_value(self):
        a, b = _rand(3, 4), _rand(4, 5)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestComparisons:
    def test_gt_returns_ndarray(self):
        result = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(result, np.ndarray)
        np.testing.assert_array_equal(result, [False, True])

    def test_le(self):
        np.testing.assert_array_equal(Tensor([1.0, 3.0]) <= 1.0, [True, False])


class TestGraph:
    def test_diamond_graph_gradient(self):
        # y = x*x + x*x must give dy/dx = 4x (shared subexpression).
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = y + y
        z.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [12.0])

    def test_long_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [1.01**50], rtol=1e-10)

    def test_no_grad_leaf_receives_nothing(self):
        a = Tensor([1.0])
        b = Tensor([2.0], requires_grad=True)
        (a * b).backward(np.ones(1))
        assert a.grad is None
        np.testing.assert_allclose(b.grad, [1.0])
