"""Smoke tests for every ``examples/*.py`` entry point.

The examples are the documentation's executable surface (docs/ and the
README link straight into them), so each one runs end-to-end here under
``REPRO_EXAMPLE_SMOKE=1`` — the seconds-scale budget the heavy examples
honour — and must exit cleanly.  A new example is picked up
automatically by the glob; if it trains anything, it must implement the
smoke hook to stay inside the per-example time box.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Per-example wall-clock box.  Generous against slow CI hosts; the
#: smoke budgets themselves aim for seconds.
TIMEOUT_S = 300


def test_examples_exist():
    assert len(EXAMPLES) >= 10, "examples/ directory went missing or empty"


@pytest.mark.slow
@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(example)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
    )
    assert proc.returncode == 0, (
        f"{example.name} failed (rc={proc.returncode})\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    # Every example narrates what it shows; silence means it rotted.
    assert proc.stdout.strip(), f"{example.name} produced no output"
