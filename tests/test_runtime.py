"""Tests for the compile-once deployment runtime.

The load-bearing guarantees:

* the compiled path (and the functional shims over it) is **bitwise
  identical** to the seed per-call reference path at a fixed RNG seed,
  for outputs and stats;
* the engine cache shares programmed macros across calls and compiles
  (hit/miss/eviction semantics, capacity-0 per-call mode);
* compiling a model programs each layer's macros exactly once, and
  compiling again reuses the programmed engines.
"""

import numpy as np
import pytest

from repro import nn
from repro.cim import (
    AdcSpec,
    BitlineModel,
    CimDeployedModel,
    CimMacro,
    CimTiledMatmul,
    MacroConfig,
    PulseWidthEncoding,
    cim_conv2d,
    cim_linear,
    reference_cim_conv2d,
    reference_cim_linear,
)
from repro.runtime import (
    CompiledModel,
    EngineCache,
    EngineKey,
    ExecutionSession,
    MacroBitSerialKernel,
    RuntimeConfig,
    TiledBitSerialKernel,
    compile_model,
    linear_engine,
    reference_forward,
)

RNG = np.random.default_rng(7)


def tiny_chain(num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(6 * 4 * 4, num_classes, rng=rng),
    )


def tiny_input(n=2, seed=1):
    return np.random.default_rng(seed).normal(size=(n, 3, 8, 8))


# ----------------------------------------------------------------------
# Engine cache
# ----------------------------------------------------------------------
class TestEngineCache:
    def key(self, tag):
        return EngineKey(layer_id=tag, weight_hash="w", config_key=("k",))

    def test_miss_then_hit(self):
        cache = EngineCache(capacity=4)
        built = []
        for _ in range(3):
            engine = cache.get_or_program(self.key("a"), lambda: built.append(1) or "e")
        assert engine == "e"
        assert built == [1]
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.programmed == 1

    def test_lru_eviction(self):
        cache = EngineCache(capacity=2)
        for tag in ("a", "b", "c"):
            cache.get_or_program(self.key(tag), lambda t=tag: t)
        assert cache.stats.evictions == 1
        assert self.key("a") not in cache  # least recently used went first
        assert self.key("b") in cache and self.key("c") in cache
        # Touching "b" promotes it; inserting "d" now evicts "c".
        cache.get_or_program(self.key("b"), lambda: "b2")
        cache.get_or_program(self.key("d"), lambda: "d")
        assert self.key("c") not in cache
        assert self.key("b") in cache

    def test_capacity_zero_is_per_call_mode(self):
        cache = EngineCache(capacity=0)
        for _ in range(3):
            cache.get_or_program(self.key("a"), lambda: object())
        assert len(cache) == 0
        assert cache.stats.misses == 3
        assert cache.stats.programmed == 3

    def test_clear(self):
        cache = EngineCache()
        cache.get_or_program(self.key("a"), lambda: "e")
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            EngineCache(capacity=-1)


# ----------------------------------------------------------------------
# Fast kernels: bitwise against the reference macro arithmetic
# ----------------------------------------------------------------------
class TestKernels:
    @pytest.mark.parametrize("signed", [False, True])
    @pytest.mark.parametrize("adc_bits", [5, 8])
    def test_macro_kernel_bitwise(self, signed, adc_bits):
        config = MacroConfig(signed_inputs=signed, adc=AdcSpec(bits=adc_bits))
        weights = RNG.integers(-128, 128, size=(40, 12))
        macro = CimMacro(config, weights)
        kernel = MacroBitSerialKernel(macro)
        low, high = (-128, 128) if signed else (0, 256)
        for n in (1, 5, 33):
            x = RNG.integers(low, high, size=(40, n))
            ref, ref_stats = macro.matmul(x)
            for _ in range(2):  # second call exercises the cached einsum path
                fast, fast_stats = kernel.matmul(x)
                assert np.array_equal(ref, fast)
                assert ref_stats == fast_stats

    def test_tiled_kernel_bitwise_multi_tile(self):
        config = MacroConfig()
        weights = RNG.integers(-128, 128, size=(216, 48))  # 2 x 2 tiles
        engine = CimTiledMatmul(weights, config)
        kernel = TiledBitSerialKernel(engine)
        x = RNG.integers(0, 256, size=(216, 9))
        ref, ref_stats = engine.matmul(x)
        fast, fast_stats = kernel.matmul(x)
        assert np.array_equal(ref, fast)
        assert ref_stats == fast_stats

    def test_degenerate_first_batch_cannot_poison_dispatch(self):
        """An all-zero first batch must not lock a recombination mode
        that diverges from the reference on later real batches."""
        config = MacroConfig(signed_inputs=False)
        weights = RNG.integers(-128, 128, size=(64, 32))
        macro = CimMacro(config, weights)
        kernel = MacroBitSerialKernel(macro)
        zeros = np.zeros((64, 5), dtype=np.int64)
        kernel.matmul(zeros)  # primes the per-shape dispatch cache
        x = RNG.integers(0, 256, size=(64, 5))
        ref, ref_stats = macro.matmul(x)
        fast, fast_stats = kernel.matmul(x)
        assert np.array_equal(ref, fast)
        assert ref_stats == fast_stats

    def test_tiled_kernel_squeezes_vectors(self):
        engine = CimTiledMatmul(RNG.integers(-8, 8, size=(30, 5)), MacroConfig())
        kernel = TiledBitSerialKernel(engine)
        x = RNG.integers(0, 256, size=(30,))
        ref, _ = engine.matmul(x)
        fast, _ = kernel.matmul(x)
        assert fast.shape == ref.shape == (5,)
        assert np.array_equal(ref, fast)

    def test_kernel_rejects_noisy_bitline(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=1.0))
        macro = CimMacro(config, np.zeros((8, 4), dtype=int))
        assert not MacroBitSerialKernel.supported(config)
        with pytest.raises(ValueError, match="noise-free"):
            MacroBitSerialKernel(macro)

    def test_kernel_validates_input_range(self):
        macro = CimMacro(MacroConfig(), np.zeros((8, 4), dtype=int))
        kernel = MacroBitSerialKernel(macro)
        with pytest.raises(ValueError, match="input codes outside"):
            kernel.matmul(np.full((8, 2), 300))


# ----------------------------------------------------------------------
# Functional shims
# ----------------------------------------------------------------------
class TestFunctionalShims:
    def test_cim_linear_bitwise_vs_reference(self):
        x = RNG.normal(size=(6, 40))
        w = RNG.normal(size=(12, 40))
        y_ref, s_ref = reference_cim_linear(x, w)
        y_new, s_new = cim_linear(x, w, cache=EngineCache())
        assert np.array_equal(y_ref, y_new)
        assert s_ref == s_new

    def test_cim_conv2d_bitwise_vs_reference(self):
        x = RNG.random((2, 3, 8, 8))
        w = RNG.normal(size=(5, 3, 3, 3))
        y_ref, s_ref = reference_cim_conv2d(x, w, stride=1, padding=1)
        y_new, s_new = cim_conv2d(x, w, stride=1, padding=1, cache=EngineCache())
        assert np.array_equal(y_ref, y_new)
        assert s_ref == s_new

    def test_repeated_call_hits_cache(self):
        cache = EngineCache()
        x = RNG.normal(size=(4, 20))
        w = RNG.normal(size=(8, 20))
        y1, _ = cim_linear(x, w, cache=cache)
        y2, _ = cim_linear(x, w, cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert np.array_equal(y1, y2)

    def test_capacity_zero_reprograms_every_call(self):
        cache = EngineCache(capacity=0)
        x = RNG.normal(size=(4, 20))
        w = RNG.normal(size=(8, 20))
        cim_linear(x, w, cache=cache)
        cim_linear(x, w, cache=cache)
        assert cache.stats.programmed == 2

    def test_changed_weights_program_new_engine(self):
        cache = EngineCache()
        x = RNG.normal(size=(4, 20))
        w = RNG.normal(size=(8, 20))
        cim_linear(x, w, cache=cache)
        cim_linear(x, w + 1.0, cache=cache)
        assert cache.stats.misses == 2

    def test_noise_path_bitwise_with_same_rng(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=2.0))
        x = RNG.normal(size=(4, 20))
        w = RNG.normal(size=(8, 20))
        y_ref, _ = reference_cim_linear(x, w, config, rng=np.random.default_rng(3))
        y_new, _ = cim_linear(
            x, w, config, rng=np.random.default_rng(3), cache=EngineCache()
        )
        assert np.array_equal(y_ref, y_new)

    def test_conv_signedness_decided_on_patches(self):
        """A stride larger than the kernel can skip the only negative
        pixels; signedness must follow the im2col patches (what gets
        quantized), exactly like the reference path."""
        x = RNG.random((1, 1, 4, 4))
        x[0, 0, 1, 1] = -0.5  # never sampled by kernel=1, stride=2
        w = RNG.normal(size=(2, 1, 1, 1))
        y_ref, s_ref = reference_cim_conv2d(x, w, stride=2, padding=0)
        y_new, s_new = cim_conv2d(x, w, stride=2, padding=0, cache=EngineCache())
        assert np.array_equal(y_ref, y_new)
        assert s_ref == s_new

    def test_cell_variants_get_distinct_engines(self):
        """Cells swept via dataclasses.replace keep their name; the
        cache must key the cell by value or energy stats go stale."""
        from dataclasses import replace

        from repro.cim import ROM_1T

        cache = EngineCache()
        x = RNG.random((4, 20))
        w = RNG.normal(size=(8, 20))
        _, stats_a = cim_linear(x, w, MacroConfig(cell=ROM_1T), cache=cache)
        hot_cell = replace(ROM_1T, read_energy_fj=ROM_1T.read_energy_fj * 10)
        _, stats_b = cim_linear(x, w, MacroConfig(cell=hot_cell), cache=cache)
        assert cache.stats.misses == 2  # two engines, not one alias
        assert stats_b.bitline_energy_fj == pytest.approx(
            10 * stats_a.bitline_energy_fj
        )

    def test_unsigned_engine_rejects_negative_inputs(self):
        engine = linear_engine(
            RNG.normal(size=(8, 20)), signed_inputs=False, cache=EngineCache()
        )
        with pytest.raises(ValueError, match="unsigned"):
            engine.execute(RNG.normal(size=(4, 20)))

    def test_concurrent_compiles_share_engines(self):
        """N threads compiling the same model race the cache; every
        compiled model must end up executing the same engine objects
        (a racing loser discards its build and adopts the winner's)."""
        import threading

        cache = EngineCache()
        model = tiny_chain()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        compiled_models = [None] * n_threads
        errors = []

        def compile_one(index):
            try:
                barrier.wait()
                compiled_models[index] = compile_model(
                    model, RuntimeConfig(), cache=cache
                )
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=compile_one, args=(i,))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        engine_ids = [
            {name: id(engine) for name, engine in c.programmed_engines().items()}
            for c in compiled_models
        ]
        # Shared, not duplicated: one engine object per layer across all
        # eight compiles, and the cache retains exactly those.
        assert all(ids == engine_ids[0] for ids in engine_ids[1:])
        assert len(cache) == compiled_models[0].n_weight_layers
        # Raced builds may transiently program duplicates, but only the
        # retained engine is ever handed out.
        assert cache.stats.programmed >= compiled_models[0].n_weight_layers
        # Everyone computes the same bits through the shared engines.
        x = tiny_input()
        expected, _ = compiled_models[0].run(x)
        for compiled in compiled_models[1:]:
            got, _ = compiled.run(x)
            assert np.array_equal(expected, got)


# ----------------------------------------------------------------------
# Compiled model
# ----------------------------------------------------------------------
class TestCompiledModel:
    def test_bitwise_identical_to_reference_forward(self):
        model = tiny_chain()
        x = tiny_input()
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        out_c, stats_c = compiled.run(x)
        out_r, stats_r = reference_forward(model, x)
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    def test_bitwise_identical_with_8bit_adc_and_signed_input(self):
        config = MacroConfig(adc=AdcSpec(bits=8))
        model = tiny_chain(seed=3)
        x = tiny_input(seed=5)
        compiled = compile_model(
            model,
            RuntimeConfig(rom_config=config, sram_config=config),
            cache=EngineCache(),
        )
        out_c, stats_c = compiled.run(x)
        out_r, stats_r = reference_forward(
            model, x, rom_config=config, sram_config=config
        )
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    def test_deployed_wrapper_matches_reference(self):
        model = tiny_chain()
        x = tiny_input()
        deployed = CimDeployedModel(model, cache=EngineCache())
        out = deployed(x)
        out_r, stats_r = reference_forward(model, x)
        assert np.array_equal(out, out_r)
        assert deployed.last_stats == stats_r

    def test_compile_programs_each_layer_once(self):
        cache = EngineCache()
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=cache)
        assert compiled.n_weight_layers == 2
        assert cache.stats.programmed == 2
        # Running does not program anything new at matching signedness.
        compiled.run(tiny_input())
        assert cache.stats.programmed == 2

    def test_compile_twice_reuses_programmed_engines(self):
        cache = EngineCache()
        model = tiny_chain()
        first = compile_model(model, RuntimeConfig(), cache=cache)
        programmed = cache.stats.programmed
        second = compile_model(model, RuntimeConfig(), cache=cache)
        assert cache.stats.programmed == programmed  # nothing rebuilt
        ours = first.programmed_engines()
        theirs = second.programmed_engines()
        assert set(ours) == set(theirs)
        for name, engine in ours.items():
            assert engine is theirs[name]

    def test_cache_eviction_does_not_reprogram_hot_path(self):
        """Slots hold strong engine references: LRU eviction in a tiny
        shared cache must not force per-run reprogramming."""
        cache = EngineCache(capacity=1)
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=cache)
        programmed = cache.stats.programmed
        x = tiny_input()
        out1, _ = compiled.run(x)
        out2, _ = compiled.run(x)
        assert cache.stats.programmed == programmed
        assert np.array_equal(out1, out2)

    def test_leaky_relu_slope_read_live(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
            nn.LeakyReLU(0.1),
            nn.Flatten(),
            nn.Linear(4 * 8 * 8, 3, rng=np.random.default_rng(1)),
        )
        x = tiny_input()
        deployed = CimDeployedModel(model, cache=EngineCache())
        before = deployed(x)
        model._modules["1"].negative_slope = 0.5
        after = deployed(x)
        expected, _ = reference_forward(model, x)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, expected)

    def test_stats_are_per_run_not_accumulated(self):
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        x = tiny_input()
        _, stats1 = compiled.run(x)
        _, stats2 = compiled.run(x)
        assert stats1 == stats2
        assert stats1.macs > 0

    def test_session_accumulates_across_runs(self):
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        session = compiled.new_session()
        x = tiny_input()
        _, stats = compiled.run(x, session=session)
        compiled.run(x, session=session)
        assert session.batches == 2
        assert session.samples == 2 * x.shape[0]
        assert session.stats.macs == 2 * stats.macs
        assert session.energy_per_sample_fj > 0
        session.reset()
        assert session.batches == 0 and session.stats.macs == 0

    def test_encoding_falls_back_for_signed_inputs(self):
        model = tiny_chain()
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        compiled = compile_model(
            model,
            RuntimeConfig(encoding=PulseWidthEncoding()),
            cache=EngineCache(),
        )
        out, _ = compiled.run(x)  # would raise without the fallback
        assert np.isfinite(out).all()

    def test_encoding_matches_reference_on_unsigned_input(self):
        model = tiny_chain()
        x = np.random.default_rng(0).random((2, 3, 8, 8))
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        out_c, stats_c = compiled.run(
            x, encoding=PulseWidthEncoding(), rng=np.random.default_rng(4)
        )
        out_r, stats_r = reference_forward(
            model, x, encoding=PulseWidthEncoding(), rng=np.random.default_rng(4)
        )
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    def test_noisy_bitline_bitwise_with_fixed_rng(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=1.5))
        model = tiny_chain()
        x = tiny_input()
        compiled = compile_model(
            model,
            RuntimeConfig(rom_config=config, sram_config=config),
            cache=EngineCache(),
        )
        out_c, _ = compiled.run(x, rng=np.random.default_rng(11))
        out_r, _ = reference_forward(
            model,
            x,
            rom_config=config,
            sram_config=config,
            rng=np.random.default_rng(11),
        )
        assert np.array_equal(out_c, out_r)

    def test_unfolded_batchnorm_rejected(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1), nn.BatchNorm2d(4), nn.ReLU()
        )
        with pytest.raises(ValueError, match="unfolded BatchNorm2d"):
            compile_model(model, RuntimeConfig(), cache=EngineCache())

    def test_empty_sequential_is_a_noop_placeholder(self):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
            nn.Sequential(),  # e.g. a "no downsample" slot
            nn.ReLU(),
        )
        x = tiny_input()
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        out_c, _ = compiled.run(x)
        out_r, _ = reference_forward(model, x)
        assert np.array_equal(out_c, out_r)

    def test_unsupported_module_rejected_at_compile(self):
        class Strange(nn.Module):
            pass

        with pytest.raises(TypeError, match="cannot deploy"):
            compile_model(
                nn.Sequential(Strange()), RuntimeConfig(), cache=EngineCache()
            )

    def test_compiled_conv_stride_gt_kernel_matches_reference(self):
        model = nn.Sequential(
            nn.Conv2d(1, 2, 1, stride=2, rng=np.random.default_rng(0))
        )
        x = np.random.default_rng(1).random((2, 1, 4, 4))
        x[:, 0, 1, 1] = -0.5  # negative only at unsampled positions
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        out_c, stats_c = compiled.run(x)
        out_r, stats_r = reference_forward(model, x)
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    def test_freezing_a_layer_moves_it_to_rom(self):
        """The seed path re-decided ROM vs SRAM from requires_grad on
        every forward; the compiled wrapper must track it live."""
        model = tiny_chain()
        x = tiny_input()
        deployed = CimDeployedModel(model, cache=EngineCache())
        deployed(x)
        sram_stats = deployed.last_stats
        for parameter in model.parameters():
            parameter.requires_grad = False
        deployed(x)
        rom_stats = deployed.last_stats
        expected, expected_stats = reference_forward(model, x)
        assert rom_stats == expected_stats
        # ROM cells discharge less energy than SRAM-CiM cells.
        assert rom_stats.bitline_energy_fj < sram_stats.bitline_energy_fj

    def test_ensure_fresh_tracks_inplace_weight_updates(self):
        model = tiny_chain()
        x = tiny_input()
        deployed = CimDeployedModel(model, cache=EngineCache())
        before = deployed(x)
        # On-chip training updates SRAM weights in place.
        model._modules["4"].weight.data += 0.5
        after = deployed(x)
        expected, _ = reference_forward(model, x)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, expected)

    def test_report_matches_legacy_placement(self):
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        report = compiled.report
        kinds = {layer.kind for layer in report.layers}
        assert kinds == {"conv", "linear"}
        # Freshly built layers are trainable, so everything lands on SRAM.
        assert report.sram_weight_bits > 0
        assert report.rom_fraction == 0.0


# ----------------------------------------------------------------------
# Consumers routed through CompiledModel
# ----------------------------------------------------------------------
class TestConsumers:
    def test_profile_model_accepts_compiled(self):
        from repro.models import profile_model

        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        profile = profile_model(compiled, (1, 3, 8, 8))
        assert profile.total_macs > 0
        assert len(profile.weight_layers()) == 2

    def test_profile_model_rejects_other_types(self):
        from repro.models import profile_model

        with pytest.raises(TypeError, match="cannot profile"):
            profile_model(object(), (1, 3, 8, 8))

    def test_compiled_profile_is_cached(self):
        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        assert compiled.profile((1, 3, 8, 8)) is compiled.profile((1, 3, 8, 8))

    def test_evaluate_compiled(self):
        from repro.arch import evaluate_all_systems, evaluate_compiled

        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        reports = evaluate_compiled(compiled, (1, 3, 8, 8))
        assert set(reports) == {"yoloc", "sram-single-chip", "sram-chiplet"}
        direct = evaluate_all_systems(compiled.profile((1, 3, 8, 8)))
        assert reports["yoloc"].macs == direct["yoloc"].macs

    def test_tasks_for_compiled(self):
        from repro.arch import tasks_for_compiled

        compiled = compile_model(tiny_chain(), RuntimeConfig(), cache=EngineCache())
        tasks = tasks_for_compiled(
            compiled, (1, 3, 8, 8), chip_capacity_bits=1e6, chip_gops=100.0
        )
        assert len(tasks) == 2
        assert all(task.compute_ns > 0 for task in tasks)


# ----------------------------------------------------------------------
# Runtime study experiment
# ----------------------------------------------------------------------
class TestRuntimeStudy:
    def test_fast_config_runs_and_is_bitwise(self):
        from repro.experiments import runtime_study

        config = runtime_study.RuntimeStudyConfig(
            in_features=64, layer_widths=(32,), n_requests=3, repeats=1
        )
        result = runtime_study.run(config)
        assert result.engines_programmed == 2
        assert {r.regime for r in result.regimes} == {"serving", "streaming"}
        for regime in result.regimes:
            assert regime.bitwise_identical
            assert regime.compiled_ms > 0 and regime.reference_ms > 0
        assert result.regime("serving").n_calls == 3
