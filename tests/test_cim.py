"""Tests for the circuit-level CiM simulation."""

import numpy as np
import pytest

from repro.cim import (
    ROM_1T,
    SRAM_6T,
    SRAM_CIM_6T,
    AdcSpec,
    BitlineModel,
    CimMacro,
    CimTiledMatmul,
    MacroConfig,
    SharedAdcBank,
    all_cim_cells,
    cim_conv2d,
    cim_linear,
    rom_macro_spec,
    sram_macro_spec,
)
from repro.cim.macro import _bit_planes
from repro.cim.spec import TABLE1_PAPER

RNG = np.random.default_rng(21)


class TestCells:
    def test_rom_cell_area_is_headline(self):
        assert ROM_1T.area_um2 == pytest.approx(0.014)

    def test_6t_sram_16x(self):
        assert SRAM_6T.relative_area(ROM_1T) == pytest.approx(16.0)

    def test_cim_6t_18_5x(self):
        assert SRAM_CIM_6T.relative_area(ROM_1T) == pytest.approx(18.5)

    def test_published_cells_span_paper_range(self):
        ratios = [c.relative_area(ROM_1T) for c in all_cim_cells() if c is not ROM_1T]
        assert min(ratios) == pytest.approx(14.5)
        assert max(ratios) == pytest.approx(29.5)

    def test_rom_non_volatile_zero_standby(self):
        assert not ROM_1T.volatile
        assert ROM_1T.standby_leakage_pw == 0.0

    def test_rom_density_beats_sram(self):
        assert ROM_1T.density_mb_per_mm2 > 10 * SRAM_CIM_6T.density_mb_per_mm2


class TestAdc:
    def test_quantize_exact_at_full_resolution(self):
        adc = AdcSpec(bits=7)
        counts = np.arange(0, 128)
        out = adc.quantize_counts(counts, full_scale=127)
        np.testing.assert_allclose(out[:128], counts, atol=1e-9)

    def test_quantize_5bit_step(self):
        adc = AdcSpec(bits=5)
        out = adc.quantize_counts(np.array([64.0]), full_scale=128)
        step = 128 / 31
        assert out[0] == pytest.approx(round(64 / step) * step)

    def test_clipping_at_top_code(self):
        adc = AdcSpec(bits=5)
        out = adc.quantize_counts(np.array([500.0]), full_scale=128)
        assert out[0] == pytest.approx(128.0)

    def test_invalid_full_scale(self):
        with pytest.raises(ValueError):
            AdcSpec().quantize_counts(np.array([1.0]), 0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            AdcSpec(bits=0)

    def test_shared_bank_mux_ratio(self):
        bank = SharedAdcBank(AdcSpec(), n_adcs=16, n_columns=256)
        assert bank.mux_ratio == 16
        assert bank.conversions_for_full_readout() == 256

    def test_shared_bank_uneven_rejected(self):
        with pytest.raises(ValueError):
            SharedAdcBank(AdcSpec(), n_adcs=10, n_columns=256)

    def test_readout_time_scales_with_columns(self):
        bank = SharedAdcBank(AdcSpec(conversion_time_ns=1.0), 16, 256)
        assert bank.readout_time_ns(16) == pytest.approx(1.0)
        assert bank.readout_time_ns(256) == pytest.approx(16.0)


class TestBitline:
    def test_voltage_monotone_decreasing(self):
        model = BitlineModel(max_rows=128)
        v = model.counts_to_voltage(np.array([0, 64, 128]))
        assert v[0] > v[1] > v[2]
        assert v[0] == pytest.approx(model.v_precharge)

    def test_voltage_count_inverse(self):
        model = BitlineModel(max_rows=128)
        counts = np.array([0.0, 13.0, 100.0])
        np.testing.assert_allclose(
            model.voltage_to_counts(model.counts_to_voltage(counts)), counts
        )

    def test_noise_zero_is_deterministic(self):
        model = BitlineModel(noise_sigma_counts=0.0)
        counts = np.array([5.0, 10.0])
        np.testing.assert_array_equal(model.observe(counts), counts)

    def test_noise_perturbs(self):
        model = BitlineModel(noise_sigma_counts=1.0)
        counts = np.full(1000, 50.0)
        observed = model.observe(counts, np.random.default_rng(0))
        assert observed.std() > 0.5

    def test_saturation_clips(self):
        model = BitlineModel(max_rows=128, saturation=0.5)
        observed = model.observe(np.array([100.0]))
        assert observed[0] == pytest.approx(64.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BitlineModel(max_rows=0)
        with pytest.raises(ValueError):
            BitlineModel(noise_sigma_counts=-1)


class TestMacroConfig:
    def test_logical_columns(self):
        config = MacroConfig()
        assert config.logical_columns == 32
        assert config.capacity_bits == 128 * 256

    def test_columns_must_divide(self):
        with pytest.raises(ValueError):
            MacroConfig(phys_columns=250)

    def test_weight_range_signed(self):
        assert MacroConfig().weight_range() == (-128, 127)

    def test_input_range_unsigned_default(self):
        assert MacroConfig().input_range() == (0, 255)


class TestBitPlanes:
    def test_unsigned_reconstruction(self):
        codes = np.arange(0, 16)
        planes, weights = _bit_planes(codes, 4, signed=False)
        recon = np.einsum("k,kn->n", weights, planes)
        np.testing.assert_array_equal(recon, codes)

    def test_signed_twos_complement_reconstruction(self):
        codes = np.arange(-8, 8)
        planes, weights = _bit_planes(codes, 4, signed=True)
        recon = np.einsum("k,kn->n", weights, planes)
        np.testing.assert_array_equal(recon, codes)


class TestCimMacro:
    def _exact_config(self, rows=127, **kwargs):
        # full_scale = rows = 2^bits - 1 makes the ADC lossless.
        return MacroConfig(
            rows=rows, phys_columns=64, n_adcs=16, adc=AdcSpec(bits=7), **kwargs
        )

    def test_exact_matmul_with_lossless_adc(self):
        config = self._exact_config(signed_inputs=True)
        weights = RNG.integers(-128, 128, size=(127, 8))
        macro = CimMacro(config, weights)
        x = RNG.integers(-128, 128, size=(127, 4))
        out, _ = macro.matmul(x)
        np.testing.assert_array_equal(out, macro.exact_matmul(x))

    def test_vector_input_squeezed(self):
        config = self._exact_config()
        macro = CimMacro(config, RNG.integers(-10, 10, size=(127, 8)))
        x = RNG.integers(0, 4, size=127)
        out, _ = macro.matmul(x)
        assert out.shape == (8,)

    def test_5bit_adc_introduces_bounded_error(self):
        rng = np.random.default_rng(5)
        config = MacroConfig(rows=128, phys_columns=64, n_adcs=16, adc=AdcSpec(bits=5))
        weights = rng.integers(-128, 128, size=(128, 8))
        macro = CimMacro(config, weights)
        x = rng.integers(0, 256, size=(128, 4))
        approx, _ = macro.matmul(x)
        exact = macro.exact_matmul(x)
        error = np.abs(approx - exact)
        assert error.max() > 0  # 5 bits cannot be lossless over 128 rows
        # Worst case: half an ADC step on every (input bit, weight bit)
        # partial, amplified by the shift-and-add weights.
        step = 128 / 31
        bound = (step / 2) * 255 * 255
        assert error.max() <= bound

    def test_weight_range_enforced(self):
        with pytest.raises(ValueError):
            CimMacro(MacroConfig(), np.array([[300]]))

    def test_input_range_enforced(self):
        macro = CimMacro(MacroConfig(), np.zeros((4, 2), dtype=int))
        with pytest.raises(ValueError):
            macro.matmul(np.full(4, -1))

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            CimMacro(MacroConfig(), np.zeros((300, 2), dtype=int))

    def test_rom_cannot_be_reprogrammed(self):
        macro = CimMacro(MacroConfig(cell=ROM_1T), np.zeros((4, 2), dtype=int))
        with pytest.raises(RuntimeError, match="ROM"):
            macro.program(np.ones((4, 2), dtype=int))

    def test_sram_can_be_reprogrammed(self):
        macro = CimMacro(MacroConfig(cell=SRAM_CIM_6T), np.zeros((4, 2), dtype=int))
        macro.program(np.ones((4, 2), dtype=int))
        np.testing.assert_array_equal(macro.weights, np.ones((4, 2)))

    def test_stats_energy_positive_and_decomposed(self):
        macro = CimMacro(MacroConfig(), RNG.integers(-8, 8, size=(128, 32)))
        _, stats = macro.matmul(RNG.integers(0, 16, size=(128, 2)))
        assert stats.total_energy_fj > 0
        assert stats.adc_energy_fj > 0
        assert stats.peripheral_energy_fj > 0
        assert stats.macs == 128 * 32 * 2
        assert stats.latency_ns > 0

    def test_stats_addition(self):
        macro = CimMacro(MacroConfig(), RNG.integers(-8, 8, size=(128, 32)))
        _, a = macro.matmul(RNG.integers(0, 16, size=(128, 1)))
        _, b = macro.matmul(RNG.integers(0, 16, size=(128, 1)))
        total = a + b
        assert total.macs == a.macs + b.macs
        assert total.total_energy_fj == pytest.approx(
            a.total_energy_fj + b.total_energy_fj
        )

    def test_noise_injection_changes_result(self):
        config = MacroConfig(
            rows=128,
            phys_columns=64,
            n_adcs=16,
            adc=AdcSpec(bits=7),
            bitline=BitlineModel(max_rows=128, noise_sigma_counts=2.0),
        )
        weights = RNG.integers(-64, 64, size=(128, 8))
        macro = CimMacro(config, weights, rng=np.random.default_rng(1))
        x = RNG.integers(0, 200, size=(128, 2))
        noisy, _ = macro.matmul(x)
        assert not np.array_equal(noisy, macro.exact_matmul(x))


class TestTiledMatmul:
    def test_matches_exact_with_lossless_adc(self):
        config = MacroConfig(
            rows=128, phys_columns=256, n_adcs=16, adc=AdcSpec(bits=7), signed_inputs=True
        )
        # rows per tile = 128 > 127 full-scale codes... use 127-row tiles:
        config = MacroConfig(
            rows=127, phys_columns=256, n_adcs=16, adc=AdcSpec(bits=7), signed_inputs=True
        )
        weights = RNG.integers(-100, 100, size=(400, 70))
        engine = CimTiledMatmul(weights, config)
        x = RNG.integers(-50, 50, size=(400, 3))
        out, stats = engine.matmul(x)
        np.testing.assert_array_equal(out, engine.exact_matmul(x))
        assert stats.macs == 400 * 70 * 3

    def test_tile_count(self):
        config = MacroConfig()  # 128 rows x 32 logical cols
        engine = CimTiledMatmul(np.zeros((200, 50), dtype=int), config)
        assert engine.n_subarrays == 2 * 2
        assert engine.n_row_tiles == 2

    def test_latency_is_parallel_max_not_sum(self):
        config = MacroConfig()
        single = CimTiledMatmul(np.zeros((128, 32), dtype=int), config)
        tiled = CimTiledMatmul(np.zeros((256, 64), dtype=int), config)
        _, s1 = single.matmul(np.zeros(128, dtype=int))
        _, s4 = tiled.matmul(np.zeros(256, dtype=int))
        assert s4.latency_ns == pytest.approx(s1.latency_ns)

    def test_row_mismatch_rejected(self):
        engine = CimTiledMatmul(np.zeros((64, 8), dtype=int), MacroConfig())
        with pytest.raises(ValueError):
            engine.matmul(np.zeros(65, dtype=int))

    def test_non_2d_weights_rejected(self):
        with pytest.raises(ValueError):
            CimTiledMatmul(np.zeros(8, dtype=int), MacroConfig())


class TestFloatPaths:
    def test_cim_linear_close_to_float(self):
        x = RNG.normal(size=(6, 40))
        w = RNG.normal(size=(10, 40))
        out, stats = cim_linear(x, w, MacroConfig(adc=AdcSpec(bits=8)))
        ref = x @ w.T
        rel = np.abs(out - ref).mean() / np.abs(ref).mean()
        assert rel < 0.05
        assert stats.macs == 40 * 10 * 6

    def test_cim_linear_handles_unsigned_activations(self):
        x = np.abs(RNG.normal(size=(4, 30)))
        w = RNG.normal(size=(5, 30))
        out, _ = cim_linear(x, w, MacroConfig(adc=AdcSpec(bits=8)))
        ref = x @ w.T
        assert np.abs(out - ref).mean() / np.abs(ref).mean() < 0.05

    def test_cim_conv2d_close_to_float(self):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        x = RNG.normal(size=(2, 3, 8, 8))
        w = RNG.normal(size=(4, 3, 3, 3))
        out, _ = cim_conv2d(x, w, stride=1, padding=1, config=MacroConfig(adc=AdcSpec(bits=8)))
        ref = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        rel = np.abs(out - ref).mean() / np.abs(ref).mean()
        assert rel < 0.08
        assert out.shape == (2, 4, 8, 8)


class TestMacroSpec:
    def test_table1_within_2_percent(self):
        table = rom_macro_spec().table()
        for key, paper in TABLE1_PAPER.items():
            if paper == 0:
                assert table[key] == 0
            else:
                assert table[key] == pytest.approx(paper, rel=0.02), key

    def test_density_ratio_about_19x(self):
        ratio = rom_macro_spec().density_mb_mm2 / sram_macro_spec().density_mb_mm2
        assert 17 < ratio < 21

    def test_ops_per_inference(self):
        assert rom_macro_spec().ops_per_inference == 256

    def test_sram_standby_power_positive(self):
        assert sram_macro_spec().standby_power_w > 0
        assert rom_macro_spec().standby_power_w == 0

    def test_invalid_efficiency(self):
        from repro.cim.spec import MacroSpec

        with pytest.raises(ValueError):
            MacroSpec(name="x", array_efficiency=0)

    def test_capacity_below_subarray_rejected(self):
        from repro.cim.spec import MacroSpec

        with pytest.raises(ValueError):
            MacroSpec(name="x", capacity_bits=1000)
