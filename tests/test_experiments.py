"""Integration tests: the figure/table runners reproduce the paper's shapes.

These use the fast configurations — seconds per runner — and assert the
*qualitative* claims (who wins, orderings, factor magnitudes), which is
the reproduction contract.
"""

import numpy as np
import pytest

from repro.experiments import fig6b, fig10, fig11, fig12, fig14, table1
from repro.experiments.common import format_table


class TestTable1:
    def test_all_rows_within_2_percent(self):
        result = table1.run()
        assert result.max_relative_error() < 0.02

    def test_cell_comparison_has_rom_first(self):
        result = table1.run()
        assert result.cell_comparison[0][0] == "rom-1t"

    def test_density_ratio_about_19x(self):
        result = table1.run()
        assert 17 < result.sram_density_ratio < 21

    def test_report_renders(self):
        text = table1.format_report(table1.run())
        assert "5" in text and "rom-1t" in text


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14.run(fig14.fast_config())

    def test_vgg8_fits_improvement_near_one(self, result):
        improvements = result.improvements()
        assert 0.7 < improvements["vgg8"] < 1.3

    def test_dram_bound_models_win_big(self, result):
        improvements = result.improvements()
        for model in ("resnet18", "tiny_yolo", "yolo"):
            assert improvements[model] > 4, model

    def test_improvements_monotone_with_model_size(self, result):
        improvements = result.improvements()
        assert (
            improvements["vgg8"]
            < improvements["resnet18"]
            < improvements["tiny_yolo"]
            < improvements["yolo"]
        )

    def test_chiplet_parity_and_area_saving(self, result):
        for comparison in result.comparisons:
            if comparison.model == "yolo":
                assert 0.9 < comparison.improvement_vs_chiplet < 1.3
                assert comparison.area_saving_vs_chiplet > 7

    def test_latency_overhead_below_8_percent(self, result):
        for model, overhead in result.latency_overheads.items():
            assert overhead < 0.08, model

    def test_energy_breakdown_dram_dominates_big_models(self, result):
        breakdown = result.energy_breakdown("yolo")
        assert breakdown["dram"] > 0.5
        vgg = result.energy_breakdown("vgg8")
        assert vgg["dram"] == 0.0

    def test_area_breakdown_fractions_sum_to_one(self, result):
        breakdown = result.yoloc_area_breakdown("yolo")
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_report_renders(self, result):
        assert "yolo" in fig14.format_report(result)


@pytest.mark.slow
class TestFig10Fast:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(fig10.fast_config())

    def test_source_pretrain_learned(self, result):
        assert result.source_accuracy["vgg8"] > 0.7

    def test_rebranch_beats_all_rom(self, result):
        table = result.accuracy_table()["vgg8"]["near"]
        assert table["rebranch"] > table["all_rom"]

    def test_rebranch_recovers_most_of_the_gap(self, result):
        # ReBranch must close at least half the All-ROM -> All-SRAM gap
        # (at full budget it closes nearly all of it).
        table = result.accuracy_table()["vgg8"]["near"]
        gap = table["all_sram"] - table["all_rom"]
        assert table["rebranch"] >= table["all_rom"] + 0.5 * gap

    def test_rebranch_area_saving(self, result):
        areas = result.area_table()["vgg8"]
        assert areas["rebranch"] < 0.35 * areas["all_sram"]

    def test_all_rom_smallest_area(self, result):
        areas = result.area_table()["vgg8"]
        assert areas["all_rom"] == min(areas.values())


@pytest.mark.slow
class TestFig6bFast:
    def test_transferability_decays_when_all_frozen(self):
        result = fig6b.run(fig6b.fast_config())
        accs = result.accuracies()
        # Freezing everything (classifier-only) must hurt vs training all.
        assert accs[-1] < accs[0] + 1e-9
        assert result.points[-1].trainable_params < result.points[0].trainable_params


@pytest.mark.slow
class TestFig11Fast:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(fig11.fast_config())

    def test_area_decreases_with_compression(self, result):
        points = {p.du: p.normalized_area for p in result.ratio_points}
        assert points[16] < points[4]

    def test_trainable_params_shrink_with_compression(self, result):
        points = {p.du: p.trainable_params for p in result.ratio_points}
        assert points[16] < points[4]

    def test_split_sweep_covers_requested(self, result):
        splits = {(p.d, p.u) for p in result.split_points}
        assert (4, 4) in splits

    def test_accuracies_above_chance(self, result):
        # Target task has 8 classes -> chance is 0.125.
        for p in result.ratio_points + result.split_points:
            assert p.accuracy > 0.18


@pytest.mark.slow
class TestFig12Fast:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run(fig12.fast_config())

    def test_area_orderings(self, result):
        areas = result.area_by_method()
        # Paper: SRAM-CiM YOLO ~9.7x YOLoC; Tiny-YOLO ~2.4x YOLoC.
        assert areas["sram_cim"] / areas["yoloc"] > 5
        assert areas["tiny_yolo"] / areas["yoloc"] > 1.5
        assert areas["yoloc"] == min(areas.values())

    def test_yoloc_map_beats_tiny(self, result):
        table = result.map_table()["voc"]
        assert table["yoloc"] >= table["tiny_yolo"]

    def test_all_methods_ran(self, result):
        table = result.map_table()["voc"]
        assert set(table) == {"sram_cim", "tiny_yolo", "deep_conv", "yoloc"}


class TestCommon:
    def test_format_table(self):
        text = format_table([("a", 1.5), ("b", 2.0)], ["name", "value"])
        assert "name" in text and "1.500" in text
