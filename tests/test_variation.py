"""Tests for the static device-variation Monte-Carlo."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim import (
    CimMacro,
    MacroConfig,
    MonteCarloResult,
    VariationModel,
    monte_carlo,
    perturbed_matmul,
    tolerable_cell_sigma,
    variation_sweep,
)

RNG = np.random.default_rng(23)


class TestVariationModel:
    def test_ideal_detection(self):
        assert VariationModel().is_ideal
        assert not VariationModel(cell_sigma=0.01).is_ideal

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError, match="sigmas"):
            VariationModel(cell_sigma=-0.1)


class TestPerturbedMatmul:
    def _macro(self, **kw):
        config = MacroConfig(**kw)
        weights = RNG.integers(-128, 128, size=(config.rows, 8))
        return CimMacro(config, weights, rng=np.random.default_rng(1))

    def test_ideal_variation_matches_plain_macro(self):
        macro = self._macro()
        x = RNG.integers(0, 256, size=(128, 3))
        out = perturbed_matmul(macro, x, VariationModel(), rng=np.random.default_rng(0))
        plain, _ = macro.matmul(x)
        np.testing.assert_allclose(out, plain)

    def test_cell_mismatch_changes_result(self):
        macro = self._macro()
        x = RNG.integers(0, 256, size=(128, 3))
        ideal = perturbed_matmul(macro, x, VariationModel(), rng=np.random.default_rng(0))
        varied = perturbed_matmul(
            macro, x, VariationModel(cell_sigma=0.2), rng=np.random.default_rng(0)
        )
        assert not np.allclose(ideal, varied)

    def test_same_seed_same_chip(self):
        macro = self._macro()
        x = RNG.integers(0, 256, size=(128, 2))
        variation = VariationModel(cell_sigma=0.1, adc_offset_sigma=1.0)
        a = perturbed_matmul(macro, x, variation, rng=np.random.default_rng(7))
        b = perturbed_matmul(macro, x, variation, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_row_mismatch_rejected(self):
        macro = self._macro()
        with pytest.raises(ValueError, match="rows"):
            perturbed_matmul(macro, np.zeros((3, 1), dtype=int), VariationModel())

    def test_vector_input(self):
        macro = self._macro()
        x = RNG.integers(0, 256, size=128)
        out = perturbed_matmul(macro, x, VariationModel(cell_sigma=0.05))
        assert out.shape == (8,)


class TestMonteCarlo:
    def test_trial_count(self):
        result = monte_carlo(VariationModel(cell_sigma=0.05), n_trials=7, n_vectors=2)
        assert result.n_trials == 7

    def test_zero_variation_zero_spread(self):
        result = monte_carlo(VariationModel(), n_trials=4, n_vectors=2)
        assert result.std == pytest.approx(0.0)

    def test_error_grows_with_cell_sigma(self):
        small = monte_carlo(VariationModel(cell_sigma=0.01), n_trials=10, n_vectors=4)
        large = monte_carlo(VariationModel(cell_sigma=0.20), n_trials=10, n_vectors=4)
        assert large.mean > small.mean

    def test_error_grows_with_adc_offset_behind_fine_adc(self):
        """Offset is only visible once it beats the ADC step: test at
        8-bit resolution, where one count is one code."""
        from repro.cim import AdcSpec

        config = MacroConfig(adc=AdcSpec(bits=8))
        small = monte_carlo(
            VariationModel(adc_offset_sigma=0.0),
            config=config,
            n_trials=8,
            n_vectors=4,
        )
        large = monte_carlo(
            VariationModel(adc_offset_sigma=4.0),
            config=config,
            n_trials=8,
            n_vectors=4,
        )
        assert large.mean > small.mean

    def test_small_offset_hides_behind_coarse_adc(self):
        """Behind the macro's 5-bit ADC (step ~4 counts) a 1-count
        offset is absorbed — it can even dither quantization error."""
        baseline = monte_carlo(VariationModel(), n_trials=8, n_vectors=4)
        offset = monte_carlo(
            VariationModel(adc_offset_sigma=1.0), n_trials=8, n_vectors=4
        )
        assert offset.mean == pytest.approx(baseline.mean, rel=0.15)

    def test_statistics_consistent(self):
        result = MonteCarloResult(
            variation=VariationModel(), rel_errors=[0.1, 0.2, 0.3, 0.4]
        )
        assert result.mean == pytest.approx(0.25)
        assert result.worst == pytest.approx(0.4)
        assert result.mean <= result.p95 <= result.worst

    def test_invalid_trials(self):
        with pytest.raises(ValueError, match="n_trials"):
            monte_carlo(VariationModel(), n_trials=0)

    @given(st.floats(0.0, 0.3), st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_errors_finite_and_nonnegative(self, sigma, seed):
        result = monte_carlo(
            VariationModel(cell_sigma=sigma), n_trials=3, n_vectors=2, seed=seed
        )
        assert all(np.isfinite(e) and e >= 0 for e in result.rel_errors)


class TestSweepAndBudget:
    def test_sweep_covers_grid(self):
        results = variation_sweep(
            cell_sigmas=(0.0, 0.1), adc_offset_sigmas=(0.0, 2.0), n_trials=4
        )
        assert len(results) == 4

    def test_tolerable_sigma_positive_for_loose_budget(self):
        sigma = tolerable_cell_sigma(
            error_budget=1.0, sigmas=(0.0, 0.05, 0.1), n_trials=4
        )
        assert sigma == 0.1

    def test_tolerable_sigma_zero_for_impossible_budget(self):
        sigma = tolerable_cell_sigma(
            error_budget=1e-12, sigmas=(0.01, 0.05), n_trials=4
        )
        assert sigma == 0.0

    def test_invalid_budget(self):
        with pytest.raises(ValueError, match="budget"):
            tolerable_cell_sigma(error_budget=0.0)
