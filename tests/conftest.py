"""Pytest configuration: register the slow marker."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: integration tests that train scaled models (seconds-minutes)"
    )
