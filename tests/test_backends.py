"""Tests for the pluggable kernel-backend layer and its autotuner.

The load-bearing guarantees:

* every registered backend is **bitwise identical** to the reference
  path — outputs and stats — across the zoo x noise x shards matrix;
* the autotuner measures candidates and *vetoes* any whose probe output
  differs by a single bit (candidates are never trusted);
* tuned winners travel in engine cache provenance (``"+tuned"`` tiers,
  ``CacheStats.tuned``) and in ``.rcma`` snapshot headers (format v3),
  so a warm-started process rebuilds them without re-benchmarking;
* cache disk-tier counters reconcile (``misses == disk_hits +
  disk_misses``) whether the store raises or quietly returns nothing;
* artifact bytes are a pure function of the compiled model: two saves
  with the same ``created_at`` are byte-identical.
"""

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.cim import BitlineModel, MacroConfig
from repro.runtime import (
    EngineCache,
    EngineKey,
    RuntimeConfig,
    compile_model,
    linear_engine,
    reference_forward,
)
from repro.runtime.backends import (
    DEFAULT_BACKEND,
    KernelBackend,
    PopcountBitSerialKernel,
    TiledBitSerialKernel,
    available_backends,
    clear_tune_cache,
    get_backend,
    register_backend,
    tune_kernel,
)
from repro.runtime.backends.base import _REGISTRY
from repro.runtime.engine import ProgrammedConv, ProgrammedLinear, linear_engine_key
from repro.runtime.sharded import shard
from repro.runtime.snapshot import ArtifactStore, load, save

RNG = np.random.default_rng(11)


@pytest.fixture(autouse=True)
def _fresh_tune_decisions():
    clear_tune_cache()
    yield
    clear_tune_cache()


def mlp(seed=0, widths=(96, 48), in_features=64, num_classes=10):
    rng = np.random.default_rng(seed)
    layers = []
    width = in_features
    for next_width in widths:
        layers += [nn.Linear(width, next_width, rng=rng), nn.ReLU()]
        width = next_width
    layers.append(nn.Linear(width, num_classes, rng=rng))
    return nn.Sequential(*layers)


def small_conv_net(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(8 * 4 * 4, 5, rng=rng),
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_backend_registered_first(self):
        names = available_backends()
        assert names[0] == DEFAULT_BACKEND
        assert get_backend(DEFAULT_BACKEND) is TiledBitSerialKernel

    def test_popcount_registered(self):
        assert get_backend("popcount") is PopcountBitSerialKernel

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(KeyError, match="reference-fast"):
            get_backend("does-not-exist")

    def test_register_requires_a_name(self):
        class Nameless(KernelBackend):
            def __init__(self, engine):
                pass

            def matmul(self, x):
                raise NotImplementedError

        with pytest.raises(ValueError, match="backend_name"):
            register_backend(Nameless)

    def test_engine_rejects_unknown_backend(self):
        weight = RNG.normal(size=(16, 32))
        with pytest.raises(KeyError, match="unknown kernel backend"):
            ProgrammedLinear(weight, backend="does-not-exist")


# ----------------------------------------------------------------------
# Popcount backend: bitwise identity
# ----------------------------------------------------------------------
class TestPopcountBitwise:
    @pytest.mark.parametrize("signed", [False, True])
    @pytest.mark.parametrize("n", [1, 3, 40])
    def test_matches_reference_fast(self, signed, n):
        rng = np.random.default_rng(3)
        weight = rng.normal(size=(48, 200))  # multi-tile rows and cols
        base = ProgrammedLinear(weight, signed_inputs=signed)
        pop = ProgrammedLinear(weight, backend="popcount", signed_inputs=signed)
        x = rng.normal(size=(n, 200))
        x = x if signed else np.abs(x)
        out_b, stats_b = base.execute(x)
        out_p, stats_p = pop.execute(x)
        assert np.array_equal(out_b, out_p)
        assert stats_b == stats_p

    def test_adopt_shares_groups_and_builds_layout(self):
        weight = RNG.normal(size=(32, 300))
        reference = ProgrammedLinear(weight)._kernel
        adopted = PopcountBitSerialKernel.adopt(reference)
        assert type(adopted) is PopcountBitSerialKernel
        assert adopted._groups is reference._groups
        assert len(adopted._packed_planes) == len(reference._groups)
        # Adopting an instance of the right type is the identity.
        assert PopcountBitSerialKernel.adopt(adopted) is adopted

    def test_unsupported_under_bitline_noise(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=1.0))
        assert not PopcountBitSerialKernel.supported(config)

    def test_pinned_backend_on_unsupported_config_degrades_to_reference(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=1.0))
        engine = ProgrammedLinear(
            RNG.normal(size=(8, 16)), config=config, backend="popcount"
        )
        assert engine._kernel is None
        assert engine.kernel_backend is None


# ----------------------------------------------------------------------
# Autotuner
# ----------------------------------------------------------------------
class TestAutotuner:
    def test_winner_is_bitwise_identical(self):
        weight = RNG.normal(size=(64, 256))
        engine = ProgrammedLinear(weight).engine
        kernel, report = tune_kernel(engine, probe_n=2)
        assert report.winner in available_backends()
        assert not report.cached
        assert DEFAULT_BACKEND in report.timings_ms
        reference = TiledBitSerialKernel(engine)
        x = np.random.default_rng(5).integers(0, 256, size=(256, 3))
        out_k, stats_k = kernel.matmul(x)
        out_r, stats_r = reference.matmul(x)
        assert np.array_equal(out_k, out_r)
        assert stats_k == stats_r

    def test_decisions_cached_by_structure(self):
        weight = RNG.normal(size=(32, 128))
        first = ProgrammedLinear(weight, backend="auto")
        again = ProgrammedLinear(weight, backend="auto")
        assert not first.tune_report.cached
        assert again.tune_report.cached
        assert again.tune_report.winner == first.tune_report.winner
        clear_tune_cache()
        fresh = ProgrammedLinear(weight, backend="auto")
        assert not fresh.tune_report.cached

    def test_wrong_candidate_is_vetoed_never_wins(self):
        class Corrupt(TiledBitSerialKernel):
            backend_name = "test-corrupt"

            def matmul(self, x):
                out, stats = super().matmul(x)
                return out + 1e-9, stats  # off by one ulp-ish: must lose

        register_backend(Corrupt)
        try:
            weight = RNG.normal(size=(24, 96))
            engine = ProgrammedLinear(weight).engine
            kernel, report = tune_kernel(
                engine, candidates=(DEFAULT_BACKEND, "test-corrupt")
            )
            assert "test-corrupt" in report.vetoed
            assert report.winner == DEFAULT_BACKEND
            assert "test-corrupt" not in report.timings_ms
        finally:
            _REGISTRY.pop("test-corrupt", None)

    def test_probe_n_validated(self):
        engine = ProgrammedLinear(RNG.normal(size=(8, 16))).engine
        with pytest.raises(ValueError, match="probe_n"):
            tune_kernel(engine, probe_n=0)

    def test_speedup_reported(self):
        engine = ProgrammedLinear(RNG.normal(size=(32, 128))).engine
        _, report = tune_kernel(engine)
        assert report.speedup() > 0.0


# ----------------------------------------------------------------------
# Engine and cache provenance
# ----------------------------------------------------------------------
class TestEngineThreading:
    def test_default_engine_unchanged(self):
        engine = ProgrammedLinear(RNG.normal(size=(16, 64)))
        assert engine.kernel_backend == DEFAULT_BACKEND
        assert engine.backend_request is None
        assert not engine.tuned
        assert engine.tune_report is None
        assert type(engine._kernel) is TiledBitSerialKernel

    def test_conv_delegates_backend_attrs(self):
        conv = ProgrammedConv(
            RNG.normal(size=(4, 3, 3, 3)), padding=1, backend="auto"
        )
        assert conv.tuned
        assert conv.kernel_backend == conv.linear.kernel_backend
        assert conv.backend_request == "auto"
        assert conv.tune_report is conv.linear.tune_report

    def test_backend_extends_cache_key_only_when_set(self):
        weight = RNG.normal(size=(16, 64))
        config = MacroConfig()
        plain = linear_engine_key(weight, config, 8, False)
        pinned = linear_engine_key(weight, config, 8, False, backend="popcount")
        auto = linear_engine_key(weight, config, 8, False, backend="auto")
        assert plain.config_key[-1] is False  # unchanged legacy shape
        assert pinned != plain and auto != plain and pinned != auto
        assert pinned.config_key[-2:] == ("backend", "popcount")

    def test_tuned_tier_and_counter(self):
        cache = EngineCache(capacity=8)
        weight = RNG.normal(size=(16, 64))
        linear_engine(weight, backend="auto", cache=cache, layer_id="L")
        key = linear_engine_key(
            weight, MacroConfig(), 8, False, "L", None, backend="auto"
        )
        assert cache.tier_of(key) == "programmed+tuned"
        assert cache.stats.tuned == 1
        plain_key = linear_engine_key(weight, MacroConfig(), 8, False, "L", None)
        assert cache.tier_of(plain_key) is None  # distinct identity


# ----------------------------------------------------------------------
# Cache accounting fixes
# ----------------------------------------------------------------------
class _NoneStore:
    """A store whose reads quietly return nothing (no exception)."""

    def __init__(self):
        self.reads = 0
        self.writes = 0

    def read_engine(self, key):
        self.reads += 1
        return None

    def write_engine(self, key, engine):
        self.writes += 1


class _RaisingStore(_NoneStore):
    def read_engine(self, key):
        self.reads += 1
        raise OSError("disk on fire")


class TestCacheAccounting:
    def _key(self, tag):
        return EngineKey(layer_id=tag, weight_hash=tag, config_key=(tag,))

    def test_none_return_counts_as_disk_miss(self):
        cache = EngineCache(capacity=4, store=_NoneStore())
        cache.get_or_program(self._key("a"), lambda: object())
        cache.get_or_program(self._key("b"), lambda: object())
        assert cache.stats.disk_misses == 2
        assert cache.stats.disk_hits == 0
        assert cache.stats.misses == cache.stats.disk_hits + cache.stats.disk_misses

    def test_raising_store_counts_identically(self):
        cache = EngineCache(capacity=4, store=_RaisingStore())
        cache.get_or_program(self._key("a"), lambda: object())
        assert cache.stats.disk_misses == 1
        assert cache.stats.misses == cache.stats.disk_hits + cache.stats.disk_misses

    def test_no_store_never_touches_disk_counters(self):
        cache = EngineCache(capacity=4)  # no disk tier at all
        cache.get_or_program(self._key("a"), lambda: object())
        cache.get_or_program(self._key("a"), lambda: object())
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.disk_hits == 0
        assert cache.stats.disk_misses == 0

    def test_reconciliation_across_hit_and_miss_mix(self):
        store = _NoneStore()
        cache = EngineCache(capacity=4, store=store)
        for tag in ("a", "b", "a", "c", "b"):
            cache.get_or_program(self._key(tag), lambda: object())
        stats = cache.stats
        assert stats.hits == 2
        assert stats.misses == 3
        assert stats.misses == stats.disk_hits + stats.disk_misses
        assert store.reads == stats.disk_hits + stats.disk_misses

    def test_stats_reset_clears_tuned(self):
        cache = EngineCache(capacity=4)
        linear_engine(
            RNG.normal(size=(8, 32)), backend="auto", cache=cache, layer_id="r"
        )
        assert cache.stats.tuned == 1
        cache.stats.reset()
        assert cache.stats.tuned == 0


# ----------------------------------------------------------------------
# Compiled models: zoo x noise x shards bitwise matrix
# ----------------------------------------------------------------------
class TestTunedCompiledBitwise:
    @pytest.mark.parametrize("build", [mlp, small_conv_net], ids=["mlp", "conv"])
    @pytest.mark.parametrize("noisy", [False, True], ids=["clean", "noisy"])
    def test_auto_matches_reference_forward(self, build, noisy):
        model = build()
        x = (
            np.random.default_rng(2).normal(size=(2, 64))
            if build is mlp
            else np.random.default_rng(2).normal(size=(2, 3, 8, 8))
        )
        bitline = BitlineModel(noise_sigma_counts=0.5) if noisy else None
        rom = MacroConfig(bitline=bitline)
        sram = MacroConfig(bitline=bitline)
        config = RuntimeConfig(backend="auto", rom_config=rom, sram_config=sram)
        compiled = compile_model(model, config, cache=EngineCache())
        out_c, stats_c = compiled.run(x, rng=np.random.default_rng(9))
        out_r, stats_r = reference_forward(
            model, x, rom_config=rom, sram_config=sram,
            rng=np.random.default_rng(9),
        )
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_auto_sharded_matches_unsharded(self, n_shards):
        model = mlp(seed=4)
        x = np.random.default_rng(6).normal(size=(4, 64))
        config = RuntimeConfig(backend="auto")
        compiled = compile_model(model, config, cache=EngineCache())
        expected, _ = compiled.run(x)
        sharded = shard(compiled, n_shards)
        got, _ = sharded.run(x)
        assert np.array_equal(expected, got)


# ----------------------------------------------------------------------
# Snapshots: byte identity + tuned-winner round trip
# ----------------------------------------------------------------------
def _store_digest(root: Path) -> dict:
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestSnapshotProvenance:
    def test_same_created_at_is_byte_identical(self, tmp_path):
        model = mlp(seed=8)
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        store_a = ArtifactStore(tmp_path / "a")
        store_b = ArtifactStore(tmp_path / "b")
        key_a = save(compiled, store_a, created_at=1234.5)
        key_b = save(compiled, store_b, created_at=1234.5)
        assert key_a == key_b
        assert _store_digest(tmp_path / "a") == _store_digest(tmp_path / "b")

    def test_tuned_winner_survives_round_trip_without_retune(self, tmp_path):
        model = mlp(seed=8)
        config = RuntimeConfig(backend="auto")
        compiled = compile_model(model, config, cache=EngineCache())
        x = np.random.default_rng(3).normal(size=(2, 64))
        expected, expected_stats = compiled.run(x)
        winners = {
            s.layer_id: s.engine_for(s.predicted_signed).kernel_backend
            for s in compiled._slots
        }

        store = ArtifactStore(tmp_path)
        key = save(compiled, store, created_at=0.0)

        clear_tune_cache()  # a warm start must not re-benchmark
        cache = EngineCache(capacity=16)
        loaded = load(store, key, cache=cache)
        got, got_stats = loaded.run(x)
        assert np.array_equal(expected, got)
        assert expected_stats == got_stats
        assert cache.stats.programmed == 0
        for slot in loaded._slots:
            engine = slot.engine_for(slot.predicted_signed)
            assert engine.kernel_backend == winners[slot.layer_id]
            assert engine.tuned
            assert slot.cache_tier() == "snapshot+tuned"

    def test_kernel_backends_introspection(self):
        compiled = compile_model(
            mlp(seed=8), RuntimeConfig(backend="auto"), cache=EngineCache()
        )
        backends = compiled.kernel_backends()
        assert set(backends) == {"0", "2", "4"}
        assert all(name.endswith("(tuned)") for name in backends.values())
