"""Differential tests for the persistent compiled-artifact store.

The load-bearing guarantees:

* **bitwise identity** — for every model family (conv / linear /
  ReBranch) × shard count × seed, with and without bit-line noise,
  ``load(store, save(compiled, store))`` produces a model whose outputs
  and stats are bitwise identical to the freshly compiled one at the
  same execution RNG — including across a process boundary;
* **content addressing** — the artifact key is a pure function of
  (weights, config, shard request): equal inputs collide, any
  difference (a weight bit, a flag, a requires_grad placement) misses;
* **typed failure** — missing keys, truncated/corrupted containers,
  version mismatches and stale weight hashes raise the dedicated
  :class:`SnapshotError` subclasses, and the serving layers
  (``EngineCache`` disk tier, ``ModelRegistry.register``) degrade to
  recompiling instead of crashing.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.cim import BitlineModel, MacroConfig
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.cim.encoding import UnaryPulseEncoding
from repro.rebranch.branch import ReBranchConv2d
from repro.runtime import (
    ArtifactStore,
    EngineCache,
    RuntimeConfig,
    ShardedModel,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotKeyError,
    SnapshotStaleError,
    SnapshotVersionError,
    artifact_key,
    compile_model,
    load,
    save,
    set_default_cache,
)
from repro.runtime import snapshot as snapshot_mod
from repro.serve import BatchPolicy, InferenceServer, ModelRegistry

HW = 8  # input images are (3, HW, HW)


def conv_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(6, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 10, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(10 * (HW // 2) ** 2, 4, rng=rng),
    )


def linear_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(3 * HW * HW, 32, rng=rng),
        nn.ReLU(),
        nn.Linear(32, 16, rng=rng),
        nn.Tanh(),
        nn.Linear(16, 4, rng=rng),
    )


def rebranch_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        ReBranchConv2d(nn.Conv2d(8, 8, 3, padding=1, rng=rng), d=2, u=2, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Flatten(),
        nn.Linear(8, 4, rng=rng),
    )


def resnet8_model(seed=0):
    """Width-reduced resnet8: residual shortcuts through the DAG plan."""
    from repro.models.resnet import resnet8
    from repro.runtime import fold_batchnorm

    model = resnet8(
        num_classes=4, width_mult=0.125, rng=np.random.default_rng(seed)
    )
    model.eval()
    fold_batchnorm(model)
    return model


def mobilenet_model(seed=0):
    """Width-reduced mobilenet: depthwise grouped-conv engine state."""
    from repro.models.mobilenet import mobilenet
    from repro.runtime import fold_batchnorm

    model = mobilenet(
        num_classes=4, width_mult=0.125, rng=np.random.default_rng(seed)
    )
    model.eval()
    fold_batchnorm(model)
    return model


MODELS = {
    "conv": conv_model,
    "linear": linear_model,
    "rebranch": rebranch_model,
    "resnet8": resnet8_model,
    "mobilenet": mobilenet_model,
}


def model_input(name, n=3, seed=1):
    x = np.random.default_rng(seed).normal(size=(n, 3, HW, HW))
    if name == "linear":
        return x.reshape(n, -1)
    return x


def noisy_runtime_config(sigma=0.4):
    return RuntimeConfig(
        rom_config=MacroConfig(
            cell=ROM_1T, bitline=BitlineModel(noise_sigma_counts=sigma)
        ),
        sram_config=MacroConfig(
            cell=SRAM_CIM_6T, bitline=BitlineModel(noise_sigma_counts=sigma)
        ),
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Differential round trips: save -> load -> run is bitwise identical
# ----------------------------------------------------------------------
#: Extra seeds of the differential matrices run under ``-m slow`` (CI's
#: full-matrix job); seed 0 keeps every (model, shards) leg in the fast
#: lane.
EXTRA_SEEDS = [
    pytest.param(1, marks=pytest.mark.slow),
    pytest.param(2, marks=pytest.mark.slow),
]


class TestRoundTripIdentity:
    @pytest.mark.parametrize("seed", [0] + EXTRA_SEEDS)
    @pytest.mark.parametrize("n_shards", [None, 1, 2])
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_bitwise_identity(self, store, name, n_shards, seed):
        model = MODELS[name](seed)
        compiled = compile_model(
            model, RuntimeConfig(), cache=EngineCache(), shards=n_shards
        )
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        assert isinstance(loaded, ShardedModel) == (n_shards is not None)
        x = model_input(name, seed=seed + 10)
        expected, expected_stats = compiled.run(x, rng=np.random.default_rng(9))
        restored, restored_stats = loaded.run(x, rng=np.random.default_rng(9))
        assert np.array_equal(expected, restored)
        assert expected_stats == restored_stats

    @pytest.mark.parametrize("seed", [0] + EXTRA_SEEDS)
    @pytest.mark.parametrize("n_shards", [None, 2])
    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_bitwise_identity_under_bitline_noise(self, store, name, n_shards, seed):
        # Noise draws happen at execution time, per tile, in plan order:
        # the restored engines must consume the RNG stream identically.
        model = MODELS[name](seed)
        compiled = compile_model(
            model, noisy_runtime_config(), cache=EngineCache(), shards=n_shards
        )
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        x = model_input(name, seed=seed + 20)
        expected, expected_stats = compiled.run(x, rng=np.random.default_rng(5))
        restored, restored_stats = loaded.run(x, rng=np.random.default_rng(5))
        assert np.array_equal(expected, restored)
        assert expected_stats == restored_stats
        # Different execution seeds must still differ (noise is real).
        other, _ = loaded.run(x, rng=np.random.default_rng(6))
        assert not np.array_equal(expected, other)

    def test_verify_load_path_is_also_bitwise(self, store):
        compiled = compile_model(conv_model(), RuntimeConfig(), cache=EngineCache())
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache(), verify=True)
        x = model_input("conv")
        expected, _ = compiled.run(x, rng=np.random.default_rng(3))
        restored, _ = loaded.run(x, rng=np.random.default_rng(3))
        assert np.array_equal(expected, restored)

    def test_default_encoding_round_trips(self, store):
        # The compiled default word-line encoding is part of the config
        # and must survive the artifact (it changes execution arithmetic).
        config = RuntimeConfig(encoding=UnaryPulseEncoding())
        compiled = compile_model(conv_model(), config, cache=EngineCache())
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        assert isinstance(loaded.config.encoding, UnaryPulseEncoding)
        x = np.abs(model_input("conv"))  # unsigned: the encoding applies
        expected, _ = compiled.run(x, rng=np.random.default_rng(4))
        restored, _ = loaded.run(x, rng=np.random.default_rng(4))
        assert np.array_equal(expected, restored)

    def test_custom_composite_round_trips_with_layer_ids(self, store):
        class Block(nn.Module):
            #: forward is the registration-order chain, declared so the
            #: runtime compiles it and the artifact serializes it
            #: generically.
            plan_forward = nn.plan_serial

            def __init__(self, rng):
                super().__init__()
                self.body = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
                self.act = nn.ReLU()

            def forward(self, x):
                return self.act(self.body(x))

        rng = np.random.default_rng(0)
        model = nn.Sequential(
            Block(rng), nn.Flatten(), nn.Linear(4 * HW * HW, 2, rng=rng)
        )
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        # Layer ids (and therefore engine-cache keys) are preserved even
        # though the custom class is restored as a generic composite.
        assert [s.layer_id for s in loaded._slots] == [
            s.layer_id for s in compiled._slots
        ]
        x = model_input("conv")
        expected, _ = compiled.run(x, rng=np.random.default_rng(2))
        restored, _ = loaded.run(x, rng=np.random.default_rng(2))
        assert np.array_equal(expected, restored)

    def test_pipelined_stream_replays_bitwise(self, store):
        compiled = compile_model(
            conv_model(), RuntimeConfig(), cache=EngineCache(), shards=2
        )
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        batches = [model_input("conv", seed=s) for s in range(3)]
        expected = compiled.run_stream(batches, seed=11)
        restored = loaded.run_stream(batches, seed=11)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(expected.outputs, restored.outputs)
        )

    def test_loaded_model_weights_are_writable(self, store):
        # The container is mapped copy-on-write: restored parameters
        # must accept in-place training updates like compiled ones.
        compiled = compile_model(linear_model(), RuntimeConfig(), cache=EngineCache())
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        first = loaded.model[0]
        first.weight.data[0, 0] += 1.0
        assert loaded.ensure_fresh() == 1

    def test_save_load_save_is_stable(self, store):
        # A loaded model re-saves under the same content key with the
        # same engines (the artifact is a fixed point).
        compiled = compile_model(conv_model(), RuntimeConfig(), cache=EngineCache())
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        assert save(loaded, store) == key


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
class TestArtifactKey:
    def test_equal_weights_equal_key(self):
        assert artifact_key(linear_model(0)) == artifact_key(linear_model(0))

    def test_weight_change_changes_key(self):
        changed = linear_model(0)
        changed[0].weight.data[0, 0] += 1e-9
        assert artifact_key(linear_model(0)) != artifact_key(changed)

    def test_config_changes_key(self):
        model = linear_model(0)
        assert artifact_key(model) != artifact_key(
            model, RuntimeConfig(activation_bits=6)
        )

    def test_shard_request_changes_key(self):
        model = linear_model(0)
        assert artifact_key(model) != artifact_key(model, shards=2)
        assert artifact_key(model, shards=2) != artifact_key(model, shards=4)

    def test_placement_flags_change_key(self):
        frozen = linear_model(0)
        frozen.freeze()  # ROM placement is content, not convention
        assert artifact_key(linear_model(0)) != artifact_key(frozen)

    def test_key_covers_batchnorm_models(self):
        # Warm-start flows compute the key on the pre-fold model.
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
        )
        assert artifact_key(model, RuntimeConfig(fold_bn=True))


# ----------------------------------------------------------------------
# Cross-process identity
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import sys
import numpy as np
from repro.runtime import ArtifactStore, EngineCache, load

store_dir, key, x_path, out_path = sys.argv[1:5]
loaded = load(ArtifactStore(store_dir), key, cache=EngineCache())
x = np.load(x_path)
y, stats = loaded.run(x, rng=np.random.default_rng(9))
np.save(out_path, y)
print(stats.total_energy_fj)
"""


class TestCrossProcess:
    def test_subprocess_load_matches_parent_fresh_compile(self, store, tmp_path):
        # A different process restoring the artifact must reproduce the
        # parent's fresh-compile outputs bitwise — this catches any
        # accidental dependence on in-process state (shared caches,
        # interned objects, RNG order).
        model = conv_model(3)
        compiled = compile_model(model, noisy_runtime_config(), cache=EngineCache())
        key = save(compiled, store)
        x = model_input("conv", seed=42)
        x_path = tmp_path / "x.npy"
        out_path = tmp_path / "y.npy"
        np.save(x_path, x)

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                _CHILD_SCRIPT,
                str(store.root),
                key,
                str(x_path),
                str(out_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        expected, stats = compiled.run(x, rng=np.random.default_rng(9))
        child_outputs = np.load(out_path)
        assert np.array_equal(expected, child_outputs)
        assert float(result.stdout.strip()) == stats.total_energy_fj


# ----------------------------------------------------------------------
# Robustness: typed failures, graceful serving degradation
# ----------------------------------------------------------------------
class TestRobustness:
    def _saved(self, store, name="linear"):
        compiled = compile_model(MODELS[name](), RuntimeConfig(), cache=EngineCache())
        key = save(compiled, store)
        return compiled, key

    def test_missing_key_is_typed(self, store):
        with pytest.raises(SnapshotKeyError):
            load(store, "0" * 64)
        with pytest.raises(SnapshotError):
            store.meta("0" * 64)

    def test_truncated_artifact_is_typed(self, store):
        _, key = self._saved(store)
        path = store.model_path(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(SnapshotCorruptError):
            load(store, key)

    def test_garbage_artifact_is_typed(self, store):
        _, key = self._saved(store)
        store.model_path(key).write_bytes(b"not an artifact at all")
        with pytest.raises(SnapshotCorruptError):
            load(store, key)

    def test_empty_artifact_is_typed(self, store):
        _, key = self._saved(store)
        store.model_path(key).write_bytes(b"")
        with pytest.raises(SnapshotCorruptError):
            load(store, key)

    def test_version_mismatch_is_typed(self, store, monkeypatch):
        compiled = compile_model(linear_model(), RuntimeConfig(), cache=EngineCache())
        monkeypatch.setattr(snapshot_mod, "VERSION", snapshot_mod.VERSION + 1)
        key = save(compiled, store)
        monkeypatch.undo()
        with pytest.raises(SnapshotVersionError):
            load(store, key)

    def test_header_damage_is_typed(self, store):
        _, key = self._saved(store)
        path = store.model_path(key)
        blob = bytearray(path.read_bytes())
        blob[40] ^= 0xFF  # inside the JSON header
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorruptError):
            load(store, key)

    def test_data_corruption_fails_checksum_verify(self, store):
        _, key = self._saved(store)
        path = store.model_path(key)
        blob = bytearray(path.read_bytes())
        blob[-100] ^= 0xFF  # inside the array data section
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorruptError):
            store.verify(key)
        with pytest.raises(SnapshotCorruptError):
            load(store, key, verify=True)

    def test_stale_fingerprints_raise_under_verify(self, store):
        _, key = self._saved(store)
        path = store.model_path(key)
        meta, arrays = store.read_model(key)
        meta["fingerprints"] = {
            layer: "0" * 40 for layer in meta["fingerprints"]
        }
        store._write(path, meta, {k: np.asarray(v) for k, v in arrays.items()})
        with pytest.raises(SnapshotStaleError):
            load(store, key, verify=True)

    def test_tampered_weights_raise_under_verify(self, store):
        _, key = self._saved(store)
        path = store.model_path(key)
        meta, arrays = store.read_model(key)
        arrays = {k: np.array(v) for k, v in arrays.items()}
        weight_name = meta["module_tree"]["children"][0][1]["weight"]["array"]
        arrays[weight_name][0, 0] += 1.0
        store._write(path, meta, arrays)
        with pytest.raises(SnapshotStaleError):
            load(store, key, verify=True)

    def test_save_refuses_stale_engines(self, store):
        compiled = compile_model(linear_model(), RuntimeConfig(), cache=EngineCache())
        compiled.model[0].weight.data[0, 0] += 1.0
        with pytest.raises(SnapshotStaleError):
            save(compiled, store)
        # ensure_fresh re-fingerprints; saving then round-trips bitwise.
        assert compiled.ensure_fresh() == 1
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        x = model_input("linear")
        expected, _ = compiled.run(x, rng=np.random.default_rng(1))
        restored, _ = loaded.run(x, rng=np.random.default_rng(1))
        assert np.array_equal(expected, restored)

    def test_load_with_small_cache_is_not_spuriously_stale(self, store):
        # A target cache smaller than the artifact's engine count must
        # not evict seeded engines mid-build and misreport staleness:
        # load stages privately, then shares best-effort.
        compiled, key = self._saved(store)
        loaded = load(store, key, cache=EngineCache(capacity=1))
        x = model_input("linear")
        expected, _ = compiled.run(x, rng=np.random.default_rng(1))
        restored, _ = loaded.run(x, rng=np.random.default_rng(1))
        assert np.array_equal(expected, restored)

    def test_custom_encoding_subclass_is_not_addressable(self, store):
        # A behaviour-overriding subclass must not content-address (or
        # serialize) as its base encoding: a warm start would silently
        # restore the wrong arithmetic.
        class TweakedPulse(UnaryPulseEncoding):
            pass

        config = RuntimeConfig(encoding=TweakedPulse())
        with pytest.raises(SnapshotError):
            artifact_key(linear_model(), config)
        compiled = compile_model(linear_model(), config, cache=EngineCache())
        with pytest.raises(SnapshotError):
            save(compiled, store)

    def test_registry_skips_store_for_unaddressable_config(self, store):
        # The store must never make a registration fail — even when the
        # artifact format cannot address the configuration at all.
        class TweakedPulse(UnaryPulseEncoding):
            pass

        registry = ModelRegistry(cache=EngineCache())
        entry = registry.register(
            "m",
            linear_model(),
            RuntimeConfig(encoding=TweakedPulse()),
            store=store,
        )
        assert not entry.warm_start and entry.artifact_key is None
        assert store.keys() == []  # nothing mis-keyed was written back

    def test_key_is_fold_insensitive(self, store):
        # The registry keys the model as registered (pre-fold) while
        # save() defaults to the compiled image (post-fold); with
        # fold_bn both must hash to the same canonical key, so a
        # quickstart-saved artifact is reachable by warm start.
        def bn_model():
            rng = np.random.default_rng(0)
            return nn.Sequential(
                nn.Conv2d(3, 4, 3, padding=1, rng=rng),
                nn.BatchNorm2d(4),
                nn.ReLU(),
                nn.Flatten(),
                nn.Linear(4 * HW * HW, 2, rng=rng),
            )

        config = RuntimeConfig(fold_bn=True)
        pre_fold_key = artifact_key(bn_model(), config)
        model = bn_model()
        compiled = compile_model(model, config, cache=EngineCache())  # folds in place
        assert save(compiled, store) == pre_fold_key
        registry = ModelRegistry(cache=EngineCache())
        entry = registry.register("m", bn_model(), config, store=store)
        assert entry.warm_start and entry.artifact_key == pre_fold_key

    def test_load_with_retention_free_cache(self, store):
        # capacity=0 reproduces the seed per-call behaviour; load must
        # still restore (through a private staging cache), not recompile.
        compiled, key = self._saved(store)
        loaded = load(store, key, cache=EngineCache(capacity=0))
        x = model_input("linear")
        expected, _ = compiled.run(x, rng=np.random.default_rng(1))
        restored, _ = loaded.run(x, rng=np.random.default_rng(1))
        assert np.array_equal(expected, restored)

    def test_engine_cache_disk_tier_degrades_to_recompile(self, store):
        model = linear_model()
        warm = EngineCache(store=store)
        compile_model(model, RuntimeConfig(), cache=warm)
        assert warm.stats.programmed > 0
        assert store.engine_count() == warm.stats.programmed

        # Second "process": every engine restores from disk.
        second = EngineCache(store=store)
        compiled = compile_model(linear_model(), RuntimeConfig(), cache=second)
        assert second.stats.programmed == 0
        assert second.stats.disk_hits == warm.stats.programmed

        # Corrupt every engine artifact: the tier falls back to
        # programming from scratch — no exception reaches the caller.
        for path in (store.root / "engines").glob("*.rcma"):
            path.write_bytes(b"garbage")
        third = EngineCache(store=store)
        recompiled = compile_model(linear_model(), RuntimeConfig(), cache=third)
        assert third.stats.programmed > 0
        assert third.stats.disk_misses >= third.stats.programmed
        x = model_input("linear")
        expected, _ = compiled.run(x, rng=np.random.default_rng(1))
        again, _ = recompiled.run(x, rng=np.random.default_rng(1))
        assert np.array_equal(expected, again)

    def test_registry_degrades_to_recompile_and_keeps_serving(self, store):
        registry = ModelRegistry(cache=EngineCache())
        entry = registry.register("m", linear_model(), store=store)
        assert not entry.warm_start and entry.artifact_key in store

        # Corrupt the model artifact: re-registration must recompile
        # and the server must keep serving.
        path = store.model_path(entry.artifact_key)
        path.write_bytes(path.read_bytes()[:64])
        fresh = ModelRegistry(cache=EngineCache())
        recompiled = fresh.register("m", linear_model(), store=store)
        assert not recompiled.warm_start
        with InferenceServer(fresh, BatchPolicy(max_batch_size=4)) as server:
            result = server.submit("m", model_input("linear", n=1)).result(
                timeout=30.0
            )
        assert result.ok

    def test_registry_warm_start_is_bitwise(self, store):
        cold = ModelRegistry(cache=EngineCache())
        first = cold.register("m", linear_model(), store=store)
        warm = ModelRegistry(cache=EngineCache())
        second = warm.register("m", linear_model(), store=store)
        assert second.warm_start
        assert second.artifact_key == first.artifact_key
        x = model_input("linear")
        expected, _ = first.compiled.run(x, rng=np.random.default_rng(2))
        restored, _ = second.compiled.run(x, rng=np.random.default_rng(2))
        assert np.array_equal(expected, restored)

    def test_sharded_registry_warm_start(self, store):
        cold = ModelRegistry(cache=EngineCache())
        cold.register("s", conv_model(), shards=2, store=store)
        warm = ModelRegistry(cache=EngineCache())
        entry = warm.register("s", conv_model(), shards=2, store=store)
        assert entry.warm_start and entry.n_shards == 2

    def test_default_cache_is_seeded_by_load(self, store, tmp_path):
        # load() without an explicit cache seeds the process-wide one.
        _, key = self._saved(store)
        previous = set_default_cache(EngineCache())
        try:
            load(store, key)
            fresh = compile_model(linear_model(), RuntimeConfig())
            from repro.runtime import get_default_cache

            assert get_default_cache().stats.programmed == 0
            assert fresh.n_weight_layers == 3
        finally:
            set_default_cache(previous)
