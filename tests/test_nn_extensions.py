"""Tests for the nn substrate extensions: label smoothing, RMSprop, EMA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(17)


class TestLabelSmoothing:
    def test_zero_smoothing_unchanged(self):
        logits = Tensor(RNG.normal(size=(8, 5)))
        y = RNG.integers(0, 5, size=8)
        plain = F.cross_entropy(logits, y)
        smoothed = F.cross_entropy(logits, y, label_smoothing=0.0)
        assert smoothed.data == pytest.approx(plain.data)

    def test_smoothing_matches_manual_mixture(self):
        logits = Tensor(RNG.normal(size=(6, 4)))
        y = RNG.integers(0, 4, size=6)
        s = 0.2
        loss = F.cross_entropy(logits, y, label_smoothing=s)
        log_probs = F.log_softmax(logits, axis=1).data
        n, c = log_probs.shape
        target = np.full((n, c), s / c)
        target[np.arange(n), y] += 1.0 - s
        manual = -(target * log_probs).sum(axis=1).mean()
        assert loss.data == pytest.approx(manual)

    def test_smoothing_raises_loss_on_confident_model(self):
        logits = Tensor(np.eye(4) * 10.0)
        y = np.arange(4)
        plain = F.cross_entropy(logits, y)
        smoothed = F.cross_entropy(logits, y, label_smoothing=0.1)
        assert smoothed.data > plain.data

    def test_gradient_flows(self):
        logits = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        F.cross_entropy(logits, np.array([0, 1, 2, 0]), label_smoothing=0.1).backward()
        assert logits.grad is not None
        # Softmax-CE gradient rows sum to zero either way.
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-12)

    def test_invalid_smoothing(self):
        logits = Tensor(RNG.normal(size=(2, 3)))
        with pytest.raises(ValueError, match="label_smoothing"):
            F.cross_entropy(logits, np.array([0, 1]), label_smoothing=1.0)

    @given(st.floats(0.0, 0.9), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_loss_bounded_below_by_entropy_floor(self, smoothing, seed):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(5, 6)))
        y = rng.integers(0, 6, size=5)
        loss = F.cross_entropy(logits, y, label_smoothing=smoothing)
        assert np.isfinite(loss.data)
        assert loss.data > 0


class TestRMSprop:
    def test_minimizes_quadratic(self):
        w = nn.Parameter(np.array([5.0, -3.0]))
        opt = nn.RMSprop([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (w * w).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, 0.0, atol=1e-2)

    def test_momentum_variant_minimizes(self):
        w = nn.Parameter(np.array([2.0]))
        opt = nn.RMSprop([w], lr=0.05, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 0.2

    def test_skips_frozen_parameters(self):
        w = nn.Parameter(np.array([1.0]))
        w.requires_grad = False
        frozen_value = w.data.copy()
        trainable = nn.Parameter(np.array([1.0]))
        opt = nn.RMSprop([w, trainable], lr=0.1)
        opt.zero_grad()
        ((trainable * trainable).sum() + Tensor(np.array(0.0))).backward()
        opt.step()
        np.testing.assert_array_equal(w.data, frozen_value)

    def test_invalid_hyperparameters(self):
        w = nn.Parameter(np.array([1.0]))
        with pytest.raises(ValueError, match="learning rate"):
            nn.RMSprop([w], lr=0.0)
        with pytest.raises(ValueError, match="alpha"):
            nn.RMSprop([w], alpha=1.0)
        with pytest.raises(ValueError, match="momentum"):
            nn.RMSprop([w], momentum=-0.1)

    def test_weight_decay_shrinks_weights(self):
        w = nn.Parameter(np.array([1.0]))
        opt = nn.RMSprop([w], lr=0.01, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            (w * Tensor(np.array([0.0]))).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 1.0


class TestEMA:
    def _model(self):
        return nn.Sequential(
            nn.Linear(4, 8, rng=np.random.default_rng(0)),
            nn.ReLU(),
            nn.Linear(8, 2, rng=np.random.default_rng(1)),
        )

    def test_shadow_initialized_to_parameters(self):
        model = self._model()
        ema = nn.ExponentialMovingAverage(model, decay=0.9)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(ema.shadow[name], param.data)

    def test_update_moves_toward_new_values(self):
        model = self._model()
        ema = nn.ExponentialMovingAverage(model, decay=0.5)
        old = {n: p.data.copy() for n, p in model.named_parameters()}
        for param in model.parameters():
            param.data = param.data + 1.0
        ema.update()
        for name, param in model.named_parameters():
            np.testing.assert_allclose(ema.shadow[name], old[name] + 0.5)

    def test_context_swaps_and_restores(self):
        model = self._model()
        ema = nn.ExponentialMovingAverage(model, decay=0.0)
        live = {n: p.data.copy() for n, p in model.named_parameters()}
        for param in model.parameters():
            param.data = param.data * 3.0
        with ema.average_parameters():
            for name, param in model.named_parameters():
                np.testing.assert_array_equal(param.data, live[name])
        for name, param in model.named_parameters():
            np.testing.assert_allclose(param.data, 3.0 * live[name])

    def test_frozen_parameters_not_tracked(self):
        model = self._model()
        model._modules["0"].freeze()
        ema = nn.ExponentialMovingAverage(model)
        assert all(not name.startswith("0.") for name in ema.shadow)

    def test_restore_without_store_raises(self):
        ema = nn.ExponentialMovingAverage(self._model())
        with pytest.raises(RuntimeError, match="store"):
            ema.restore()

    def test_invalid_decay(self):
        with pytest.raises(ValueError, match="decay"):
            nn.ExponentialMovingAverage(self._model(), decay=1.0)

    @given(st.floats(0.0, 0.99), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_constant_parameters_fixed_point(self, decay, steps):
        model = self._model()
        ema = nn.ExponentialMovingAverage(model, decay=decay)
        for _ in range(steps):
            ema.update()
        for name, param in model.named_parameters():
            np.testing.assert_allclose(ema.shadow[name], param.data, atol=1e-12)
