"""Differential tests for the chaos runtime.

Every guarantee here is a *differential witness* against the clean
runtime:

* **zero-magnitude identity** — a chaos-instrumented stream under a
  schedule of zero-magnitude faults is bitwise identical (outputs and
  stats) to the clean ``run_stream``, across the model matrix
  (synthetic conv stack + zoo resnet8/mobilenet), shard counts and
  seeds;
* **replay determinism** — the same ``(seed, schedule)`` produces an
  identical ``deterministic_trace()`` (fired faults, recovery
  structure, output SHA-256 digests) across two separate processes;
* **exactly-once failover** — every requested micro-batch index ends
  either delivered (exactly once, bitwise equal to the clean oracle)
  or dropped (recorded), never both, never twice;
* **surgical degradation windows** — faults perturb exactly the
  micro-batches inside their window and nothing else;
* **serve failover** — a shard death under the server re-plans the
  registry entry, replays the displaced batch exactly once, and a
  cancelling shutdown racing a failover drains deterministically.

Synchronization discipline: every blocking wait in the serve tests
goes through ``tests/helpers.py`` (``DEADLINE`` / ``await_results``) or
a real condition-variable wait — no wall-clock sleeps, no ``elapsed <``
assertions (``scripts/check_test_hygiene.py`` enforces this).
"""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro import nn
from repro.chaos import (
    ADC_DRIFT,
    BITLINE_NOISE,
    ChaosController,
    FaultEvent,
    FaultSchedule,
    LINK_DEGRADE,
    SHARD_DEATH,
    generate_schedule,
)
from repro.chaos.schedule import ScheduleError
from repro.models import mobilenet, resnet8
from repro.runtime import (
    ArtifactStore,
    EngineCache,
    RuntimeConfig,
    artifact_key,
    compile_model,
    fold_batchnorm,
    save,
    shard,
    stream_rng,
)
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    ModelRegistry,
    RequestStatus,
)

from .helpers import DEADLINE, await_results

HW = 8  # input images are (3, HW, HW); zoo models are width-reduced
N_BATCHES = 6
BATCH = 2


def conv_model(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(6, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(8 * (HW // 2) ** 2, 4, rng=rng),
    )


def zoo_model(name, seed=0):
    builder = {"resnet8": resnet8, "mobilenet": mobilenet}[name]
    model = builder(
        num_classes=4, width_mult=0.125, rng=np.random.default_rng(seed)
    )
    model.eval()
    fold_batchnorm(model)
    return model


MODEL_BUILDERS = {
    "conv": conv_model,
    "resnet8": lambda seed=0: zoo_model("resnet8", seed),
    "mobilenet": lambda seed=0: zoo_model("mobilenet", seed),
}

_COMPILED = {}


def compiled_model(name):
    """Compile each matrix model once per test process."""
    if name not in _COMPILED:
        _COMPILED[name] = compile_model(
            MODEL_BUILDERS[name](), RuntimeConfig(), cache=EngineCache()
        )
    return _COMPILED[name]


def batches_for(seed, n=N_BATCHES):
    return [
        np.random.default_rng([seed + 1, i]).normal(size=(BATCH, 3, HW, HW))
        for i in range(n)
    ]


def oracle_outputs(compiled, batches, seed):
    """Per-batch unsharded replay with the stream's RNGs."""
    return [
        compiled.run(b, rng=stream_rng(seed, i))[0]
        for i, b in enumerate(batches)
    ]


INPUT_SHAPE = (1, 3, HW, HW)


def zero_magnitude_schedule(seed):
    """One event of every kind that *can* be a no-op, all inert."""
    return FaultSchedule(
        seed=seed,
        events=(
            FaultEvent(kind=BITLINE_NOISE, at_index=1, magnitude=0.0),
            FaultEvent(kind=ADC_DRIFT, at_index=0, magnitude=0.0, gain_slope=0.0),
            FaultEvent(
                kind=LINK_DEGRADE,
                shard=0,
                at_index=2,
                latency_factor=1.0,
                energy_factor=1.0,
            ),
        ),
    )


# ----------------------------------------------------------------------
# Schedule surface
# ----------------------------------------------------------------------
class TestScheduleSurface:
    def test_validation_rejects_malformed_events(self):
        with pytest.raises(ScheduleError):
            FaultEvent(kind="meteor_strike", at_index=0)
        with pytest.raises(ScheduleError):
            FaultEvent(kind=SHARD_DEATH, shard=0)  # no firing point
        with pytest.raises(ScheduleError):
            FaultEvent(kind=SHARD_DEATH, shard=0, at_index=1, at_chip_ns=1.0)
        with pytest.raises(ScheduleError):
            FaultEvent(kind=SHARD_DEATH, at_index=1)  # shard required
        with pytest.raises(ScheduleError):
            FaultEvent(kind=BITLINE_NOISE, at_index=1, drop=2)

    def test_version_gate(self):
        meta = FaultSchedule(seed=3).to_meta()
        meta["version"] = 99
        with pytest.raises(ScheduleError):
            FaultSchedule.from_meta(meta)

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ScheduleError):
            FaultEvent.from_meta({"kind": BITLINE_NOISE, "at_index": 0, "blast": 1})

    def test_zero_magnitude_schedule_is_noop_and_controller_inert(self):
        schedule = zero_magnitude_schedule(0)
        assert schedule.is_noop
        controller = ChaosController(schedule)
        assert controller.is_inert
        assert not controller.has_deaths
        # A death is never a no-op.
        assert not FaultSchedule(
            events=(FaultEvent(kind=SHARD_DEATH, shard=0, at_index=0),)
        ).is_noop


# ----------------------------------------------------------------------
# Zero-magnitude differential matrix
# ----------------------------------------------------------------------
class TestZeroMagnitudeIdentity:
    @pytest.mark.parametrize("seed", [0, pytest.param(7, marks=pytest.mark.slow)])
    @pytest.mark.parametrize("n_shards", [2, pytest.param(4, marks=pytest.mark.slow)])
    @pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
    def test_bitwise_identical_to_clean_stream(self, name, n_shards, seed):
        compiled = compiled_model(name)
        sharded = shard(compiled, n_shards, input_shape=INPUT_SHAPE)
        batches = batches_for(seed)
        clean = sharded.run_stream(batches, seed=seed)
        chaotic = sharded.run_stream(
            batches,
            seed=seed,
            chaos=ChaosController(zero_magnitude_schedule(seed)),
        )
        assert chaotic.availability == 1.0
        assert chaotic.fired == []
        assert chaotic.recoveries == []
        assert chaotic.delivered_indexes == tuple(range(len(batches)))
        for got, want in zip(chaotic.outputs, clean.outputs):
            assert np.array_equal(got, want)
        assert chaotic.per_batch == clean.per_batch
        assert chaotic.stats == clean.stats
        np.testing.assert_array_equal(chaotic.compute_ns, clean.compute_ns)
        np.testing.assert_array_equal(chaotic.link_ns, clean.link_ns)

    def test_generated_zero_magnitude_schedule_is_inert(self):
        # generate_schedule with max_magnitude=0 over noise events
        # produces a fully inert campaign (drift ramps draw a nonzero
        # gain slope, so only the noise kind can be zeroed wholesale).
        schedule = generate_schedule(
            5,
            n_batches=N_BATCHES,
            n_shards=2,
            kinds=(BITLINE_NOISE,),
            max_magnitude=0.0,
        )
        assert schedule.is_noop
        compiled = compiled_model("conv")
        sharded = shard(compiled, 2, input_shape=INPUT_SHAPE)
        batches = batches_for(3, n=4)
        clean = sharded.run_stream(batches, seed=3)
        chaotic = sharded.run_stream(
            batches, seed=3, chaos=ChaosController(schedule)
        )
        for got, want in zip(chaotic.outputs, clean.outputs):
            assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
class TestFailover:
    @pytest.mark.parametrize("seed", [0, pytest.param(7, marks=pytest.mark.slow)])
    @pytest.mark.parametrize("n_shards", [2, pytest.param(4, marks=pytest.mark.slow)])
    @pytest.mark.parametrize("name", ["conv", "resnet8"])
    def test_death_failover_delivers_bitwise(self, name, n_shards, seed):
        compiled = compiled_model(name)
        sharded = shard(compiled, n_shards, input_shape=INPUT_SHAPE)
        batches = batches_for(seed)
        oracle = oracle_outputs(compiled, batches, seed)
        schedule = FaultSchedule(
            seed=seed,
            events=(FaultEvent(kind=SHARD_DEATH, shard=n_shards - 1, at_index=2),),
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        result = sharded.run_stream(batches, seed=seed, chaos=controller)
        assert result.availability == 1.0
        assert len(result.recoveries) == 1
        recovery = result.recoveries[0]
        assert recovery.n_shards_before == n_shards
        assert recovery.n_shards_after == n_shards - 1
        assert recovery.dropped == ()
        # Every delivered output is bitwise equal to the clean oracle:
        # failover re-planning never changes arithmetic.
        for i, out in result.outputs_by_index.items():
            assert np.array_equal(out, oracle[i])

    def test_exactly_once_partition(self):
        compiled = compiled_model("conv")
        sharded = shard(compiled, 4, input_shape=INPUT_SHAPE)
        batches = batches_for(11, n=8)
        schedule = FaultSchedule(
            seed=11,
            events=(FaultEvent(kind=SHARD_DEATH, shard=1, at_index=3, drop=2),),
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        result = sharded.run_stream(batches, seed=11, chaos=controller)
        delivered = set(result.delivered_indexes)
        dropped = set(result.dropped_indexes)
        # Partition: every index exactly once, in exactly one set.
        assert delivered.isdisjoint(dropped)
        assert delivered | dropped == set(range(len(batches)))
        assert len(result.delivered_indexes) == len(delivered)
        # drop=2 abandons exactly the two earliest displaced indexes.
        recovery = result.recoveries[0]
        assert len(recovery.dropped) == 2
        assert recovery.dropped == tuple(sorted(recovery.displaced)[:2])
        assert set(recovery.replayed) == set(recovery.displaced) - dropped
        # Replays resume mid-plan, never from node 0 (they crossed at
        # least the first stage before being displaced).
        assert all(node > 0 for node in recovery.resume_nodes)

    def test_chip_time_fired_death(self):
        compiled = compiled_model("conv")
        sharded = shard(compiled, 2, input_shape=INPUT_SHAPE)
        batches = batches_for(2)
        oracle = oracle_outputs(compiled, batches, 2)
        # Fire once the shard's cumulative chip time crosses half of a
        # clean run's: deterministic in simulated time, not wall time.
        clean = sharded.run_stream(batches, seed=2)
        threshold = float(clean.compute_ns[:, 0].sum()) / 2.0
        schedule = FaultSchedule(
            seed=2,
            events=(
                FaultEvent(kind=SHARD_DEATH, shard=0, at_chip_ns=threshold),
            ),
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        result = sharded.run_stream(batches, seed=2, chaos=controller)
        assert len(result.fired) == 1
        assert result.availability == 1.0
        for i, out in result.outputs_by_index.items():
            assert np.array_equal(out, oracle[i])
        # Same schedule, fresh controller: the firing point replays.
        again = sharded.run_stream(
            batches,
            seed=2,
            chaos=ChaosController(schedule, input_shape=INPUT_SHAPE),
        )
        assert again.deterministic_trace() == result.deterministic_trace()

    def test_warm_restore_from_artifact_store(self, tmp_path):
        compiled = compiled_model("conv")
        sharded = shard(compiled, 2, input_shape=INPUT_SHAPE)
        store = ArtifactStore(tmp_path / "store")
        model = conv_model()
        config = RuntimeConfig()

        def key_fn(n_shards):
            return artifact_key(
                model, config, shards=n_shards, input_shape=INPUT_SHAPE
            )

        # Pre-populate the surviving topology, as a fleet warm-up would.
        save(
            shard(compiled, 1, input_shape=INPUT_SHAPE), store, key=key_fn(1)
        )
        batches = batches_for(4)
        oracle = oracle_outputs(compiled, batches, 4)
        schedule = FaultSchedule(
            seed=4, events=(FaultEvent(kind=SHARD_DEATH, shard=0, at_index=1),)
        )
        controller = ChaosController(
            schedule,
            store=store,
            artifact_key_fn=key_fn,
            input_shape=INPUT_SHAPE,
        )
        result = sharded.run_stream(batches, seed=4, chaos=controller)
        assert result.recoveries[0].warm_restored
        assert result.availability == 1.0
        for i, out in result.outputs_by_index.items():
            assert np.array_equal(out, oracle[i])

    def test_unrecoverable_fleet_drops_remaining(self):
        compiled = compiled_model("conv")
        sharded = shard(compiled, 2, input_shape=INPUT_SHAPE)
        batches = batches_for(6)
        schedule = FaultSchedule(
            seed=6,
            events=(
                FaultEvent(kind=SHARD_DEATH, shard=0, at_index=1),
                FaultEvent(kind=SHARD_DEATH, shard=0, at_index=2),
            ),
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        result = sharded.run_stream(batches, seed=6, chaos=controller)
        # Second death kills the last surviving shard: everything still
        # in flight is dropped, availability reflects it, and the run
        # still terminates cleanly.
        assert result.recoveries[-1].n_shards_after == 0
        assert result.availability < 1.0
        assert set(result.delivered_indexes) | set(result.dropped_indexes) == set(
            range(len(batches))
        )

    def test_post_failover_suffix_bitwise(self):
        """Micro-batches not in flight at the fault point — the suffix
        admitted after recovery — are bitwise identical to a clean run
        (the numerics.md failover clause)."""
        compiled = compiled_model("conv")
        sharded = shard(compiled, 2, input_shape=INPUT_SHAPE)
        batches = batches_for(9, n=8)
        oracle = oracle_outputs(compiled, batches, 9)
        schedule = FaultSchedule(
            seed=9, events=(FaultEvent(kind=SHARD_DEATH, shard=1, at_index=2),)
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        result = sharded.run_stream(batches, seed=9, chaos=controller)
        displaced = set(result.recoveries[0].displaced)
        suffix = [i for i in result.delivered_indexes if i not in displaced]
        assert suffix  # the campaign must actually exercise the suffix
        for i in suffix:
            assert np.array_equal(result.outputs_by_index[i], oracle[i])


# ----------------------------------------------------------------------
# Cross-process determinism
# ----------------------------------------------------------------------
_CAMPAIGN_SCRIPT = """
import json
import numpy as np
from repro import nn
from repro.chaos import (
    ADC_DRIFT, BITLINE_NOISE, ChaosController, FaultEvent, FaultSchedule,
    SHARD_DEATH,
)
from repro.runtime import RuntimeConfig, EngineCache, compile_model, shard

HW = 8
rng = np.random.default_rng(0)
model = nn.Sequential(
    nn.Conv2d(3, 6, 3, padding=1, rng=rng),
    nn.ReLU(),
    nn.Conv2d(6, 8, 3, padding=1, rng=rng),
    nn.ReLU(),
    nn.MaxPool2d(2),
    nn.Conv2d(8, 8, 3, padding=1, rng=rng),
    nn.ReLU(),
    nn.Flatten(),
    nn.Linear(8 * (HW // 2) ** 2, 4, rng=rng),
)
compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
sharded = shard(compiled, 2, input_shape=(1, 3, HW, HW))
batches = [
    np.random.default_rng([8, i]).normal(size=(2, 3, HW, HW))
    for i in range(6)
]
schedule = FaultSchedule(seed=7, events=(
    FaultEvent(kind=SHARD_DEATH, shard=1, at_index=2, drop=1),
    FaultEvent(kind=BITLINE_NOISE, at_index=1, magnitude=1.5, duration=2),
    FaultEvent(kind=ADC_DRIFT, at_index=3, magnitude=0.75, gain_slope=0.01),
))
controller = ChaosController(schedule, input_shape=(1, 3, HW, HW))
result = sharded.run_stream(batches, seed=7, chaos=controller)
print(json.dumps(result.deterministic_trace(), sort_keys=True))
"""


class TestCrossProcessDeterminism:
    def test_trace_identical_across_processes(self, tmp_path):
        script = tmp_path / "campaign.py"
        script.write_text(_CAMPAIGN_SCRIPT)
        env = dict(os.environ)
        traces = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            traces.append(json.loads(proc.stdout))
        assert traces[0] == traces[1]
        # The campaign is non-trivial: a fault fired, a recovery
        # happened, a micro-batch was dropped, outputs were digested.
        assert traces[0]["fired"]
        assert traces[0]["recoveries"]
        assert traces[0]["dropped"]
        assert traces[0]["output_sha256"]


# ----------------------------------------------------------------------
# Degradation windows
# ----------------------------------------------------------------------
class TestDegradationWindows:
    def run_pair(self, schedule, seed=1, n=N_BATCHES, n_shards=2):
        compiled = compiled_model("conv")
        sharded = shard(compiled, n_shards, input_shape=INPUT_SHAPE)
        batches = batches_for(seed, n=n)
        clean = sharded.run_stream(batches, seed=seed)
        chaotic = sharded.run_stream(
            batches, seed=seed, chaos=ChaosController(schedule)
        )
        return clean, chaotic

    def test_bitline_noise_window_is_surgical(self):
        schedule = FaultSchedule(
            seed=1,
            events=(
                FaultEvent(
                    kind=BITLINE_NOISE, at_index=2, magnitude=2.0, duration=2
                ),
            ),
        )
        clean, chaotic = self.run_pair(schedule)
        differs = [
            not np.array_equal(got, want)
            for got, want in zip(chaotic.outputs, clean.outputs)
        ]
        # Exactly the in-window micro-batches (2, 3) are perturbed.
        assert differs == [False, False, True, True, False, False]

    def test_adc_drift_window_is_surgical(self):
        schedule = FaultSchedule(
            seed=1,
            events=(
                FaultEvent(
                    kind=ADC_DRIFT,
                    at_index=1,
                    magnitude=1.0,
                    gain_slope=0.02,
                    duration=3,
                ),
            ),
        )
        clean, chaotic = self.run_pair(schedule)
        differs = [
            not np.array_equal(got, want)
            for got, want in zip(chaotic.outputs, clean.outputs)
        ]
        assert differs == [False, True, True, True, False, False]

    def test_link_degrade_scales_stats_never_outputs(self):
        factor = 4.0
        schedule = FaultSchedule(
            seed=1,
            events=(
                FaultEvent(
                    kind=LINK_DEGRADE,
                    shard=0,
                    at_index=2,
                    duration=1,
                    latency_factor=factor,
                    energy_factor=2.0,
                ),
            ),
        )
        clean, chaotic = self.run_pair(schedule)
        for got, want in zip(chaotic.outputs, clean.outputs):
            assert np.array_equal(got, want)  # stats-only fault
        for i, (got, want) in enumerate(zip(chaotic.per_batch, clean.per_batch)):
            if i == 2:
                assert got.link_latency_ns == factor * want.link_latency_ns
                assert got.link_energy_fj == 2.0 * want.link_energy_fj
            else:
                assert got == want

    def test_degraded_replay_stays_deterministic(self):
        # Noise windows draw from the micro-batch's own stream_rng, so
        # re-running the same campaign replays the noise exactly.
        schedule = FaultSchedule(
            seed=1,
            events=(
                FaultEvent(kind=BITLINE_NOISE, at_index=0, magnitude=1.0),
            ),
        )
        _, first = self.run_pair(schedule)
        _, second = self.run_pair(schedule)
        for got, want in zip(first.outputs, second.outputs):
            assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Serve integration
# ----------------------------------------------------------------------
def serve_batches(n=6, seed=21):
    return [
        np.random.default_rng([seed, i]).normal(size=(1, 3, HW, HW))
        for i in range(n)
    ]


class TestServeChaos:
    def test_server_failover_replays_exactly_once(self):
        model = conv_model()
        compiled = compiled_model("conv")
        oracle = [
            compiled.run(x, rng=np.random.default_rng(0))[0]
            for x in serve_batches()
        ]
        registry = ModelRegistry()
        registry.register("m", model, shards=2, shard_input_shape=INPUT_SHAPE)
        schedule = FaultSchedule(
            seed=0, events=(FaultEvent(kind=SHARD_DEATH, shard=1, at_index=2),)
        )
        controller = ChaosController(schedule, input_shape=INPUT_SHAPE)
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=1, max_wait_s=0.0),
            n_workers=1,
            chaos=controller,
        )
        with server:
            results = await_results(
                [server.submit("m", x) for x in serve_batches()]
            )
        for i, result in enumerate(results):
            assert result.status is RequestStatus.COMPLETED
            assert np.array_equal(result.output, oracle[i])
        assert len(server.recoveries) == 1
        recovery = server.recoveries[0]
        assert recovery.n_shards_before == 2
        assert recovery.n_shards_after == 1
        assert len(recovery.replayed) == 1 and recovery.dropped == ()
        entry = registry.entry("m")
        assert entry.n_shards == 1
        assert entry.generation == 1  # swap bumped it
        snapshot = server.snapshot()
        assert snapshot.faults == {SHARD_DEATH: 1}
        assert snapshot.recoveries == 1
        assert snapshot.recovery_replayed == 1
        assert snapshot.recovery_dropped == 0
        # Every admitted request completed despite the failover.
        assert snapshot.completed == len(oracle)

    def test_server_zero_magnitude_identity(self):
        model = conv_model()
        compiled = compiled_model("conv")
        oracle = [
            compiled.run(x, rng=np.random.default_rng(0))[0]
            for x in serve_batches()
        ]
        registry = ModelRegistry()
        registry.register("m", model)
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=1, max_wait_s=0.0),
            n_workers=1,
            chaos=ChaosController(zero_magnitude_schedule(0)),
        )
        with server:
            results = await_results(
                [server.submit("m", x) for x in serve_batches()]
            )
        for i, result in enumerate(results):
            assert np.array_equal(result.output, oracle[i])
        assert server.recoveries == []

    def test_server_degradation_window_perturbs_batches(self):
        model = conv_model()
        compiled = compiled_model("conv")
        oracle = [
            compiled.run(x, rng=np.random.default_rng(0))[0]
            for x in serve_batches()
        ]
        registry = ModelRegistry()
        registry.register("m", model)
        schedule = FaultSchedule(
            seed=0,
            events=(
                FaultEvent(
                    kind=ADC_DRIFT, at_index=1, magnitude=2.0, duration=2
                ),
            ),
        )
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=1, max_wait_s=0.0),
            n_workers=1,
            chaos=ChaosController(schedule),
        )
        with server:
            results = await_results(
                [server.submit("m", x) for x in serve_batches()]
            )
        differs = [
            not np.array_equal(results[i].output, oracle[i])
            for i in range(len(oracle))
        ]
        assert differs == [False, True, True, False, False, False]

    def test_shutdown_mid_recovery_drains_deterministically(self):
        """Regression: a cancelling shutdown racing a failover must not
        strand the displaced batch or orphan worker threads.

        The recovery hook blocks the worker mid-failover; ``stop``
        closes the queue while it is blocked; on release, ``requeue``
        refuses (cancelling shutdown) and the worker completes the
        batch as CANCELLED itself — nothing is left behind
        ``drain_remaining``, and every worker joins.
        """
        recovery_started = threading.Event()
        release = threading.Event()

        def hook(record):
            recovery_started.set()
            assert release.wait(DEADLINE)

        model = conv_model()
        registry = ModelRegistry()
        registry.register("m", model, shards=2, shard_input_shape=INPUT_SHAPE)
        schedule = FaultSchedule(
            seed=0, events=(FaultEvent(kind=SHARD_DEATH, shard=0, at_index=0),)
        )
        controller = ChaosController(
            schedule, input_shape=INPUT_SHAPE, recovery_hook=hook
        )
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=1, max_wait_s=0.0),
            n_workers=1,
            chaos=controller,
        )
        server.start()
        workers = list(server._workers)
        handle = server.submit("m", serve_batches(1)[0])
        assert recovery_started.wait(DEADLINE)
        stopper = threading.Thread(
            target=lambda: server.stop(drain=False, timeout=DEADLINE)
        )
        stopper.start()
        # Event-ordered, not time-ordered: wait on the queue's condition
        # variable until stop() has actually closed it, then release the
        # blocked failover.
        assert server.queue.wait_closed(DEADLINE)
        release.set()
        stopper.join(DEADLINE)
        assert not stopper.is_alive()
        result = handle.result(timeout=DEADLINE)
        assert result.status is RequestStatus.CANCELLED
        for worker in workers:
            worker.join(DEADLINE)
            assert not worker.is_alive(), "orphaned worker thread"
        # The recovery record accounts the displaced batch as dropped.
        assert server.recoveries[0].dropped == (result.request_id,)
        assert server.recoveries[0].replayed == ()


# ----------------------------------------------------------------------
# Campaign study
# ----------------------------------------------------------------------
class TestChaosStudy:
    def test_fast_study_invariants(self):
        from repro.experiments import chaos_study

        config = chaos_study.ChaosStudyConfig(
            image_hw=8,
            channels=(4, 6),
            num_classes=4,
            n_batches=4,
            batch_size=2,
            n_campaigns=2,
            corners=(
                (BITLINE_NOISE, 0.0),
                (BITLINE_NOISE, 2.0),
                (ADC_DRIFT, 2.0),
            ),
        )
        result = chaos_study.run(config)
        assert len(result.campaigns) == 2
        for point in result.campaigns:
            # Single death, two shards, no drop budget: everything is
            # replayed and delivered, bitwise.
            assert point.availability == 1.0
            assert point.dropped == 0
            assert point.delivered_bitwise
            assert point.recovery_ms >= 0.0
        corners = {(p.kind, p.magnitude): p for p in result.corners}
        zero = corners[(BITLINE_NOISE, 0.0)]
        assert zero.bitwise_identical and zero.mean_rel_err == 0.0
        noisy = corners[(BITLINE_NOISE, 2.0)]
        assert not noisy.bitwise_identical and noisy.mean_rel_err > 0.0
        drift = corners[(ADC_DRIFT, 2.0)]
        assert not drift.bitwise_identical
        # Table plumbing stays aligned with the dataclasses.
        assert len(result.campaign_rows()) == 2
        assert len(result.corner_rows()) == 3
        summary = dict(result.recovery_summary())
        assert summary["availability_mean"] == 1.0
