"""Tests for the DAG plan IR: the full model zoo through the runtime.

The load-bearing guarantees:

* **zoo identity** — `resnet8`, `resnet18` and `mobilenet` (residual
  shortcuts, grouped/depthwise convolutions) compile and run **bitwise
  identical** to `reference_forward`, under noise-free and noisy
  configs, and the identity survives sharding (n in {2, 4}), pipelined
  streams, and a snapshot round trip;
* **typed compile-time failure** — a composite that overrides
  ``forward`` without declaring its dataflow raises
  :class:`UnsupportedModuleError` (a :class:`CompileError`, itself a
  ``TypeError``) naming the offending module at *compile* time, on both
  the compiled and reference paths;
* **grouped convolution semantics** — `reference_cim_conv2d(groups=…)`
  equals the float `nn.functional` grouped convolution exactly in the
  noise-free integer corner, and the compiled per-group engines equal
  the reference bit for bit while sharing the engine cache;
* **DAG-aware sharding** — residual diamonds are atomic (single-edge
  frontier cuts only), and an illegal boundary is rejected.
"""

import numpy as np
import pytest

from repro import nn
from repro.cim import (
    AdcSpec,
    BitlineModel,
    MacroConfig,
    cim_conv2d,
    reference_cim_conv2d,
)
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.models.mobilenet import mobilenet
from repro.models.resnet import BasicBlock, resnet18, resnet8
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.runtime import (
    ArtifactStore,
    CompileError,
    EngineCache,
    RuntimeConfig,
    UnsupportedModuleError,
    compile_model,
    fold_batchnorm,
    load,
    plan_shards,
    reference_forward,
    save,
    shard,
    stream_rng,
)
from repro.runtime.sharded import ShardedModel

HW = 8  # input images are (3, HW, HW); zoo models are width-reduced


def zoo_model(name, seed=0):
    builder = {"resnet8": resnet8, "resnet18": resnet18, "mobilenet": mobilenet}[
        name
    ]
    model = builder(
        num_classes=4, width_mult=0.125, rng=np.random.default_rng(seed)
    )
    model.eval()
    fold_batchnorm(model)
    return model


# resnet18 is the biggest graph and its residual topology is already
# exercised by resnet8; keep it to the full-matrix lane (-m slow) and run
# mobilenet (grouped conv) + resnet8 (residual) in the fast lane.
ZOO = [
    "mobilenet",
    pytest.param("resnet18", marks=pytest.mark.slow),
    "resnet8",
]


def zoo_input(n=2, seed=1):
    return np.random.default_rng(seed).normal(size=(n, 3, HW, HW))


def noisy_runtime_config(sigma=0.4):
    return RuntimeConfig(
        rom_config=MacroConfig(
            cell=ROM_1T, bitline=BitlineModel(noise_sigma_counts=sigma)
        ),
        sram_config=MacroConfig(
            cell=SRAM_CIM_6T, bitline=BitlineModel(noise_sigma_counts=sigma)
        ),
    )


# ----------------------------------------------------------------------
# Zoo identity: compiled == reference, through every execution path
# ----------------------------------------------------------------------
class TestZooIdentity:
    @pytest.mark.parametrize("noisy", [False, True], ids=["clean", "noisy"])
    @pytest.mark.parametrize("name", ZOO)
    def test_compiled_matches_reference(self, name, noisy):
        model = zoo_model(name)
        config = noisy_runtime_config() if noisy else RuntimeConfig()
        compiled = compile_model(model, config, cache=EngineCache())
        x = zoo_input()
        out_c, stats_c = compiled.run(x, rng=np.random.default_rng(9))
        out_r, stats_r = reference_forward(
            model,
            x,
            rom_config=config.resolved_rom(),
            sram_config=config.resolved_sram(),
            rng=np.random.default_rng(9),
        )
        assert np.array_equal(out_c, out_r)
        assert stats_c == stats_r

    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("name", ZOO)
    def test_sharded_matches_unsharded(self, name, n_shards):
        compiled = compile_model(zoo_model(name), cache=EngineCache())
        x = zoo_input()
        expected, expected_stats = compiled.run(x, rng=np.random.default_rng(3))
        sharded = shard(compiled, n_shards, input_shape=(1, 3, HW, HW))
        got, got_stats = sharded.run(x, rng=np.random.default_rng(3))
        assert np.array_equal(expected, got)
        assert got_stats.macs == expected_stats.macs
        assert got_stats.link_bits > 0

    @pytest.mark.parametrize("name", ZOO)
    def test_pipelined_stream_replays_bitwise(self, name):
        compiled = compile_model(
            zoo_model(name), noisy_runtime_config(), cache=EngineCache()
        )
        sharded = shard(compiled, 4, input_shape=(1, 3, HW, HW))
        batches = [zoo_input(seed=50 + i) for i in range(3)]
        result = sharded.run_stream(batches, seed=7)
        for i, batch in enumerate(batches):
            expected, _ = compiled.run(batch, rng=stream_rng(7, i))
            assert np.array_equal(result.outputs[i], expected)

    @pytest.mark.parametrize("name", ZOO)
    def test_snapshot_round_trip(self, name, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        compiled = compile_model(
            zoo_model(name), noisy_runtime_config(), cache=EngineCache()
        )
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        x = zoo_input()
        expected, expected_stats = compiled.run(x, rng=np.random.default_rng(5))
        restored, restored_stats = loaded.run(x, rng=np.random.default_rng(5))
        assert np.array_equal(expected, restored)
        assert expected_stats == restored_stats

    def test_sharded_zoo_snapshot_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        compiled = compile_model(
            zoo_model("resnet8"), cache=EngineCache(), shards=2
        )
        key = save(compiled, store)
        loaded = load(store, key, cache=EngineCache())
        assert isinstance(loaded, ShardedModel)
        x = zoo_input()
        expected, _ = compiled.run(x, rng=np.random.default_rng(5))
        restored, _ = loaded.run(x, rng=np.random.default_rng(5))
        assert np.array_equal(expected, restored)


# ----------------------------------------------------------------------
# Typed compile-time failure for undeclared custom dataflow
# ----------------------------------------------------------------------
class _ScaledBlock(nn.Module):
    """Overrides forward with non-serial dataflow, declares no plan."""

    def __init__(self):
        super().__init__()
        self.act = nn.ReLU()

    def forward(self, x):
        return self.act(x) * 2.0


class TestUnsupportedComposite:
    def test_compile_raises_typed_error_with_qualified_name(self):
        model = nn.Sequential(nn.ReLU(), _ScaledBlock())
        with pytest.raises(UnsupportedModuleError, match="plan_forward") as info:
            compile_model(model, RuntimeConfig(), cache=EngineCache())
        assert info.value.qualified_name == "1"
        assert "_ScaledBlock" in str(info.value)
        # The hierarchy: UnsupportedModuleError < CompileError < TypeError.
        assert isinstance(info.value, CompileError)
        assert isinstance(info.value, TypeError)

    def test_error_raised_before_any_execution(self):
        # Compile time, not a mid-run reshape crash: no run() needed.
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng), _ScaledBlock()
        )
        with pytest.raises(UnsupportedModuleError):
            compile_model(model, RuntimeConfig(), cache=EngineCache())

    def test_reference_walker_raises_same_typed_error(self):
        model = nn.Sequential(nn.ReLU(), _ScaledBlock())
        with pytest.raises(UnsupportedModuleError, match="plan_forward") as info:
            reference_forward(model, zoo_input())
        # The walker names the offending module like the compiler does.
        assert info.value.qualified_name == "1"

    def test_plan_serial_marker_opts_into_chaining(self):
        class Declared(nn.Module):
            plan_forward = nn.plan_serial

            def __init__(self, rng):
                super().__init__()
                self.conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
                self.act = nn.ReLU()

            def forward(self, x):
                return self.act(self.conv(x))

        model = nn.Sequential(Declared(np.random.default_rng(0)))
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        x = zoo_input()
        out_c, _ = compiled.run(x)
        out_r, _ = reference_forward(model, x)
        assert np.array_equal(out_c, out_r)

    def test_dead_plan_node_rejected(self):
        class Dropper(nn.Module):
            def __init__(self, rng):
                super().__init__()
                self.used = nn.ReLU()
                self.wasted = nn.Conv2d(3, 4, 3, padding=1, rng=rng)

            def forward(self, x):
                return self.used(x)

            def plan_forward(self, builder, x):
                builder.child(self.wasted, "wasted", x)  # output discarded
                return builder.child(self.used, "used", x)

        with pytest.raises(CompileError, match="dead"):
            compile_model(
                nn.Sequential(Dropper(np.random.default_rng(0))),
                RuntimeConfig(),
                cache=EngineCache(),
            )


# ----------------------------------------------------------------------
# Grouped convolution semantics
# ----------------------------------------------------------------------
class TestGroupedConv:
    def _integer_corner(self, groups, channels=4, hw=6):
        """Weights/activations that quantize with scale 1 (exact codes)."""
        rng = np.random.default_rng(0)
        icg = channels // groups
        w = rng.integers(-127, 128, size=(channels, icg, 3, 3)).astype(float)
        w[:, 0, 0, 0] = 127.0  # per-output-channel quantization scale = 1
        x = rng.integers(0, 256, size=(2, channels, hw, hw)).astype(float)
        x[0, :, 0, 0] = 255.0  # per-group activation scale = 1
        return x, w

    @pytest.mark.parametrize("groups", [2, 4])
    def test_reference_matches_functional_in_noise_free_corner(self, groups):
        """With exact integer codes and a lossless 8-bit ADC the CiM path
        *is* integer convolution: it must equal nn.functional's grouped
        conv bit for bit, not just approximately."""
        x, w = self._integer_corner(groups)
        config = MacroConfig(adc=AdcSpec(bits=8))
        out, stats = reference_cim_conv2d(
            x, w, padding=1, config=config, groups=groups
        )
        icg, ocg = 4 // groups, 4 // groups
        expected = np.concatenate(
            [
                F.conv2d(
                    Tensor(x[:, g * icg : (g + 1) * icg]),
                    Tensor(w[g * ocg : (g + 1) * ocg]),
                    padding=1,
                ).data
                for g in range(groups)
            ],
            axis=1,
        )
        assert np.array_equal(out, expected)
        assert stats.macs == 2 * 4 * 6 * 6 * icg * 9  # N*OC*P*ICG*K

    def test_groups_must_divide_channels(self):
        x = np.zeros((1, 4, 6, 6))
        w = np.zeros((3, 2, 3, 3))
        with pytest.raises(ValueError, match="groups"):
            reference_cim_conv2d(x, w, groups=2)

    @pytest.mark.parametrize("groups", [2, 4])
    def test_functional_shim_bitwise_vs_reference(self, groups):
        rng = np.random.default_rng(3)
        x = rng.random((2, 4, 6, 6))
        w = rng.normal(size=(8, 4 // groups, 3, 3))
        y_ref, s_ref = reference_cim_conv2d(x, w, padding=1, groups=groups)
        y_new, s_new = cim_conv2d(
            x, w, padding=1, groups=groups, cache=EngineCache()
        )
        assert np.array_equal(y_ref, y_new)
        assert s_ref == s_new

    def test_noisy_grouped_conv_bitwise_with_same_rng(self):
        config = MacroConfig(bitline=BitlineModel(noise_sigma_counts=1.0))
        rng = np.random.default_rng(4)
        x = rng.random((2, 4, 6, 6))
        w = rng.normal(size=(4, 1, 3, 3))  # depthwise
        y_ref, _ = reference_cim_conv2d(
            x, w, padding=1, config=config, groups=4, rng=np.random.default_rng(8)
        )
        y_new, _ = cim_conv2d(
            x, w, padding=1, config=config, groups=4,
            rng=np.random.default_rng(8), cache=EngineCache(),
        )
        assert np.array_equal(y_ref, y_new)

    def test_per_group_engines_share_cache_across_compiles(self):
        # One cache entry per group: size the LRU for the whole zoo model
        # (the compiled model's slots hold strong refs either way).
        cache = EngineCache(capacity=512)
        model = zoo_model("mobilenet")
        first = compile_model(model, RuntimeConfig(), cache=cache)
        programmed = cache.stats.programmed
        second = compile_model(model, RuntimeConfig(), cache=cache)
        assert cache.stats.programmed == programmed  # all groups reused
        ours = first.programmed_engines()
        theirs = second.programmed_engines()
        assert set(ours) == set(theirs)
        for layer_id, engine in ours.items():
            assert engine is theirs[layer_id]
        # Depthwise layers lower to one slot per group.
        assert any("::g" in layer_id for layer_id in ours)

    def test_grouped_slots_refresh_on_weight_update(self):
        model = zoo_model("mobilenet")
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        x = zoo_input()
        before, _ = compiled.run(x)
        conv = model.features[1].depthwise.conv
        conv.weight.data = conv.weight.data + 0.25
        changed = compiled.ensure_fresh()
        assert changed == conv.groups  # every group slot re-fingerprints
        after, _ = compiled.run(x)
        expected, _ = reference_forward(model, x)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, expected)


# ----------------------------------------------------------------------
# DAG-aware sharding
# ----------------------------------------------------------------------
class TestDagSharding:
    def test_residual_diamond_is_atomic(self):
        compiled = compile_model(zoo_model("resnet8"), cache=EngineCache())
        plan = plan_shards(compiled, 4)
        nodes = compiled._nodes
        # Every add node (the residual fan-in) sits in the same segment
        # as the convs of its diamond — no segment boundary splits one.
        for segment in plan.segments:
            indices = set(segment.step_indices)
            for i in segment.step_indices:
                if nodes[i].op.kind == "add":
                    assert all(j in indices for j in nodes[i].inputs)

    def test_too_many_shards_counts_diamonds_not_convs(self):
        # resnet8 has 5 weight-anchored blocks (stem, 3 diamonds, fc):
        # 11 conv/linear layers do NOT make 11 cuttable blocks.
        compiled = compile_model(zoo_model("resnet8"), cache=EngineCache())
        assert compiled.n_weight_layers >= 8
        plan_shards(compiled, 5)
        with pytest.raises(ValueError, match="weight-anchored blocks"):
            plan_shards(compiled, 6)

    def test_illegal_boundary_rejected(self):
        from repro.runtime.sharded import ShardPlan, ShardSegment

        compiled = compile_model(zoo_model("resnet8"), cache=EngineCache())
        nodes = compiled._nodes
        add_index = next(
            i for i, node in enumerate(nodes) if node.op.kind == "add"
        )
        # Cut straight through the first residual diamond.
        first = tuple(range(add_index))
        rest = tuple(range(add_index, len(nodes)))
        plan = ShardPlan(
            n_shards=2,
            segments=(
                ShardSegment(0, first, (), 0.0, 0.0, 0.0),
                ShardSegment(1, rest, (), 0.0, 0.0, 0.0),
            ),
        )
        with pytest.raises(ValueError, match="illegal shard boundary"):
            shard(compiled, 2, plan=plan)

    def test_plan_spec_topology(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            BasicBlock(4, 4, rng=rng), nn.Flatten(), nn.Linear(4 * HW * HW, 2, rng=rng)
        )
        model.eval()
        fold_batchnorm(model)
        compiled = compile_model(model, RuntimeConfig(), cache=EngineCache())
        spec = compiled.plan_spec()
        kinds = [node["op"] for node in spec["nodes"]]
        assert "add" in kinds
        assert spec["output"] == len(spec["nodes"]) - 1
        add = next(n for n in spec["nodes"] if n["op"] == "add")
        assert len(add["inputs"]) == 2
        # The shortcut consumes the same value as conv1: real fan-out.
        consumed = [j for n in spec["nodes"] for j in n["inputs"]]
        assert any(consumed.count(j) >= 2 for j in set(consumed))
