"""Tests for synthetic datasets and evaluation metrics."""

import numpy as np
import pytest

from repro.datasets import (
    DetectionTaskConfig,
    MotifBank,
    SyntheticDetectionTask,
    SyntheticTask,
    SyntheticTaskConfig,
    TransferSuite,
    classification_suite,
    detection_suite,
)
from repro.eval import (
    accuracy,
    average_precision,
    confusion_matrix,
    iou,
    iou_matrix,
    mean_average_precision,
    nms,
    top_k_accuracy,
)
from repro.models.yolo import Detection


class TestMotifBank:
    def test_shapes(self):
        bank = MotifBank(n_motifs=6, patch=5, channels=3, seed=0)
        assert bank.motifs.shape == (6, 3, 5, 5)
        assert len(bank) == 6

    def test_normalized(self):
        bank = MotifBank(seed=0)
        assert np.abs(bank.motifs).max() <= 1.0 + 1e-9

    def test_deterministic(self):
        a = MotifBank(seed=5).motifs
        b = MotifBank(seed=5).motifs
        np.testing.assert_array_equal(a, b)

    def test_too_few_motifs(self):
        with pytest.raises(ValueError):
            MotifBank(n_motifs=1)


class TestSyntheticTask:
    def test_sample_shapes_and_labels(self):
        task = SyntheticTask(SyntheticTaskConfig(num_classes=5, image_size=16))
        x, y = task.sample(20)
        assert x.shape == (20, 3, 16, 16)
        assert y.shape == (20,)
        assert y.min() >= 0 and y.max() < 5

    def test_values_bounded(self):
        task = SyntheticTask(SyntheticTaskConfig())
        x, _ = task.sample(10)
        assert np.abs(x).max() <= 1.0

    def test_deterministic_with_rng(self):
        task = SyntheticTask(SyntheticTaskConfig(seed=3))
        a, ya = task.sample(8, np.random.default_rng(0))
        b, yb = task.sample(8, np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_splits_are_disjoint_draws(self):
        task = SyntheticTask(SyntheticTaskConfig(seed=1))
        x_train, _, x_test, _ = task.splits(16, 16)
        assert not np.array_equal(x_train[:16], x_test[:16])

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticTaskConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticTaskConfig(domain_shift=1.5)
        with pytest.raises(ValueError):
            SyntheticTaskConfig(image_size=4)

    def test_classes_statistically_distinct(self):
        task = SyntheticTask(SyntheticTaskConfig(num_classes=2, noise=0.1, seed=0))
        x, y = task.sample(100, np.random.default_rng(0))
        mean0 = x[y == 0].mean(axis=0)
        mean1 = x[y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).max() > 0.1


class TestTransferSuite:
    def test_targets_present(self):
        suite = classification_suite(seed=0)
        assert set(suite.targets) == {"near", "simple", "medium", "far"}

    def test_source_splits_shapes(self):
        suite = classification_suite(seed=0)
        splits = suite.source_splits(n_train=32, n_test=16)
        assert splits.x_train.shape[0] == 32
        assert splits.x_test.shape[0] == 16
        assert splits.num_classes == 12

    def test_unknown_target(self):
        suite = classification_suite(seed=0)
        with pytest.raises(KeyError):
            suite.target_splits("imagenet")

    def test_targets_share_motif_bank(self):
        suite = classification_suite(seed=0)
        assert suite.targets["near"].bank is suite.source.bank

    def test_domain_shift_ordering(self):
        suite = classification_suite(seed=0)
        shifts = {
            name: task.config.domain_shift for name, task in suite.targets.items()
        }
        assert shifts["far"] > shifts["medium"] > shifts["near"]


class TestDetectionTask:
    def test_sample_contract(self):
        task = SyntheticDetectionTask(DetectionTaskConfig(image_size=32))
        images, boxes, labels = task.sample(6, np.random.default_rng(0))
        assert images.shape == (6, 3, 32, 32)
        assert len(boxes) == len(labels) == 6
        for box_arr, label_arr in zip(boxes, labels):
            assert box_arr.shape[1] == 4
            assert len(box_arr) == len(label_arr)
            assert (box_arr[:, 2] > box_arr[:, 0]).all()
            assert (box_arr >= 0).all() and (box_arr <= 1).all()

    def test_objects_brighter_than_background(self):
        task = SyntheticDetectionTask(DetectionTaskConfig(image_size=32, noise=0.05))
        images, boxes, _ = task.sample(4, np.random.default_rng(0))
        size = 32
        for image, box_arr in zip(images, boxes):
            x1, y1, x2, y2 = (box_arr[0] * size).astype(int)
            inside = np.abs(image[:, y1:y2, x1:x2]).mean()
            outside = np.abs(image).mean()
            assert inside > outside

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DetectionTaskConfig(num_classes=0)
        with pytest.raises(ValueError):
            DetectionTaskConfig(max_objects=0)
        with pytest.raises(ValueError):
            DetectionTaskConfig(min_size_frac=0.5, max_size_frac=0.4)

    def test_suite_contains_migrations(self):
        suite = detection_suite(seed=0)
        assert set(suite) == {"source", "pedestrian", "traffic", "voc"}


class TestClassificationMetrics:
    def test_accuracy_from_ids(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=2) == pytest.approx(0.5)

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_confusion_matrix(self):
        matrix = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])


class TestDetectionMetrics:
    def test_iou_identical(self):
        box = np.array([0.1, 0.1, 0.5, 0.5])
        assert iou(box, box) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert iou(np.array([0, 0, 0.2, 0.2]), np.array([0.5, 0.5, 1, 1])) == 0.0

    def test_iou_half_overlap(self):
        a = np.array([0.0, 0.0, 1.0, 1.0])
        b = np.array([0.5, 0.0, 1.5, 1.0])
        assert iou(a, b) == pytest.approx(1 / 3)

    def test_iou_matrix_matches_scalar(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 0.5, size=(4, 2))
        boxes = np.concatenate([pts, pts + rng.uniform(0.1, 0.5, size=(4, 2))], axis=1)
        matrix = iou_matrix(boxes, boxes)
        for i in range(4):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(iou(boxes[i], boxes[j]))

    def _det(self, cls, score, x1, y1, x2, y2):
        return Detection(cls, score, x1, y1, x2, y2)

    def test_nms_suppresses_overlapping(self):
        detections = [
            self._det(0, 0.9, 0.1, 0.1, 0.5, 0.5),
            self._det(0, 0.8, 0.12, 0.12, 0.52, 0.52),
            self._det(0, 0.7, 0.6, 0.6, 0.9, 0.9),
        ]
        kept = nms(detections, 0.5)
        assert len(kept) == 2
        assert kept[0].score == pytest.approx(0.9)

    def test_nms_keeps_different_classes(self):
        detections = [
            self._det(0, 0.9, 0.1, 0.1, 0.5, 0.5),
            self._det(1, 0.8, 0.1, 0.1, 0.5, 0.5),
        ]
        assert len(nms(detections, 0.5)) == 2

    def test_nms_invalid_threshold(self):
        with pytest.raises(ValueError):
            nms([], 1.5)

    def test_perfect_detection_map_is_one(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4]]), np.array([[0.5, 0.5, 0.9, 0.9]])]
        gt_labels = [np.array([0]), np.array([1])]
        detections = [
            [self._det(0, 0.95, 0.1, 0.1, 0.4, 0.4)],
            [self._det(1, 0.9, 0.5, 0.5, 0.9, 0.9)],
        ]
        assert mean_average_precision(detections, gt_boxes, gt_labels, 2) == pytest.approx(1.0)

    def test_wrong_class_scores_zero(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4]])]
        gt_labels = [np.array([0])]
        detections = [[self._det(1, 0.95, 0.1, 0.1, 0.4, 0.4)]]
        ap = average_precision(
            detections[0], [0], gt_boxes, gt_labels, class_id=0
        )
        assert ap == 0.0

    def test_duplicate_detections_penalized(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4]])]
        gt_labels = [np.array([0])]
        once = [[self._det(0, 0.9, 0.1, 0.1, 0.4, 0.4)]]
        twice = [
            [
                self._det(0, 0.9, 0.1, 0.1, 0.4, 0.4),
                self._det(0, 0.8, 0.11, 0.11, 0.41, 0.41),
            ]
        ]
        ap_once = mean_average_precision(once, gt_boxes, gt_labels, 1)
        ap_twice = mean_average_precision(twice, gt_boxes, gt_labels, 1)
        assert ap_once >= ap_twice

    def test_map_mismatched_lengths(self):
        with pytest.raises(ValueError):
            mean_average_precision([[]], [np.zeros((0, 4))] * 2, [np.zeros(0)] * 2, 1)

    def test_map_no_detections_zero(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.4]])]
        gt_labels = [np.array([0])]
        assert mean_average_precision([[]], gt_boxes, gt_labels, 1) == 0.0
