"""Unit tests for optimizers, initializers, and data loading."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(11)


def _quadratic_param():
    return Tensor(np.array([5.0, -3.0]), requires_grad=True)


def _step_quadratic(opt, param, steps):
    for _ in range(steps):
        opt.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        opt.step()
    return param


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        _step_quadratic(nn.SGD([p], lr=0.1), p, 100)
        assert np.abs(p.data).max() < 1e-6

    def test_momentum_accelerates(self):
        p_plain = _quadratic_param()
        p_mom = _quadratic_param()
        _step_quadratic(nn.SGD([p_plain], lr=0.01), p_plain, 30)
        _step_quadratic(nn.SGD([p_mom], lr=0.01, momentum=0.9), p_mom, 30)
        assert np.abs(p_mom.data).sum() < np.abs(p_plain.data).sum()

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.1, nesterov=True)

    def test_frozen_params_not_updated(self):
        p = _quadratic_param()
        frozen = Tensor(np.array([2.0]), requires_grad=False)
        opt = nn.SGD([p, frozen], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        np.testing.assert_array_equal(frozen.data, [2.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([_quadratic_param()], lr=0.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param()
        _step_quadratic(nn.Adam([p], lr=0.3), p, 200)
        assert np.abs(p.data).max() < 1e-3

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([_quadratic_param()], betas=(1.0, 0.999))

    def test_skips_params_without_grad(self):
        p = _quadratic_param()
        q = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.Adam([p, q], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        np.testing.assert_array_equal(q.data, [1.0])

    def test_trains_small_network_to_fit(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(
            nn.Linear(4, 16, rng=rng), nn.Tanh(), nn.Linear(16, 2, rng=rng)
        )
        X = rng.normal(size=(32, 4))
        y = (X[:, 0] > 0).astype(int)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        for _ in range(150):
            opt.zero_grad()
            loss = nn.cross_entropy(model(Tensor(X)), y)
            loss.backward()
            opt.step()
        preds = model(Tensor(X)).data.argmax(axis=1)
        assert (preds == y).mean() > 0.95


class TestInit:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128, 3, 3), rng)
        expected_std = np.sqrt(2.0 / (128 * 9))
        assert abs(w.std() - expected_std) / expected_std < 0.05

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 64), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((32, 16), rng)
        bound = np.sqrt(6.0 / 48)
        assert np.abs(w).max() <= bound

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((3,), np.random.default_rng(0))

    def test_zeros_ones(self):
        assert init.zeros((2, 2)).sum() == 0
        assert init.ones((2, 2)).sum() == 4


class TestData:
    def test_tensor_dataset_indexing(self):
        X = np.arange(10).reshape(5, 2)
        y = np.arange(5)
        ds = nn.TensorDataset(X, y)
        assert len(ds) == 5
        xi, yi = ds[2]
        np.testing.assert_array_equal(xi, [4, 5])
        assert yi == 2

    def test_tensor_dataset_single_array(self):
        ds = nn.TensorDataset(np.arange(4))
        assert ds[1] == 1

    def test_tensor_dataset_mismatched_lengths(self):
        with pytest.raises(ValueError):
            nn.TensorDataset(np.zeros(3), np.zeros(4))

    def test_tensor_dataset_empty_args(self):
        with pytest.raises(ValueError):
            nn.TensorDataset()

    def test_loader_batch_shapes(self):
        ds = nn.TensorDataset(np.zeros((10, 3)), np.zeros(10))
        loader = nn.DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 3)
        assert batches[-1][0].shape == (2, 3)

    def test_loader_drop_last(self):
        ds = nn.TensorDataset(np.zeros((10, 3)))
        loader = nn.DataLoader(ds, batch_size=4, drop_last=True)
        assert len(loader) == 2
        assert all(b.shape[0] == 4 for b in loader)

    def test_loader_shuffle_deterministic_with_seed(self):
        ds = nn.TensorDataset(np.arange(20))
        a = [b.tolist() for b in nn.DataLoader(ds, batch_size=5, shuffle=True, seed=3)]
        b = [b.tolist() for b in nn.DataLoader(ds, batch_size=5, shuffle=True, seed=3)]
        assert a == b

    def test_loader_shuffle_covers_all(self):
        ds = nn.TensorDataset(np.arange(20))
        seen = np.concatenate(list(nn.DataLoader(ds, batch_size=6, shuffle=True, seed=0)))
        assert sorted(seen.tolist()) == list(range(20))

    def test_loader_invalid_batch_size(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.TensorDataset(np.zeros(3)), batch_size=0)
