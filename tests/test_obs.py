"""Tests for the observability subsystem (repro.obs).

The load-bearing guarantees:

* spans nest per thread and collect thread-safely into one tracer;
* tracing is off by default, and a disabled tracer changes nothing —
  ``CompiledModel.run`` outputs are bitwise identical traced or not;
* the Chrome exporter emits schema-valid trace-event JSON with one
  wall track per thread plus the synthetic simulated-chip track;
* the metrics registry renders parseable Prometheus text exposition
  with correct cumulative-histogram semantics;
* ``fraction_of_stats`` enumerates ``dataclasses.fields(MacroStats)``,
  so a newly added field scales (or is explicitly shared) — the drift
  guard here fails if one is silently dropped;
* the profiler's per-node energy column sums exactly to the run's
  ``MacroStats.total_energy_fj``.
"""

import dataclasses
import json
import logging
import threading

import numpy as np
import pytest

from repro import nn
from repro.cim.macro import MacroStats
from repro.obs import (
    LatencySummary,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    collect_cache,
    collect_server,
    export_chrome,
    export_prometheus,
    percentile,
    trace,
)
from repro.obs import log as obs_log
from repro.obs import profiler
from repro.obs.chrome import CHIP_PID, WALL_PID
from repro.runtime import EngineCache, compile_model
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    ModelRegistry,
    ServerMetrics,
    fraction_of_stats,
)
from repro.serve.metrics import SHARED_STAT_FIELDS

from .helpers import await_results

IN_FEATURES = 32


def mlp(seed=0, hidden=16, num_classes=4):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, hidden, rng=rng),
        nn.ReLU(),
        nn.Linear(hidden, num_classes, rng=rng),
    )


def batch(n=4, seed=1):
    return np.random.default_rng(seed).normal(size=(n, IN_FEATURES))


# ----------------------------------------------------------------------
# Tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_interval_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", "test", layer="fc") as span:
            span.set("n", 3)
        (record,) = tracer.spans()
        assert record.name == "work"
        assert record.category == "test"
        assert record.attrs == {"layer": "fc", "n": 3}
        assert record.t1 >= record.t0
        assert record.parent_id is None

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        inner, sibling, outer = tracer.spans()
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_retroactive_record(self):
        tracer = Tracer()
        record = tracer.record("queued", 1.0, 1.5, "serve", tenant="a")
        assert record.wall_s == pytest.approx(0.5)
        assert record.parent_id is None
        assert tracer.spans() == [record]

    def test_record_thread_name_override(self):
        tracer = Tracer()
        record = tracer.record("q", 0.0, 1.0, thread_name="virtual")
        assert record.thread_name == "virtual"

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_clear_resets(self):
        tracer = Tracer(max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_invalid_max_spans(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_chip_ns_property(self):
        tracer = Tracer()
        with tracer.span("a", chip_ns=125.0):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.chip_ns == 125.0
        assert b.chip_ns == 0.0

    def test_threads_trace_concurrently(self):
        """N threads x M nested pairs each: all spans land, and every
        thread's parentage chain stays within its own thread."""
        tracer = Tracer()
        n_threads, n_spans = 8, 50

        def work(t):
            for i in range(n_spans):
                with tracer.span(f"outer-{t}-{i}"):
                    with tracer.span(f"inner-{t}-{i}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == n_threads * n_spans * 2
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert by_id[span.parent_id].thread_id == span.thread_id


class TestInstall:
    def test_disabled_by_default(self):
        assert trace.current() is None
        assert not trace.enabled()

    def test_tracing_scope_restores(self):
        with trace.tracing() as tracer:
            assert trace.current() is tracer
            assert trace.enabled()
        assert trace.current() is None

    def test_tracing_restores_previous(self):
        outer = trace.install()
        try:
            with trace.tracing() as inner:
                assert trace.current() is inner
            assert trace.current() is outer
        finally:
            trace.uninstall()

    def test_install_uninstall(self):
        tracer = trace.install()
        assert trace.current() is tracer
        assert trace.uninstall() is tracer
        assert trace.current() is None

    def test_maybe_span_noop_when_disabled(self):
        with trace.maybe_span("x") as span:
            assert span is None

    def test_maybe_span_records_when_enabled(self):
        with trace.tracing() as tracer:
            with trace.maybe_span("x", "cat") as span:
                assert span is not None
                span.set("k", 1)
        (record,) = tracer.spans()
        assert record.name == "x"
        assert record.attrs["k"] == 1


# ----------------------------------------------------------------------
# Chrome exporter
# ----------------------------------------------------------------------
class TestChromeExport:
    def trace_with_spans(self):
        tracer = Tracer()
        with tracer.span("run", "runtime", chip_total_ns=100.0):
            with tracer.span("conv", "plan", chip_ns=60.0):
                pass
            with tracer.span("fc", "plan", chip_ns=40.0):
                pass
        return tracer

    def test_schema(self):
        doc = chrome_trace(self.trace_with_spans())
        assert set(doc) == {"traceEvents"}
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "name" in event
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_process_and_thread_metadata(self):
        doc = chrome_trace(self.trace_with_spans())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "process_name"
        }
        assert (WALL_PID, "wall clock") in names
        assert (CHIP_PID, "simulated chip") in names
        threads = [e for e in meta if e["name"] == "thread_name"]
        assert any(e["pid"] == WALL_PID for e in threads)
        assert any(
            e["pid"] == CHIP_PID and e["args"]["name"].endswith("(chip)")
            for e in threads
        )

    def test_chip_track_lays_spans_end_to_end(self):
        doc = chrome_trace(self.trace_with_spans())
        chip = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == CHIP_PID
        ]
        # Only the leaf spans carry chip_ns (the parent carries
        # chip_total_ns precisely so the chip track does not double count).
        assert [e["name"] for e in chip] == ["conv", "fc"]
        assert chip[0]["ts"] == 0.0
        assert chip[0]["dur"] == pytest.approx(0.06)  # 60 ns -> 0.06 us
        assert chip[1]["ts"] == pytest.approx(chip[0]["dur"])
        total_us = sum(e["dur"] for e in chip)
        assert total_us == pytest.approx(0.1)

    def test_wall_ts_relative_to_first_span(self):
        doc = chrome_trace(self.trace_with_spans())
        wall = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == WALL_PID
        ]
        assert min(e["ts"] for e in wall) == 0.0
        args = {e["name"]: e["args"] for e in wall}
        assert args["conv"]["parent_id"] == args["run"]["span_id"]

    def test_empty_tracer(self):
        doc = chrome_trace(Tracer())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_dropped_spans_noted(self):
        tracer = Tracer(max_spans=1)
        with tracer.span("kept"):
            pass
        with tracer.span("dropped"):
            pass
        doc = chrome_trace(tracer)
        labels = [
            e for e in doc["traceEvents"] if e["name"] == "process_labels"
        ]
        assert labels and "1 spans dropped" in labels[0]["args"]["labels"]

    def test_non_jsonable_attrs_coerced(self):
        tracer = Tracer()
        with tracer.span("s", n=np.int64(3), arr=(1, 2)):
            pass
        doc = chrome_trace(tracer)
        json.dumps(doc)
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["n"] == 3
        assert event["args"]["arr"] == "(1, 2)"

    def test_export_to_path_and_file(self, tmp_path):
        tracer = self.trace_with_spans()
        path = tmp_path / "trace.json"
        export_chrome(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(chrome_trace(tracer)))
        with open(tmp_path / "trace2.json", "w") as fh:
            export_chrome(tracer, fh)
        assert json.loads((tmp_path / "trace2.json").read_text()) == loaded


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsPrimitives:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total").labels()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g").labels()
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5.0

    def test_histogram_cumulative_buckets(self):
        hist = MetricsRegistry().histogram("h", buckets=(1, 2, 4)).labels()
        for value in (0.5, 1.0, 3.0, 9.0):
            hist.observe(value)
        hist.observe(2.0, count=2)
        cumulative, total, count = hist.snapshot()
        assert cumulative == [2, 4, 5]  # <=1: 2, <=2: +2, <=4: +1
        assert count == 6  # 9.0 only lands in +Inf
        assert total == pytest.approx(0.5 + 1.0 + 3.0 + 9.0 + 2 * 2.0)

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestMetricsRegistry:
    def test_redeclare_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", label_names=("k",))
        b = registry.counter("x_total", label_names=("k",))
        assert a is b

    def test_redeclare_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", label_names=("k",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok", label_names=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("ok", label_names=("__reserved",))

    def test_labels_must_match_declaration(self):
        family = MetricsRegistry().counter("x", label_names=("tenant",))
        with pytest.raises(ValueError):
            family.labels(other="a")

    def test_prometheus_text_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests.", ("code",)).labels(
            code="200"
        ).inc(3)
        registry.gauge("depth", "Queue depth.").labels().set(1.5)
        registry.histogram("lat", buckets=(1, 2)).labels().observe(1.5)
        text = registry.to_prometheus()
        assert text.endswith("\n")
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 3' in text
        assert "depth 1.5" in text
        # Cumulative buckets with the implicit +Inf == _count.
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="2"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text
        # Every sample line is "name{labels} value" with a float value.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part[0].isalpha() or name_part[0] == "_"

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x", label_names=("k",)).labels(k='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert r'x{k="a\"b\\c\nd"} 1' in text

    def test_to_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help").labels().inc(2)
        registry.histogram("h", buckets=(1,)).labels().observe(0.5)
        doc = registry.to_json()
        json.dumps(doc)
        by_name = {f["name"]: f for f in doc["metrics"]}
        assert by_name["c_total"]["samples"][0]["value"] == 2.0
        sample = by_name["h"]["samples"][0]
        assert sample["buckets"] == {"1": 1}
        assert sample["count"] == 1

    def test_export_prometheus_writes_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c_total").labels().inc()
        path = tmp_path / "out.prom"
        export_prometheus(registry, str(path))
        assert path.read_text() == registry.to_prometheus()

    def test_collect_cache_covers_every_stat_field(self):
        cache = EngineCache()
        compile_model(mlp(), cache=cache)
        registry = MetricsRegistry()
        collect_cache(cache, registry)
        text = registry.to_prometheus()
        for field in dataclasses.fields(cache.stats):
            assert f'event="{field.name}"' in text
        assert "repro_engine_cache_entries" in text


# ----------------------------------------------------------------------
# Shared stats helpers
# ----------------------------------------------------------------------
class TestStatsHelpers:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 0) == 1.0
        assert percentile([], 50) == 0.0

    def test_latency_summary(self):
        summary = LatencySummary.of([3.0, 1.0, 2.0])
        assert summary.count == 3
        assert summary.mean_s == pytest.approx(2.0)
        assert summary.p50_s == 2.0
        assert summary.p99_s == 3.0

    def test_latency_summary_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0
        assert summary.mean_s == 0.0
        assert summary.p95_s == 0.0

    def test_serve_reexports_shared_helper(self):
        # serve.metrics and loadgen dedupe onto the obs implementation.
        from repro.serve import metrics as serve_metrics

        assert serve_metrics.percentile is percentile
        assert serve_metrics.LatencySummary is LatencySummary


class TestFractionOfStats:
    def make_stats(self):
        # Distinct nonzero value per field, assigned generically so a
        # newly added MacroStats field is automatically exercised.
        values = {
            f.name: float(i + 1)
            for i, f in enumerate(dataclasses.fields(MacroStats))
        }
        return MacroStats(**values), values

    def test_every_field_scales_or_is_shared(self):
        stats, values = self.make_stats()
        half = fraction_of_stats(stats, 1, 2)
        for name, value in values.items():
            got = getattr(half, name)
            if name in SHARED_STAT_FIELDS:
                assert got == value, f"{name} is shared and must not scale"
            else:
                assert got == pytest.approx(value / 2), (
                    f"{name} must scale with the sample share"
                )

    def test_shared_fields_exist_on_macrostats(self):
        names = {f.name for f in dataclasses.fields(MacroStats)}
        assert SHARED_STAT_FIELDS <= names

    def test_full_share_is_identity(self):
        stats, values = self.make_stats()
        whole = fraction_of_stats(stats, 3, 3)
        for name, value in values.items():
            assert getattr(whole, name) == pytest.approx(value)

    def test_invalid_denominator(self):
        with pytest.raises(ValueError):
            fraction_of_stats(MacroStats(), 1, 0)


class TestSnapshotSelfDescribes:
    def test_rows_carry_uptime_and_window(self):
        metrics = ServerMetrics(window_s=12.0)
        snapshot = metrics.snapshot()
        rows = dict(snapshot.rows())
        assert rows["window_s"] == 12.0
        assert rows["uptime_s"] >= 0.0
        assert snapshot.window_s == 12.0


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_hierarchy_and_null_handler(self):
        logger = obs_log.get_logger("runtime.cache")
        assert logger.name == "repro.runtime.cache"
        assert any(
            isinstance(h, logging.NullHandler) for h in obs_log.ROOT.handlers
        )

    def test_configure_levels(self):
        previous = obs_log.ROOT.level
        try:
            obs_log.configure(0)
            obs_log.configure(1)
            assert obs_log.ROOT.level == logging.INFO
            obs_log.configure(2)
            assert obs_log.ROOT.level == logging.DEBUG
        finally:
            obs_log.ROOT.setLevel(previous)

    def test_debug_logs_flow_through_hierarchy(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            compile_model(mlp(), cache=EngineCache())
        assert any(
            record.name.startswith("repro.runtime") for record in caplog.records
        )


# ----------------------------------------------------------------------
# Traced runtime execution
# ----------------------------------------------------------------------
class TestTracedRuntime:
    def test_traced_run_bitwise_identical(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        x = batch()
        baseline, base_stats = compiled.run(x, rng=np.random.default_rng(7))
        with trace.tracing():
            traced, traced_stats = compiled.run(x, rng=np.random.default_rng(7))
        assert np.array_equal(baseline, traced)
        assert base_stats.total_energy_fj == traced_stats.total_energy_fj

    def test_run_emits_plan_spans(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        with trace.tracing() as tracer:
            _, stats = compiled.run(batch())
        spans = tracer.spans()
        run_spans = [s for s in spans if s.category == "runtime"]
        plan_spans = [s for s in spans if s.category == "plan"]
        assert len(run_spans) == 1
        assert len(plan_spans) == len(compiled._nodes)
        run = run_spans[0]
        assert all(s.parent_id == run.span_id for s in plan_spans)
        # Telescoping deltas: node energy sums exactly to the run total;
        # the parent carries chip_total_ns so the chip track of the
        # Chrome export never double counts.
        assert sum(
            s.attrs.get("energy_fj", 0.0) for s in plan_spans
        ) == pytest.approx(stats.total_energy_fj, rel=1e-9)
        assert run.attrs["chip_total_ns"] == pytest.approx(stats.latency_ns)
        assert "chip_ns" not in run.attrs
        assert {s.attrs["node_index"] for s in plan_spans} == set(
            range(len(compiled._nodes))
        )

    def test_compile_emits_phase_spans(self):
        with trace.tracing() as tracer:
            compile_model(mlp(), cache=EngineCache())
        names = {s.name for s in tracer.spans() if s.category == "compile"}
        assert {"compile", "build_plan", "validate_deployable"} <= names
        cache_spans = [s for s in tracer.spans() if s.category == "cache"]
        assert any(s.name == "engine_program" for s in cache_spans)

    def test_cache_tier_provenance(self):
        from repro.runtime.sharded import _node_slots

        cache = EngineCache()
        compiled = compile_model(mlp(), cache=cache)
        tiers = {
            slot.cache_tier()
            for node in compiled._nodes
            for slot in _node_slots(node)
        }
        assert tiers == {"programmed"}


def test_sharded_stream_traces_per_shard():
    from repro.runtime import shard

    compiled = compile_model(mlp(), cache=EngineCache())
    sharded = shard(compiled, 2)
    batches = [batch(2, seed=i) for i in range(3)]
    with trace.tracing() as tracer:
        result = sharded.run_stream(
            batches, rngs=[np.random.default_rng(i) for i in range(3)]
        )
    spans = tracer.spans()
    shard_spans = [s for s in spans if s.category == "shard"]
    assert {s.thread_name for s in shard_spans} == {"shard-0", "shard-1"}
    chip_total = sum(s.chip_ns for s in shard_spans)
    link_total = sum(s.chip_ns for s in spans if s.category == "link")
    assert chip_total == pytest.approx(result.stats.latency_ns)
    assert link_total == pytest.approx(result.stats.link_latency_ns)
    doc = chrome_trace(tracer)
    chip_threads = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == CHIP_PID
    }
    assert {"shard-0 (chip)", "shard-1 (chip)"} <= chip_threads


# ----------------------------------------------------------------------
# Server tracing + collection
# ----------------------------------------------------------------------
class TestServerObservability:
    def run_server(self):
        registry = ModelRegistry(cache=EngineCache())
        registry.register("m", mlp())
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=8, max_wait_s=0.005)
        )
        x = batch(6)
        with trace.tracing() as tracer:
            with server:
                handles = [
                    server.submit("m", x[i : i + 1], tenant="t") for i in range(6)
                ]
                results = await_results(handles)
        assert all(r.ok for r in results)
        return server, tracer

    def test_request_lifecycle_spans(self):
        _, tracer = self.run_server()
        by_category = {}
        for span in tracer.spans():
            by_category.setdefault(span.category, []).append(span)
        names = {s.name for s in by_category["serve"]}
        assert "admit" in {s.name for s in by_category["serve"]}
        assert any(name.startswith("queued:r") for name in names)
        assert "execute" in names
        assert "respond" in names
        execute = [s for s in by_category["serve"] if s.name == "execute"]
        assert sum(s.attrs["requests"] for s in execute) == 6
        assert all(s.attrs["chip_total_ns"] > 0 for s in execute)

    def test_collect_server_round_trip(self):
        server, _ = self.run_server()
        registry = collect_server(server)
        text = registry.to_prometheus()
        assert "repro_requests_submitted_total 6" in text
        assert "repro_requests_completed_total 6" in text
        assert 'repro_tenant_completed_total{tenant="t"} 6' in text
        assert "repro_batch_size_bucket" in text
        assert "repro_engine_cache_events_total" in text
        doc = registry.to_json()
        by_name = {f["name"]: f for f in doc["metrics"]}
        assert by_name["repro_requests_completed_total"]["samples"][0][
            "value"
        ] == 6.0


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_energy_column_sums_to_run_total(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        report = profiler.profile(compiled, batch(), runs=2)
        assert report.runs == 2
        assert report.total_energy_fj == pytest.approx(
            report.stats.total_energy_fj, rel=1e-6
        )
        assert report.total_chip_ns == pytest.approx(report.stats.latency_ns)

    def test_nodes_in_plan_order_with_tiers(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        report = profiler.profile(compiled, batch())
        assert [n.name for n in report.nodes] == [
            node.name for node in compiled._nodes
        ]
        weight_nodes = [n for n in report.nodes if n.kind == "linear"]
        assert weight_nodes and all(
            n.tier == "programmed" for n in weight_nodes
        )
        rows = report.rows()
        assert len(rows) == len(report.nodes)
        assert all(len(row) == 9 for row in rows)

    def test_profile_matches_plain_run_bitwise(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        x = batch()
        expected, _ = compiled.run(x, rng=np.random.default_rng(3))
        profiler.profile(compiled, x, rng_seed=3)
        again, _ = compiled.run(x, rng=np.random.default_rng(3))
        assert np.array_equal(expected, again)

    def test_profile_unwraps_sharded(self):
        from repro.runtime import shard

        compiled = compile_model(mlp(), cache=EngineCache())
        report = profiler.profile(shard(compiled, 2), batch())
        assert len(report.nodes) == len(compiled._nodes)

    def test_invalid_runs(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        with pytest.raises(ValueError):
            profiler.profile(compiled, batch(), runs=0)

    def test_collapsed_stacks(self):
        compiled = compile_model(mlp(), cache=EngineCache())
        report = profiler.profile(compiled, batch())
        lines = profiler.collapsed_stacks(report.tracer, metric="chip_ns")
        assert lines, "no collapsed stacks emitted"
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert stack.split(";")[0] == "run"
        with pytest.raises(ValueError):
            profiler.collapsed_stacks(report.tracer, metric="parsecs")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestProfileCLI:
    def test_profile_resnet8_smoke(self, tmp_path, capsys):
        from repro.cli import main

        folded = tmp_path / "resnet8.folded"
        rc = main(
            ["profile", "resnet8", "--batch", "1", "--collapsed", str(folded)]
        )
        captured = capsys.readouterr().out
        assert rc == 0
        assert "plan nodes" in captured
        assert "tier" in captured
        # The acceptance invariant: node sum == run total, printed.
        energy_line = next(
            line for line in captured.splitlines() if line.startswith("energy:")
        )
        node_sum = float(energy_line.split("node sum ")[1].split(" fJ")[0])
        run_total = float(energy_line.split("run total ")[1].split(" fJ")[0])
        assert node_sum == pytest.approx(run_total, rel=1e-6)
        stacks = folded.read_text().strip().splitlines()
        assert stacks and all(" " in line for line in stacks)

    def test_serve_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "serve.json"
        prom_out = tmp_path / "serve.prom"
        rc = main(
            [
                "serve",
                "--requests", "16",
                "--rate", "0",
                "--trace", str(trace_out),
                "--metrics", str(prom_out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"], "serve --trace wrote an empty trace"
        assert any(
            e.get("name") == "execute" for e in doc["traceEvents"]
        )
        text = prom_out.read_text()
        assert "repro_requests_submitted_total 16" in text
        # The CLI uninstalls its tracer even on success.
        assert trace.current() is None

    def test_shard_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "shard.json"
        rc = main(
            ["shard", "--shards", "2", "--batches", "2", "--trace", str(trace_out)]
        )
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(trace_out.read_text())
        shard_threads = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"shard-0", "shard-1"} <= shard_threads
        assert trace.current() is None

    def test_verbose_flag_configures_logging(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["-vv", "table1"])
        assert args.verbosity == 2
        # The info subcommand keeps its own --verbose untouched.
        args = build_parser().parse_args(["info", "--verbose"])
        assert args.verbose is True
        assert args.verbosity == 0
