"""Tests for the ROM-CiM chiplet system (section 4.3.3 future work)."""

import numpy as np
import pytest

from repro import models
from repro.arch import (
    RETICLE_LIMIT_MM2,
    RomChipletSystem,
    SramChipletSystem,
    chiplet_scaling,
    partition_summary,
    reticle_escape_area_mm2,
)


@pytest.fixture(scope="module")
def vgg_profile():
    model = models.build_model("vgg8", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


@pytest.fixture(scope="module")
def yolo_profile():
    model = models.build_model("yolo", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 416, 416))


class TestRomChipletSystem:
    def test_small_model_fits_one_die(self, vgg_profile):
        report = RomChipletSystem(die_area_mm2=100.0).evaluate(vgg_profile)
        assert report.n_chips == 1
        assert report.interconnect_traffic_bits == 0
        assert report.energy.interconnect_pj == 0.0

    def test_large_model_needs_multiple_dies(self, yolo_profile):
        report = RomChipletSystem(die_area_mm2=25.0).evaluate(yolo_profile)
        assert report.n_chips > 1
        assert report.energy.interconnect_pj > 0.0

    def test_fewer_chips_than_sram_chiplets(self, yolo_profile):
        die = 25.0
        rom = RomChipletSystem(die_area_mm2=die).evaluate(yolo_profile)
        sram = SramChipletSystem(chiplet_area_mm2=die).evaluate(yolo_profile)
        # ROM-CiM is ~19x denser; the assembly should be ~an order of
        # magnitude smaller in die count.
        assert sram.n_chips >= 5 * rom.n_chips

    def test_less_total_area_than_sram_chiplets(self, yolo_profile):
        die = 25.0
        rom = RomChipletSystem(die_area_mm2=die).evaluate(yolo_profile)
        sram = SramChipletSystem(chiplet_area_mm2=die).evaluate(yolo_profile)
        assert rom.area.total_mm2 < sram.area.total_mm2 / 3

    def test_dram_free_except_boot(self, yolo_profile):
        report = RomChipletSystem(die_area_mm2=25.0).evaluate(yolo_profile)
        # Only the amortized branch-weight boot load touches DRAM.
        assert report.energy.dram_pj < 0.05 * report.energy.total_pj

    def test_bigger_dies_mean_fewer_chips(self, yolo_profile):
        small = RomChipletSystem(die_area_mm2=20.0).n_chips_for(yolo_profile)
        large = RomChipletSystem(die_area_mm2=80.0).n_chips_for(yolo_profile)
        assert large < small

    def test_invalid_die_area(self):
        with pytest.raises(ValueError, match="die area"):
            RomChipletSystem(die_area_mm2=0.0)

    def test_die_smaller_than_cache_rejected(self, vgg_profile):
        system = RomChipletSystem(die_area_mm2=0.1)
        with pytest.raises(ValueError, match="cache"):
            system.evaluate(vgg_profile)

    def test_invalid_boundary_fraction(self):
        with pytest.raises(ValueError, match="boundary"):
            RomChipletSystem(boundary_activation_fraction=1.5)

    def test_report_identity(self, vgg_profile):
        report = RomChipletSystem().evaluate(vgg_profile)
        assert report.system == "rom-chiplet"
        assert report.macs > 0
        assert report.latency_ns > 0


class TestScalingStudy:
    def test_scaling_points_cover_sweep(self, yolo_profile):
        result = chiplet_scaling(
            yolo_profile, die_areas_mm2=(25.0, 100.0), model_name="yolo"
        )
        assert [p.die_area_mm2 for p in result.points] == [25.0, 100.0]
        assert all(p.chip_count_ratio > 1 for p in result.points)

    def test_rom_assembly_energy_near_parity(self, yolo_profile):
        """ReBranch's extra MACs eat the link saving: parity, not a win."""
        result = chiplet_scaling(yolo_profile, die_areas_mm2=(50.0,))
        assert result.points[0].energy_ratio == pytest.approx(1.0, abs=0.15)

    def test_rom_assembly_wins_silicon(self, yolo_profile):
        result = chiplet_scaling(yolo_profile, die_areas_mm2=(50.0,))
        point = result.points[0]
        assert point.rom_area_cm2 < point.sram_area_cm2 / 5
        assert point.chip_count_ratio > 5

    def test_partition_summary_keys(self, yolo_profile):
        summary = partition_summary(yolo_profile, die_area_mm2=25.0)
        assert summary["rom_chips"] >= 1
        assert summary["chip_count_ratio"] > 1
        assert summary["monolithic_area_mm2"] > 0

    def test_reticle_escape_consistent_with_yoloc(self, vgg_profile):
        area = reticle_escape_area_mm2(vgg_profile)
        assert 0 < area < RETICLE_LIMIT_MM2  # VGG-8 fits a single die


class TestFourSystems:
    def test_four_reports(self, vgg_profile):
        from repro.arch.romchiplet import evaluate_four_systems

        reports = evaluate_four_systems(vgg_profile)
        assert set(reports) == {
            "yoloc",
            "sram-single-chip",
            "sram-chiplet",
            "rom-chiplet",
        }
        for report in reports.values():
            assert report.energy.total_pj > 0
            assert report.area.total_mm2 > 0

    def test_rom_chiplet_matches_yoloc_on_small_model(self, vgg_profile):
        """A model that fits one die: the assembly is a YOLoC chip plus
        packaging control overhead, at identical compute energy."""
        from repro.arch.romchiplet import evaluate_four_systems

        reports = evaluate_four_systems(vgg_profile, die_area_mm2=100.0)
        rom = reports["rom-chiplet"]
        yoloc = reports["yoloc"]
        assert rom.n_chips == 1
        assert rom.energy.cim_pj == pytest.approx(yoloc.energy.cim_pj)
