"""Tests for the system-level architecture simulator."""

import numpy as np
import pytest

from repro import models
from repro.arch import (
    CACHE_BITS_DEFAULT,
    ChipletLinkSpec,
    DramSpec,
    SIMBA_LINK,
    SramBufferModel,
    SramChipletSystem,
    SramSingleChipSystem,
    YolocSystem,
    evaluate_all_systems,
    map_model,
)
from repro.arch.mapping import (
    activation_traffic_bits,
    max_activation_bits,
    weight_reload_factor,
)


@pytest.fixture(scope="module")
def vgg_profile():
    model = models.vgg8(rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


@pytest.fixture(scope="module")
def yolo_profile():
    model = models.yolo_v2(rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 416, 416))


class TestMemoryModels:
    def test_buffer_energy_grows_with_capacity(self):
        small = SramBufferModel(capacity_bits=1 << 20)
        big = SramBufferModel(capacity_bits=1 << 24)
        assert big.energy_pj_per_bit > small.energy_pj_per_bit

    def test_buffer_area_proportional_to_capacity(self):
        a = SramBufferModel(capacity_bits=1 << 20)
        b = SramBufferModel(capacity_bits=1 << 21)
        assert b.area_mm2 == pytest.approx(2 * a.area_mm2)

    def test_buffer_invalid_capacity(self):
        with pytest.raises(ValueError):
            SramBufferModel(capacity_bits=0)

    def test_dram_energy_linear(self):
        dram = DramSpec()
        assert dram.access_energy_pj(2e6) == pytest.approx(2 * dram.access_energy_pj(1e6))

    def test_dram_transfer_time(self):
        dram = DramSpec(bandwidth_gbps=100.0)
        assert dram.transfer_time_ns(1000) == pytest.approx(10.0)

    def test_simba_link_energy(self):
        assert SIMBA_LINK.energy_pj_per_bit == pytest.approx(1.17)
        assert SIMBA_LINK.transfer_energy_pj(100) == pytest.approx(117.0)

    def test_link_bandwidth(self):
        link = ChipletLinkSpec(bandwidth_gbps_per_pin=25, pins_per_link=32)
        assert link.link_bandwidth_gbps == 800


class TestMapping:
    def test_yoloc_mapping_splits_rom_sram(self, vgg_profile):
        mapping = map_model(vgg_profile, "yoloc")
        assert mapping.rom_weight_bits > 0
        assert mapping.sram_weight_bits > 0
        assert mapping.rom_weight_bits > mapping.sram_weight_bits

    def test_all_sram_mapping(self, vgg_profile):
        mapping = map_model(vgg_profile, "all_sram")
        assert mapping.rom_weight_bits == 0
        # CiM arrays hold conv/linear weights; BN params live in digital
        # registers and are excluded from the mapping.
        weight_params = sum(l.params for l in vgg_profile.weight_layers())
        assert mapping.sram_weight_bits == weight_params * 8

    def test_all_rom_keeps_tail_trainable(self, vgg_profile):
        mapping = map_model(vgg_profile, "all_rom", trainable_tail_layers=1)
        tail = mapping.placements[-1]
        assert tail.sram_bits > 0 and tail.rom_bits == 0
        assert all(p.rom_bits > 0 for p in mapping.placements[:-1])

    def test_trainable_fraction_small_for_yoloc(self, yolo_profile):
        mapping = map_model(yolo_profile, "yoloc", d=4, u=4)
        # Over 90% of parameters stay in ROM (the paper's claim).
        assert mapping.trainable_fraction < 0.10

    def test_branch_macs_are_fraction_of_trunk(self, vgg_profile):
        mapping = map_model(vgg_profile, "yoloc", d=4, u=4)
        branch_macs = mapping.sram_macs
        total = mapping.total_macs
        assert 0 < branch_macs / total < 0.15

    def test_larger_compression_means_fewer_sram_bits(self, vgg_profile):
        small = map_model(vgg_profile, "yoloc", d=2, u=2)
        large = map_model(vgg_profile, "yoloc", d=8, u=8)
        assert large.sram_weight_bits < small.sram_weight_bits

    def test_invalid_mode(self, vgg_profile):
        with pytest.raises(ValueError):
            map_model(vgg_profile, "hybrid")

    def test_invalid_ratio(self, vgg_profile):
        with pytest.raises(ValueError):
            map_model(vgg_profile, "yoloc", d=0)

    def test_activation_traffic_positive(self, vgg_profile):
        assert activation_traffic_bits(vgg_profile) > 0

    def test_reload_factor_one_for_small_images(self, vgg_profile):
        assert weight_reload_factor(vgg_profile, CACHE_BITS_DEFAULT) == 1

    def test_reload_factor_grows_for_detection(self, yolo_profile):
        factor = weight_reload_factor(yolo_profile, CACHE_BITS_DEFAULT)
        assert factor >= 2
        assert max_activation_bits(yolo_profile) > CACHE_BITS_DEFAULT

    def test_reload_factor_invalid_cache(self, vgg_profile):
        with pytest.raises(ValueError):
            weight_reload_factor(vgg_profile, 0)


class TestYolocSystem:
    def test_report_fields(self, vgg_profile):
        report = YolocSystem().evaluate(vgg_profile)
        assert report.system == "yoloc"
        assert report.area.total_mm2 > 0
        assert report.energy.total_pj > 0
        assert report.latency_ns > 0
        assert report.fits_on_chip

    def test_rom_area_dominates_sram_bits_but_not_area(self, yolo_profile):
        report = YolocSystem().evaluate(yolo_profile)
        mapping = report.mapping
        assert mapping.rom_weight_bits > 10 * mapping.sram_weight_bits

    def test_negligible_dram_energy(self, yolo_profile):
        report = YolocSystem().evaluate(yolo_profile)
        assert report.energy.dram_pj < 0.01 * report.energy.total_pj

    def test_latency_overhead_below_10_percent(self, yolo_profile):
        overhead = YolocSystem().latency_overhead(yolo_profile)
        assert 0 <= overhead < 0.10

    def test_area_breakdown_sums(self, vgg_profile):
        area = YolocSystem().evaluate(vgg_profile).area
        fractions = area.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_energy_efficiency_near_macro_limit(self, yolo_profile):
        # System TOPS/W must be below the macro's 11.5 but same order.
        report = YolocSystem().evaluate(yolo_profile)
        assert 5 < report.tops_per_w < 11.6


class TestSramSingleChip:
    def test_small_model_fits_no_dram(self, vgg_profile):
        system = SramSingleChipSystem(chip_area_mm2=400.0)
        report = system.evaluate(vgg_profile)
        assert report.fits_on_chip
        assert report.dram_traffic_bits == 0
        assert report.energy.dram_pj == 0

    def test_big_model_streams_weights(self, yolo_profile):
        system = SramSingleChipSystem(chip_area_mm2=200.0)
        report = system.evaluate(yolo_profile)
        assert not report.fits_on_chip
        assert report.dram_traffic_bits > 0
        assert report.energy.dram_pj > report.energy.cim_pj

    def test_iso_area_defaults_to_yoloc_area(self, vgg_profile):
        auto = SramSingleChipSystem().evaluate(vgg_profile)
        yoloc_area = YolocSystem().evaluate(vgg_profile).area.total_mm2
        assert auto.area.total_mm2 == pytest.approx(yoloc_area, rel=0.15)

    def test_dram_bound_latency(self, yolo_profile):
        system = SramSingleChipSystem(chip_area_mm2=200.0)
        report = system.evaluate(yolo_profile)
        dram_time = system.dram.transfer_time_ns(report.dram_traffic_bits)
        assert report.latency_ns >= dram_time

    def test_area_for_capacity_round_trip(self):
        system = SramSingleChipSystem()
        area = system.area_for_capacity(50_000_000)
        report_system = SramSingleChipSystem(chip_area_mm2=area)
        usable = area * 0.95 - report_system.cache.area_mm2
        macros = int(usable // system.sram_spec.area_mm2)
        assert macros * system.sram_spec.capacity_bits >= 50_000_000 * 0.95


class TestChipletSystem:
    def test_enough_chips_to_fit(self, yolo_profile):
        report = SramChipletSystem(chiplet_area_mm2=214.0).evaluate(yolo_profile)
        assert report.n_chips >= 5
        assert report.energy.dram_pj == 0

    def test_interconnect_energy_present(self, yolo_profile):
        report = SramChipletSystem(chiplet_area_mm2=214.0).evaluate(yolo_profile)
        assert report.energy.interconnect_pj > 0
        assert report.interconnect_traffic_bits > 0

    def test_single_chip_no_crossing(self, vgg_profile):
        report = SramChipletSystem(chiplet_area_mm2=800.0).evaluate(vgg_profile)
        assert report.n_chips == 1
        assert report.energy.interconnect_pj == 0

    def test_area_scales_with_chips(self, yolo_profile):
        report = SramChipletSystem(chiplet_area_mm2=214.0).evaluate(yolo_profile)
        assert report.area.total_mm2 > report.n_chips * 150

    def test_invalid_boundary_fraction(self):
        with pytest.raises(ValueError):
            SramChipletSystem(boundary_activation_fraction=1.5)


class TestFig14Shape:
    """The headline system-level claims, asserted as orderings."""

    def test_yoloc_beats_single_chip_on_large_models(self, yolo_profile):
        reports = evaluate_all_systems(yolo_profile)
        improvement = (
            reports["sram-single-chip"].energy.total_pj
            / reports["yoloc"].energy.total_pj
        )
        assert improvement > 4

    def test_yoloc_matches_chiplet_energy(self, yolo_profile):
        reports = evaluate_all_systems(yolo_profile)
        ratio = (
            reports["sram-chiplet"].energy.total_pj / reports["yoloc"].energy.total_pj
        )
        assert 0.9 < ratio < 1.5

    def test_yoloc_saves_area_vs_chiplet(self, yolo_profile):
        reports = evaluate_all_systems(yolo_profile)
        saving = (
            reports["sram-chiplet"].area.total_mm2 / reports["yoloc"].area.total_mm2
        )
        assert saving > 5
