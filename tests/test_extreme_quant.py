"""Tests for ternary/binary quantization (the section 2.3 claim)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro import models, nn
from repro.nn.tensor import Tensor
from repro.quant import (
    WEIGHT_SCHEMES,
    binarize,
    fake_binary,
    fake_ternary,
    mean_quantization_error,
    quantize_weights_,
    ternarize,
    weight_quantization_error,
)

RNG = np.random.default_rng(13)

weight_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=4, min_side=1, max_side=6),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


class TestTernarize:
    def test_codes_are_ternary(self):
        codes, _ = ternarize(RNG.normal(size=(64, 32)))
        assert set(np.unique(codes)).issubset({-1, 0, 1})

    def test_large_values_survive(self):
        values = np.array([10.0, -10.0, 0.01, -0.01])
        codes, scale = ternarize(values)
        np.testing.assert_array_equal(codes[:2], [1, -1])
        np.testing.assert_array_equal(codes[2:], [0, 0])
        assert scale == pytest.approx(10.0)

    def test_all_zero_input(self):
        codes, scale = ternarize(np.zeros(8))
        assert codes.sum() == 0
        assert scale == 1.0

    @given(weight_arrays)
    @settings(max_examples=50, deadline=None)
    def test_reconstruction_not_worse_than_zero(self, values):
        """TWN reconstruction never has more energy error than w itself."""
        codes, scale = ternarize(values)
        recon = codes * scale
        assert np.linalg.norm(recon - values) <= np.linalg.norm(values) + 1e-9

    @given(weight_arrays, st.floats(0.1, 10))
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, values, factor):
        codes_a, scale_a = ternarize(values)
        assume(codes_a.any())  # all-zero input falls back to unit scale
        # Stay away from the threshold boundary, where a float rounding
        # of `values * factor` can legitimately flip a code.
        delta = 0.7 * np.abs(values).mean()
        assume(np.all(np.abs(np.abs(values) - delta) > 1e-6 * (1 + delta)))
        codes_b, scale_b = ternarize(values * factor)
        np.testing.assert_array_equal(codes_a, codes_b)
        assert scale_b == pytest.approx(scale_a * factor, rel=1e-7)


class TestBinarize:
    def test_codes_are_binary(self):
        codes, _ = binarize(RNG.normal(size=(16, 16)))
        assert set(np.unique(codes)).issubset({-1, 1})

    def test_scale_is_mean_abs(self):
        values = np.array([1.0, -3.0, 2.0])
        _, scale = binarize(values)
        assert scale == pytest.approx(2.0)

    def test_zero_input_unit_scale(self):
        codes, scale = binarize(np.zeros(4))
        assert scale == 1.0
        assert set(np.unique(codes)) == {1}

    @given(weight_arrays)
    @settings(max_examples=50, deadline=None)
    def test_binary_error_at_least_ternary(self, values):
        """The 2-level alphabet can never beat the 3-level one (same scale
        family), checked on the relative L2 error."""
        t_codes, t_scale = ternarize(values)
        b_codes, b_scale = binarize(values)
        norm = np.linalg.norm(values)
        if norm == 0:
            return
        t_err = np.linalg.norm(t_codes * t_scale - values) / norm
        b_err = np.linalg.norm(b_codes * b_scale - values) / norm
        # Ternary with the TWN heuristic threshold is not globally
        # optimal, so allow a small tolerance.
        assert t_err <= b_err + 0.25


class TestSTE:
    def test_fake_ternary_forward_matches_ternarize(self):
        data = RNG.normal(size=(8, 8))
        x = Tensor(data.copy(), requires_grad=True)
        out = fake_ternary(x)
        codes, scale = ternarize(data)
        np.testing.assert_allclose(out.data, codes * scale)

    def test_fake_ternary_gradient_is_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        fake_ternary(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 4)))

    def test_fake_binary_gradient_is_identity(self):
        x = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        fake_binary(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((4, 4)))


class TestModelQuantization:
    @pytest.fixture()
    def model(self):
        return models.build_model(
            "vgg8", num_classes=6, width_mult=0.125, rng=np.random.default_rng(0)
        )

    def test_quantize_touches_all_weight_layers(self, model):
        n_weighted = sum(
            1
            for m in model.modules()
            if isinstance(m, (nn.Conv2d, nn.Linear))
        )
        assert quantize_weights_(model, "ternary") == n_weighted

    def test_ternary_leaves_three_values_per_layer(self, model):
        quantize_weights_(model, "ternary")
        for module in model.modules():
            if isinstance(module, nn.Conv2d):
                assert len(np.unique(module.weight.data)) <= 3

    def test_unknown_scheme_rejected(self, model):
        with pytest.raises(KeyError, match="unknown scheme"):
            quantize_weights_(model, "fp4")
        with pytest.raises(KeyError, match="unknown scheme"):
            weight_quantization_error(model, "fp4")

    def test_error_ordering_across_schemes(self, model):
        errors = {
            scheme: mean_quantization_error(model, scheme)
            for scheme in WEIGHT_SCHEMES
        }
        assert errors["int8"] < errors["int4"] < errors["ternary"] < errors["binary"]

    def test_mobilenet_hurts_more_than_vgg_at_ternary(self, model):
        mobile = models.build_model(
            "mobilenet", num_classes=6, width_mult=0.125, rng=np.random.default_rng(0)
        )
        # Weight-space reconstruction error of the conv stack: the
        # depthwise model is at least as damaged as the plain CNN.
        assert mean_quantization_error(mobile, "binary") >= 0.5 * (
            mean_quantization_error(model, "binary")
        )

    def test_int8_nearly_lossless(self, model):
        assert mean_quantization_error(model, "int8") < 0.02
