"""Tests for the text visualization helpers and the CLI."""

import numpy as np
import pytest

from repro import viz
from repro.cli import build_parser, main


class TestHbar:
    def test_full_bar(self):
        assert viz.hbar(1.0, 1.0, width=10) == "█" * 10

    def test_empty_bar(self):
        assert viz.hbar(0.0, 1.0, width=10).strip() == ""

    def test_clamps_above_max(self):
        assert viz.hbar(5.0, 1.0, width=4) == "█" * 4

    def test_invalid_max(self):
        with pytest.raises(ValueError):
            viz.hbar(1.0, 0.0)


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = viz.bar_chart([("alpha", 2.0), ("b", 1.0)], title="t", unit="x")
        assert "t" in text
        assert "alpha" in text
        assert "2x" in text

    def test_longest_bar_is_max(self):
        text = viz.bar_chart([("a", 1.0), ("b", 4.0)], width=8)
        lines = text.splitlines()
        assert lines[1].count("█") == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.bar_chart([])


class TestGroupedBarChart:
    def test_groups_rendered(self):
        text = viz.grouped_bar_chart({"m1": {"a": 1.0}, "m2": {"a": 2.0}})
        assert "[m1]" in text and "[m2]" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            viz.grouped_bar_chart({})


class TestLinePlot:
    def test_renders_points(self):
        text = viz.line_plot([0, 1, 2], [0.0, 0.5, 1.0], height=5, width=20)
        assert text.count("●") == 3

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            viz.line_plot([0, 1], [0.0])

    def test_constant_series_safe(self):
        text = viz.line_plot([0, 1], [1.0, 1.0])
        assert "●" in text

    def test_y_label(self):
        assert "acc" in viz.line_plot([0], [1.0], y_label="acc")


class TestStackedBar:
    def test_fractions_rendered(self):
        text = viz.stacked_fraction_bar({"cim": 0.6, "dram": 0.4}, width=10)
        assert "cim" in text and "60%" in text

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            viz.stacked_fraction_bar({"a": 0.0})

    def test_no_legend(self):
        text = viz.stacked_fraction_bar({"a": 1.0}, width=5, legend=False)
        assert "=" not in text


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        assert {
            "info",
            "table1",
            "fig14",
            "fig10",
            "options",
            "packing",
            "chaos",
        } <= set(sub.choices)

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "vgg8" in out and "yolo" in out

    def test_info_verbose(self, capsys):
        assert main(["info", "--verbose", "--model", "vgg8"]) == 0
        assert "total" in capsys.readouterr().out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "rom-1t" in capsys.readouterr().out

    def test_packing_command(self, capsys):
        assert main(["packing"]) == 0
        assert "subarray_saving" in capsys.readouterr().out

    def test_fig14_command(self, capsys):
        assert main(["fig14"]) == 0
        out = capsys.readouterr().out
        assert "yolo" in out and "improvement" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])


class TestExtensionCommands:
    """CLI entries for the future-work / extension studies."""

    def test_encoding_command(self, capsys):
        assert main(["encoding"]) == 0
        out = capsys.readouterr().out
        assert "bit-serial" in out and "pulse-width" in out

    def test_designspace_command(self, capsys):
        assert main(["designspace"]) == 0
        out = capsys.readouterr().out
        assert "pareto frontier" in out

    def test_variation_command(self, capsys):
        assert main(["variation"]) == 0
        assert "tolerable cell mismatch" in capsys.readouterr().out

    def test_training_command(self, capsys):
        assert main(["training"]) == 0
        out = capsys.readouterr().out
        assert "yolo" in out and "rebranch_uJ" in out

    def test_pingpong_command(self, capsys):
        assert main(["pingpong"]) == 0
        assert "relief" in capsys.readouterr().out

    def test_chiplets_command(self, capsys):
        assert main(["chiplets", "--model", "tiny_yolo"]) == 0
        assert "rom_chips" in capsys.readouterr().out

    def test_runtime_command_over_zoo_model(self, capsys):
        assert main(["runtime", "--model", "resnet8"]) == 0
        out = capsys.readouterr().out
        assert "serving" in out and "True" in out  # bitwise verdicts

    def test_shard_command_over_zoo_model(self, capsys):
        assert main(["shard", "--model", "resnet8", "--batches", "3"]) == 0
        out = capsys.readouterr().out
        assert "pipelined_ms" in out and "True" in out

    def test_chaos_command(self, capsys):
        assert main(["chaos", "--batches", "4", "--campaigns", "1"]) == 0
        out = capsys.readouterr().out
        assert "availability" in out and "bitwise" in out
        assert "recovery_ms_mean" in out

    @pytest.mark.slow
    def test_dusearch_command(self, capsys):
        assert main(["dusearch"]) == 0
        assert "selected: D=" in capsys.readouterr().out

    @pytest.mark.slow
    def test_subbit_command(self, capsys):
        assert main(["subbit"]) == 0
        out = capsys.readouterr().out
        assert "ternary" in out and "mobilenet" in out
