"""Tests for quantization: codecs, fake-quant STE, model export."""

import numpy as np
import pytest

from repro import models, nn
from repro.nn.tensor import Tensor
from repro.quant import (
    QuantSpec,
    FakeQuantize,
    dequantize,
    fake_quant,
    int_range,
    quantize,
    quantize_model_weights,
    quantize_symmetric,
    quantization_mse,
)

RNG = np.random.default_rng(9)


class TestIntRange:
    def test_signed_8bit(self):
        assert int_range(8) == (-128, 127)

    def test_unsigned_8bit(self):
        assert int_range(8, signed=False) == (0, 255)

    def test_1bit(self):
        assert int_range(1) == (-1, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            int_range(0)


class TestQuantize:
    def test_round_trip_error_bounded(self):
        values = RNG.normal(size=(64,))
        codes, scale = quantize(values, QuantSpec(bits=8))
        recon = dequantize(codes, scale)
        assert np.abs(recon - values).max() <= scale / 2 + 1e-12

    def test_codes_within_range(self):
        values = RNG.normal(size=(100,)) * 10
        spec = QuantSpec(bits=4)
        codes, _ = quantize(values, spec)
        assert codes.min() >= spec.qmin
        assert codes.max() <= spec.qmax

    def test_zero_input_safe(self):
        codes, scale = quantize(np.zeros(8), QuantSpec(bits=8))
        assert (codes == 0).all()
        assert np.isfinite(scale)

    def test_per_channel_scales(self):
        values = np.stack([np.ones(4), 100 * np.ones(4)])
        codes, scale = quantize(values, QuantSpec(bits=8, per_channel_axis=0))
        assert scale.shape == (2, 1)
        np.testing.assert_allclose(dequantize(codes, scale), values, rtol=1e-2)

    def test_per_channel_better_than_per_tensor(self):
        values = np.stack([0.01 * RNG.normal(size=32), 10 * RNG.normal(size=32)])
        per_tensor = quantization_mse(values, QuantSpec(bits=8))
        per_channel = quantization_mse(values, QuantSpec(bits=8, per_channel_axis=0))
        assert per_channel < per_tensor

    def test_more_bits_less_error(self):
        values = RNG.normal(size=(256,))
        assert quantization_mse(values, QuantSpec(bits=8)) < quantization_mse(
            values, QuantSpec(bits=4)
        )

    def test_symmetric_convenience(self):
        values = RNG.normal(size=(16,))
        codes, scale = quantize_symmetric(values, bits=8)
        assert isinstance(scale, float)
        assert codes.dtype == np.int64

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantSpec(bits=0)


class TestFakeQuant:
    def test_forward_is_quantized(self):
        x = Tensor(RNG.normal(size=(32,)), requires_grad=True)
        out = fake_quant(x, bits=4)
        codes = np.unique(out.data)
        assert len(codes) <= 16

    def test_gradient_is_straight_through(self):
        x = Tensor(np.array([0.1, -0.2, 0.3]), requires_grad=True)
        fake_quant(x, bits=8).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))

    def test_identityish_at_high_bits(self):
        x = Tensor(RNG.normal(size=(16,)))
        out = fake_quant(x, bits=16)
        np.testing.assert_allclose(out.data, x.data, atol=1e-3)

    def test_module_wrapper(self):
        fq = FakeQuantize(bits=2)
        out = fq(Tensor(RNG.normal(size=(64,))))
        assert len(np.unique(out.data)) <= 4
        assert "bits=2" in repr(fq)

    def test_qat_trains_through_fake_quant(self):
        # A 2-bit weight can still learn a simple sign function via STE.
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(0, 0.1, size=(1, 4)), requires_grad=True)
        X = rng.normal(size=(64, 4))
        y = (X[:, 0] > 0).astype(float)
        opt = nn.Adam([w], lr=5e-2)
        for _ in range(100):
            opt.zero_grad()
            logits = Tensor(X).matmul(fake_quant(w, bits=2).transpose())[:, 0]
            loss = nn.binary_cross_entropy_with_logits(logits, y)
            loss.backward()
            opt.step()
        with nn.no_grad():
            logits = Tensor(X).matmul(fake_quant(w, bits=2).transpose())[:, 0]
        acc = ((logits.data > 0) == y).mean()
        # STE training is noisy at 2 bits; well above chance is the bar.
        assert acc > 0.75
        # The informative feature should carry the dominant weight.
        assert np.abs(w.data).argmax() == 0


class TestExport:
    def test_export_covers_all_weight_layers(self):
        model = models.vgg8(width_mult=0.0625, rng=np.random.default_rng(0))
        layers = quantize_model_weights(model, bits=8)
        n_weights = sum(
            1 for m in model.modules() if isinstance(m, (nn.Conv2d, nn.Linear))
        )
        assert len(layers) == n_weights

    def test_conv_unroll_shape(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, rng=np.random.default_rng(0)))
        layer = quantize_model_weights(model)[0]
        assert layer.codes.shape == (3 * 9, 8)
        assert layer.rows == 27 and layer.cols == 8

    def test_linear_unroll_shape(self):
        model = nn.Sequential(nn.Linear(5, 7, rng=np.random.default_rng(0)))
        layer = quantize_model_weights(model)[0]
        assert layer.codes.shape == (5, 7)

    def test_per_channel_scale_per_column(self):
        model = nn.Sequential(nn.Conv2d(3, 8, 3, rng=np.random.default_rng(0)))
        layer = quantize_model_weights(model, per_channel=True)[0]
        assert layer.scale.shape == (8,)

    def test_dequantized_weights_close(self):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, rng=np.random.default_rng(0)))
        layer = quantize_model_weights(model, bits=8, per_channel=True)[0]
        recon = (layer.codes * layer.scale[None, :]).T.reshape(4, 2, 3, 3)
        np.testing.assert_allclose(
            recon, model[0].weight.data, atol=np.abs(model[0].weight.data).max() / 100
        )

    def test_weight_bits_total(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=np.random.default_rng(0)))
        layer = quantize_model_weights(model, bits=8)[0]
        assert layer.weight_bits_total == 16 * 8
