"""Tests for the ping-pong weight-reload scheduler (section 4.3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import models
from repro.arch import (
    DramSpec,
    LayerTask,
    double_buffered_schedule,
    relief_summary,
    serial_schedule,
    tasks_for_single_chip,
)

task_values = st.tuples(
    st.floats(0.0, 1e4),  # compute_ns
    st.floats(0.0, 1e4),  # load_ns
)


def make_tasks(pairs):
    return [
        LayerTask(
            name=f"layer{i}", compute_ns=c, load_bits=l * 10.0, load_ns=l
        )
        for i, (c, l) in enumerate(pairs)
    ]


class TestSchedules:
    def test_serial_makespan_is_sum(self):
        tasks = make_tasks([(10, 5), (20, 15)])
        schedule = serial_schedule(tasks)
        schedule.validate()
        assert schedule.makespan_ns == pytest.approx(50)

    def test_pingpong_overlaps_load_with_compute(self):
        # load of layer1 (15ns) hides under compute of layer0 (10ns of it).
        tasks = make_tasks([(10, 5), (20, 15)])
        schedule = double_buffered_schedule(tasks)
        schedule.validate()
        assert schedule.makespan_ns == pytest.approx(5 + 10 + 20 + 5)
        # (load0, compute0 while load1 runs 15ns -> ready at t=20, compute1)

    def test_pingpong_never_slower_than_serial(self):
        tasks = make_tasks([(3, 9), (7, 2), (5, 5), (1, 8)])
        serial = serial_schedule(tasks).makespan_ns
        pingpong = double_buffered_schedule(tasks).makespan_ns
        assert pingpong <= serial

    def test_no_loads_makes_schedules_equal(self):
        tasks = make_tasks([(10, 0), (20, 0), (5, 0)])
        assert double_buffered_schedule(tasks).makespan_ns == pytest.approx(
            serial_schedule(tasks).makespan_ns
        )

    def test_bank_reuse_constraint(self):
        """Layer l's load waits for layer l-2's compute to retire."""
        tasks = make_tasks([(100, 1), (1, 1), (1, 1)])
        schedule = double_buffered_schedule(tasks)
        schedule.validate()
        by_name = {e.name: e for e in schedule.entries}
        # layer2 reuses layer0's bank -> cannot load before t=101.
        assert by_name["layer2"].load_start_ns >= by_name["layer0"].compute_end_ns

    def test_compute_slowdown_penalizes_pingpong(self):
        tasks = make_tasks([(10, 1), (10, 1), (10, 1)])
        fast = double_buffered_schedule(tasks, compute_slowdown=1.0)
        slow = double_buffered_schedule(tasks, compute_slowdown=2.0)
        assert slow.makespan_ns > fast.makespan_ns

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError, match="slowdown"):
            double_buffered_schedule([], compute_slowdown=0.5)

    def test_negative_task_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            LayerTask(name="bad", compute_ns=-1.0, load_bits=0.0, load_ns=0.0)

    def test_empty_schedule(self):
        assert serial_schedule([]).makespan_ns == 0.0
        assert double_buffered_schedule([]).makespan_ns == 0.0

    @given(st.lists(task_values, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_pipeline_bounds(self, pairs):
        """makespan in [max(compute_sum, load_sum), serial_sum]."""
        tasks = make_tasks(pairs)
        serial = serial_schedule(tasks)
        pingpong = double_buffered_schedule(tasks)
        serial.validate()
        pingpong.validate()
        compute_sum = sum(t.compute_ns for t in tasks)
        load_sum = sum(t.load_ns for t in tasks)
        assert pingpong.makespan_ns >= max(compute_sum, load_sum) - 1e-6
        assert pingpong.makespan_ns <= serial.makespan_ns + 1e-6
        assert serial.makespan_ns == pytest.approx(compute_sum + load_sum)

    @given(st.lists(task_values, min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_utilization_in_unit_interval(self, pairs):
        schedule = double_buffered_schedule(make_tasks(pairs))
        assert 0.0 <= schedule.compute_utilization <= 1.0 + 1e-9


class TestSingleChipTasks:
    @pytest.fixture(scope="class")
    def profile(self):
        model = models.build_model("vgg8", rng=np.random.default_rng(0))
        return models.profile_model(model, (1, 3, 32, 32))

    def test_residency_in_layer_order(self, profile):
        layers = profile.weight_layers()
        first_bits = layers[0].params * 8
        tasks = tasks_for_single_chip(profile, first_bits, chip_gops=100.0)
        assert tasks[0].load_bits == 0.0
        assert any(t.load_bits > 0 for t in tasks[1:])

    def test_everything_resident_no_loads(self, profile):
        total_bits = sum(l.params * 8 for l in profile.weight_layers())
        tasks = tasks_for_single_chip(profile, total_bits, chip_gops=100.0)
        assert all(t.load_bits == 0.0 for t in tasks)

    def test_reload_factor_multiplies_traffic(self, profile):
        t1 = tasks_for_single_chip(profile, 0, chip_gops=100.0, reload_factor=1)
        t3 = tasks_for_single_chip(profile, 0, chip_gops=100.0, reload_factor=3)
        assert sum(t.load_bits for t in t3) == pytest.approx(
            3 * sum(t.load_bits for t in t1)
        )

    def test_invalid_throughput(self, profile):
        with pytest.raises(ValueError, match="throughput"):
            tasks_for_single_chip(profile, 0, chip_gops=0.0)

    def test_relief_summary_energy_identical(self, profile):
        tasks = tasks_for_single_chip(profile, 0, chip_gops=10.0)
        summary = relief_summary(tasks)
        assert summary["serial_dram_pj"] == summary["pingpong_dram_pj"]
        assert summary["latency_relief"] >= 1.0

    def test_relief_positive_when_loads_comparable(self, profile):
        dram = DramSpec(bandwidth_gbps=20.0)
        tasks = tasks_for_single_chip(profile, 0, chip_gops=50.0, dram=dram)
        summary = relief_summary(tasks, dram=dram)
        assert summary["latency_relief"] > 1.05
