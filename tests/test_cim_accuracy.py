"""Tests for the end-to-end CiM accuracy experiment."""

import numpy as np
import pytest

from repro import nn
from repro.cim import CimDeployedModel, MacroConfig, PulseWidthEncoding
from repro.experiments import cim_accuracy


def tiny_chain(num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(8 * 8 * 8, num_classes, rng=rng),
    )


class TestEncodingDeployment:
    def test_deployed_model_accepts_encoding(self):
        model = tiny_chain()
        x = np.random.default_rng(0).random((2, 3, 16, 16))
        deployed = CimDeployedModel(
            model, rng=np.random.default_rng(1), encoding=PulseWidthEncoding()
        )
        out = deployed(x)
        assert out.shape == (2, 4)

    def test_signed_input_falls_back_to_bit_serial(self):
        """Images with negative values must not crash pulse encodings."""
        model = tiny_chain()
        x = np.random.default_rng(0).normal(size=(2, 3, 16, 16))
        deployed = CimDeployedModel(
            model, rng=np.random.default_rng(1), encoding=PulseWidthEncoding()
        )
        out = deployed(x)  # would raise without the fallback
        assert np.isfinite(out).all()

    def test_pulse_width_cheaper_per_mac(self):
        model = tiny_chain()
        x = np.random.default_rng(0).random((2, 3, 16, 16))
        serial = CimDeployedModel(model, rng=np.random.default_rng(1))
        serial(x)
        pulse = CimDeployedModel(
            model, rng=np.random.default_rng(1), encoding=PulseWidthEncoding()
        )
        pulse(x)
        assert (
            pulse.last_stats.energy_per_mac_fj
            < serial.last_stats.energy_per_mac_fj
        )


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = cim_accuracy.fast_config()
        config.train_epochs = 6
        config.n_train = 192
        config.n_eval = 48
        return cim_accuracy.run(config)

    def test_grid_complete(self, result):
        assert len(result.points) == 4  # 2 adc_bits x 2 encodings

    def test_float_baseline_learned_something(self, result):
        assert result.float_accuracy > 0.5

    def test_finer_adc_no_worse(self, result):
        assert (
            result.at(8, "bit-serial").accuracy
            >= result.at(5, "bit-serial").accuracy
        )

    def test_8bit_adc_near_float(self, result):
        assert result.at(8, "bit-serial").accuracy >= result.float_accuracy - 0.15

    def test_pulse_width_saves_energy(self, result):
        assert (
            result.at(8, "pulse-width").energy_per_mac_fj
            < result.at(8, "bit-serial").energy_per_mac_fj
        )

    def test_missing_point_raises(self, result):
        with pytest.raises(KeyError):
            result.at(3, "bit-serial")
