"""Tests for the model zoo and the analytic profiler."""

import numpy as np
import pytest

from repro import models, nn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(3)


def _x(*shape):
    return Tensor(RNG.normal(size=shape))


class TestVgg:
    def test_forward_shape(self):
        model = models.vgg8(num_classes=10, width_mult=0.0625, rng=np.random.default_rng(0))
        out = model(_x(2, 3, 16, 16))
        assert out.shape == (2, 10)

    def test_input_size_agnostic(self):
        model = models.vgg8(num_classes=5, width_mult=0.0625, rng=np.random.default_rng(0))
        assert model(_x(1, 3, 32, 32)).shape == (1, 5)
        assert model(_x(1, 3, 16, 16)).shape == (1, 5)

    def test_six_conv_layers(self):
        model = models.vgg8(rng=np.random.default_rng(0))
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 6

    def test_full_size_channels(self):
        model = models.vgg8(rng=np.random.default_rng(0))
        assert model.conv_channels == [128, 128, 256, 256, 512, 512]

    def test_odd_layer_count_rejected(self):
        with pytest.raises(ValueError):
            models.VGG(channels=(64, 64, 128), rng=np.random.default_rng(0))

    def test_feature_extractor_is_features(self):
        model = models.vgg8(rng=np.random.default_rng(0))
        assert model.feature_extractor() is model.features


class TestResNet:
    def test_forward_shape(self):
        model = models.resnet18(num_classes=7, width_mult=0.0625, rng=np.random.default_rng(0))
        assert model(_x(2, 3, 16, 16)).shape == (2, 7)

    def test_resnet18_param_count_magnitude(self):
        model = models.resnet18(rng=np.random.default_rng(0))
        # Published ResNet-18 ~11.7M; CIFAR-style stem gives ~11.2M.
        assert 10e6 < model.num_parameters() < 12e6

    def test_resnet18_block_count(self):
        model = models.resnet18(rng=np.random.default_rng(0))
        blocks = [m for m in model.modules() if isinstance(m, models.BasicBlock)]
        assert len(blocks) == 8

    def test_resnet8_smaller_than_resnet18(self):
        big = models.resnet18(width_mult=0.25, rng=np.random.default_rng(0))
        small = models.resnet8(width_mult=0.25, rng=np.random.default_rng(0))
        assert small.num_parameters() < big.num_parameters()

    def test_projection_shortcut_on_stride(self):
        block = models.BasicBlock(8, 16, stride=2, rng=np.random.default_rng(0))
        out = block(_x(1, 8, 8, 8))
        assert out.shape == (1, 16, 4, 4)

    def test_identity_shortcut_same_channels(self):
        block = models.BasicBlock(8, 8, rng=np.random.default_rng(0))
        assert isinstance(block.shortcut, nn.Identity)


class TestDarknet:
    def test_darknet19_has_19_convs_with_classifier_equivalent(self):
        backbone = models.darknet19(rng=np.random.default_rng(0))
        convs = [m for m in backbone.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 18  # +1 prediction conv in the detector = 19

    def test_downsample_factor(self):
        backbone = models.darknet19(rng=np.random.default_rng(0))
        assert backbone.downsample == 32
        tiny = models.darknet_tiny(rng=np.random.default_rng(0))
        assert tiny.downsample == 64

    def test_forward_shape(self):
        backbone = models.darknet_tiny(width_mult=0.05, rng=np.random.default_rng(0))
        out = backbone(_x(1, 3, 64, 64))
        assert out.shape[2] == 1
        assert out.shape[1] == backbone.out_channels

    def test_unknown_layer_kind_rejected(self):
        with pytest.raises(ValueError):
            models.DarknetBackbone((("dw", 32),), rng=np.random.default_rng(0))


class TestYolo:
    def test_detector_output_grid(self):
        det = models.tiny_yolo(num_classes=4, width_mult=0.05, rng=np.random.default_rng(0))
        out = det(_x(1, 3, 64, 64))
        assert out.shape[1] == 9  # 5 + 4 classes

    def test_yolo_v2_param_count_near_paper(self):
        det = models.yolo_v2(rng=np.random.default_rng(0))
        # The paper quotes 46M weights for YOLO (DarkNet-19).
        assert 40e6 < det.num_parameters() < 55e6

    def test_encode_targets_marks_centre_cell(self):
        boxes = [np.array([[0.1, 0.1, 0.3, 0.3]])]
        labels = [np.array([1])]
        target = models.yolo.encode_targets(boxes, labels, grid_size=4, num_classes=3)
        assert target.shape == (1, 8, 4, 4)
        assert target[0, 4, 0, 0] == 1.0  # objectness in cell (0,0)
        assert target[0, 6, 0, 0] == 1.0  # class 1 one-hot

    def test_encode_rejects_degenerate_box(self):
        with pytest.raises(ValueError):
            models.yolo.encode_targets(
                [np.array([[0.5, 0.5, 0.5, 0.6]])], [np.array([0])], 4, 2
            )

    def test_yolo_loss_decreases_on_perfect_prediction(self):
        rng = np.random.default_rng(0)
        boxes = [np.array([[0.2, 0.2, 0.6, 0.6]])]
        labels = [np.array([0])]
        targets = models.yolo.encode_targets(boxes, labels, 2, 2)
        bad = Tensor(rng.normal(size=(1, 7, 2, 2)))
        # Construct near-perfect logits for the target.
        good_np = np.full((1, 7, 2, 2), -6.0)
        obj = targets[0, 4] > 0
        good_np[0, 0][obj] = 0.0  # sigmoid -> 0.5 = tx
        good_np[0, 1][obj] = 0.0
        good_np[0, 2][obj] = np.log(0.4 / 0.6)  # sigmoid -> 0.4 = w
        good_np[0, 3][obj] = np.log(0.4 / 0.6)
        good_np[0, 4][obj] = 6.0
        good_np[0, 5][obj] = 6.0
        good = Tensor(good_np)
        loss_bad = models.yolo.yolo_loss(bad, targets).item()
        loss_good = models.yolo.yolo_loss(good, targets).item()
        assert loss_good < loss_bad

    def test_decode_predictions_thresholds(self):
        raw = np.full((1, 7, 2, 2), -8.0)
        raw[0, 4, 0, 0] = 8.0  # one confident cell
        raw[0, 5, 0, 0] = 4.0
        detections = models.decode_predictions(raw, score_threshold=0.5)
        assert len(detections) == 1
        assert len(detections[0]) == 1
        det = detections[0][0]
        assert det.class_id == 0
        assert 0 <= det.x1 <= det.x2 <= 1


class TestProfile:
    def test_profile_matches_runtime_params(self):
        model = models.vgg8(num_classes=10, width_mult=0.125, rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 16, 16))
        assert profile.total_params == model.num_parameters()

    def test_profile_matches_runtime_shape(self):
        model = models.resnet18(
            num_classes=6, width_mult=0.0625, rng=np.random.default_rng(0)
        )
        profile = models.profile_model(model, (2, 3, 16, 16))
        out = model(_x(2, 3, 16, 16))
        assert profile.output_shape == out.shape

    def test_macs_scale_with_resolution(self):
        model = models.vgg8(width_mult=0.0625, rng=np.random.default_rng(0))
        small = models.profile_model(model, (1, 3, 16, 16))
        big = models.profile_model(model, (1, 3, 32, 32))
        conv_small = sum(l.macs for l in small.layers if l.kind == "conv")
        conv_big = sum(l.macs for l in big.layers if l.kind == "conv")
        assert conv_big == pytest.approx(4 * conv_small, rel=0.01)

    def test_weight_layers_have_matrix_shapes(self):
        model = models.vgg8(width_mult=0.0625, rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 16, 16))
        for layer in profile.weight_layers():
            rows, cols = layer.matrix_shape
            assert rows > 0 and cols > 0

    def test_trainable_flag_respects_freeze(self):
        model = models.vgg8(width_mult=0.0625, rng=np.random.default_rng(0))
        model.features.freeze()
        profile = models.profile_model(model, (1, 3, 16, 16))
        frozen_convs = [l for l in profile.layers if l.kind == "conv"]
        assert all(not l.trainable for l in frozen_convs)
        assert profile.frozen_params > 0

    def test_summary_renders(self):
        model = models.vgg8(width_mult=0.0625, rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 16, 16))
        text = profile.summary()
        assert "total" in text and "conv" in text

    def test_bad_input_shape_rejected(self):
        model = models.vgg8(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            models.profile_model(model, (3, 16, 16))


class TestRegistry:
    def test_available_models(self):
        names = models.available_models()
        assert set(names) == {
            "vgg8",
            "resnet18",
            "resnet8",
            "mobilenet",
            "yolo",
            "tiny_yolo",
        }

    def test_build_by_name(self):
        model = models.build_model("resnet8", num_classes=4, width_mult=0.0625)
        assert model(_x(1, 3, 16, 16)).shape == (1, 4)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            models.build_model("alexnet")
