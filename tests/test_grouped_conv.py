"""Tests for grouped/depthwise convolution and the MobileNet model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import models, nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(5)


def reference_grouped_conv(x, w, groups, stride=1, padding=0):
    """Grouped conv as `groups` independent dense convolutions."""
    n, c, _, _ = x.shape
    oc = w.shape[0]
    c_g, oc_g = c // groups, oc // groups
    outs = []
    for g in range(groups):
        xg = Tensor(x[:, g * c_g : (g + 1) * c_g])
        wg = Tensor(w[g * oc_g : (g + 1) * oc_g])
        outs.append(F.conv2d(xg, wg, stride=stride, padding=padding).data)
    return np.concatenate(outs, axis=1)


class TestGroupedForward:
    def test_groups_1_unchanged(self):
        x = RNG.normal(size=(2, 4, 8, 8))
        w = RNG.normal(size=(6, 4, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), groups=1)
        ref = F.conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, ref.data)

    @pytest.mark.parametrize("groups", [2, 4])
    def test_matches_split_reference(self, groups):
        x = RNG.normal(size=(2, 8, 10, 10))
        w = RNG.normal(size=(8, 8 // groups, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), groups=groups, padding=1)
        ref = reference_grouped_conv(x, w, groups, padding=1)
        np.testing.assert_allclose(out.data, ref, atol=1e-12)

    def test_depthwise_is_per_channel_filter(self):
        x = RNG.normal(size=(1, 3, 6, 6))
        w = RNG.normal(size=(3, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), groups=3, padding=1)
        for channel in range(3):
            single = F.conv2d(
                Tensor(x[:, channel : channel + 1]),
                Tensor(w[channel : channel + 1]),
                padding=1,
            )
            np.testing.assert_allclose(
                out.data[:, channel], single.data[:, 0], atol=1e-12
            )

    def test_bias_applied(self):
        x = np.zeros((1, 2, 4, 4))
        w = np.zeros((2, 1, 1, 1))
        b = np.array([1.0, -2.0])
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), groups=2)
        assert out.data[0, 0].max() == pytest.approx(1.0)
        assert out.data[0, 1].min() == pytest.approx(-2.0)

    def test_invalid_groups(self):
        x = Tensor(np.zeros((1, 6, 4, 4)))
        with pytest.raises(ValueError, match="groups"):
            F.conv2d(x, Tensor(np.zeros((4, 2, 1, 1))), groups=4)
        with pytest.raises(ValueError, match="groups"):
            F.conv2d(x, Tensor(np.zeros((6, 3, 1, 1))), groups=0)

    def test_weight_group_shape_mismatch(self):
        x = Tensor(np.zeros((1, 6, 4, 4)))
        with pytest.raises(ValueError, match="per group"):
            F.conv2d(x, Tensor(np.zeros((6, 6, 1, 1))), groups=2)


class TestGroupedBackward:
    def _numeric_grad(self, f, array, eps=1e-6):
        grad = np.zeros_like(array)
        flat, gflat = array.ravel(), grad.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = f()
            flat[i] = orig - eps
            minus = f()
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
        return grad

    def test_gradients_match_numeric(self):
        x_data = RNG.normal(size=(1, 4, 5, 5))
        w_data = RNG.normal(size=(4, 2, 3, 3))
        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        out = F.conv2d(x, w, groups=2, padding=1)
        out.sum().backward()

        def loss_x():
            return F.conv2d(Tensor(x_data), Tensor(w_data), groups=2, padding=1).data.sum()

        gx = self._numeric_grad(loss_x, x_data)
        np.testing.assert_allclose(x.grad, gx, atol=1e-4)

        def loss_w():
            return F.conv2d(Tensor(x_data), Tensor(w_data), groups=2, padding=1).data.sum()

        gw = self._numeric_grad(loss_w, w_data)
        np.testing.assert_allclose(w.grad, gw, atol=1e-4)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_depthwise_grad_matches_dense_equivalent(self, seed):
        """Depthwise == dense conv with a block-diagonal kernel."""
        rng = np.random.default_rng(seed)
        c = 3
        x_data = rng.normal(size=(1, c, 4, 4))
        w_dw = rng.normal(size=(c, 1, 3, 3))
        w_dense = np.zeros((c, c, 3, 3))
        for i in range(c):
            w_dense[i, i] = w_dw[i, 0]

        x1 = Tensor(x_data.copy(), requires_grad=True)
        out1 = F.conv2d(x1, Tensor(w_dw), groups=c, padding=1)
        (out1 * out1).sum().backward()

        x2 = Tensor(x_data.copy(), requires_grad=True)
        out2 = F.conv2d(x2, Tensor(w_dense), padding=1)
        (out2 * out2).sum().backward()

        np.testing.assert_allclose(out1.data, out2.data, atol=1e-12)
        np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-10)


class TestConv2dLayerGroups:
    def test_weight_shape(self):
        conv = nn.Conv2d(8, 8, 3, groups=8, rng=np.random.default_rng(0))
        assert conv.weight.shape == (8, 1, 3, 3)

    def test_invalid_layer_groups(self):
        with pytest.raises(ValueError, match="groups"):
            nn.Conv2d(6, 8, 3, groups=4)

    def test_repr_mentions_groups(self):
        conv = nn.Conv2d(8, 8, 3, groups=2, rng=np.random.default_rng(0))
        assert "groups=2" in conv.extra_repr()


class TestMobileNet:
    def test_forward_shape(self):
        model = models.build_model(
            "mobilenet", num_classes=7, width_mult=0.25, rng=np.random.default_rng(0)
        )
        x = Tensor(RNG.normal(size=(2, 3, 32, 32)))
        out = model(x)
        assert out.shape == (2, 7)

    def test_profile_counts_grouped_params(self):
        model = models.build_model(
            "mobilenet", width_mult=0.25, rng=np.random.default_rng(0)
        )
        profile = models.profile_model(model, (1, 3, 32, 32))
        total = sum(p.size for p in model.parameters())
        # Profile counts conv/bn/linear weights; it must match the real
        # parameter count (grouped convs included).
        assert profile.total_params == total

    def test_depthwise_much_cheaper_than_dense(self):
        model = models.build_model(
            "mobilenet", width_mult=0.5, rng=np.random.default_rng(0)
        )
        profile = models.profile_model(model, (1, 3, 32, 32))
        convs = [l for l in profile.layers if l.kind == "conv"]
        depthwise = [l for l in convs if l.matrix_shape[0] == 9]
        dense = [l for l in convs if l.matrix_shape[0] > 9]
        assert depthwise and dense
        # Depthwise layers carry a small fraction of the conv weights.
        assert sum(l.params for l in depthwise) < 0.2 * sum(
            l.params for l in dense
        )

    def test_registry_knows_mobilenet(self):
        assert "mobilenet" in models.available_models()

    def test_trains_one_step(self):
        model = models.build_model(
            "mobilenet", num_classes=4, width_mult=0.25, rng=np.random.default_rng(0)
        )
        x = Tensor(RNG.normal(size=(4, 3, 16, 16)))
        y = np.array([0, 1, 2, 3])
        logits = model(x)
        loss = F.cross_entropy(logits, y)
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.requires_grad]
        assert all(g is not None for g in grads)
