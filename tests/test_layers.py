"""Unit tests for the Module system and layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(7)


def _x(*shape):
    return Tensor(RNG.normal(size=shape))


class TestModuleSystem:
    def _small_model(self):
        rng = np.random.default_rng(0)
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 8 * 8, 5, rng=rng),
        )

    def test_named_parameters_unique_and_complete(self):
        model = self._small_model()
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        # conv w/b, bn w/b, linear w/b
        assert len(names) == 6

    def test_num_parameters(self):
        model = self._small_model()
        expected = 4 * 3 * 9 + 4 + 4 + 4 + 5 * 4 * 64 + 5
        assert model.num_parameters() == expected

    def test_freeze_unfreeze(self):
        model = self._small_model()
        model.freeze()
        assert model.num_parameters(trainable_only=True) == 0
        model.unfreeze()
        assert model.num_parameters(trainable_only=True) == model.num_parameters()

    def test_train_eval_propagates(self):
        model = self._small_model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = self._small_model()
        out = model(_x(2, 3, 8, 8))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_round_trip(self):
        model_a = self._small_model()
        model_b = self._small_model()
        # Perturb B so the load is observable.
        for p in model_b.parameters():
            p.data = p.data + 1.0
        model_b.load_state_dict(model_a.state_dict())
        x = _x(1, 3, 8, 8)
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_state_dict_includes_buffers(self):
        model = self._small_model()
        state = model.state_dict()
        assert any("running_mean" in key for key in state)

    def test_load_state_dict_missing_key_raises(self):
        model = self._small_model()
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_shape_mismatch_raises(self):
        model = self._small_model()
        state = model.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_named_modules_prefixes(self):
        model = self._small_model()
        names = [n for n, _ in model.named_modules()]
        assert "" in names and "0" in names

    def test_repr_contains_children(self):
        assert "Conv2d" in repr(self._small_model())


class TestSequential:
    def test_len_and_getitem(self):
        seq = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert isinstance(seq[-1], nn.Tanh)


class TestModuleList:
    def test_append_and_iterate(self):
        ml = nn.ModuleList([nn.ReLU()])
        ml.append(nn.Tanh())
        assert len(ml) == 2
        assert [type(m).__name__ for m in ml] == ["ReLU", "Tanh"]

    def test_parameters_discovered(self):
        ml = nn.ModuleList([nn.Linear(3, 4, rng=np.random.default_rng(0))])
        assert len(list(ml.parameters())) == 2

    def test_call_raises(self):
        with pytest.raises(RuntimeError):
            nn.ModuleList()(None)


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        assert conv(_x(2, 3, 16, 16)).shape == (2, 8, 8, 8)

    def test_no_bias(self):
        conv = nn.Conv2d(3, 8, 3, bias=False, rng=np.random.default_rng(0))
        assert conv.bias is None
        assert len(list(conv.parameters())) == 1

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 4, 3)

    def test_deterministic_with_seeded_rng(self):
        a = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(5))
        b = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestLinear:
    def test_forward_value(self):
        lin = nn.Linear(3, 2, rng=np.random.default_rng(0))
        x = _x(4, 3)
        expected = x.data @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(lin(x).data, expected)

    def test_no_bias(self):
        lin = nn.Linear(3, 2, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None


class TestBatchNorm2d:
    def test_normalizes_in_train_mode(self):
        bn = nn.BatchNorm2d(4)
        x = _x(8, 4, 6, 6)
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-3)

    def test_running_stats_update(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(RNG.normal(loc=3.0, size=(16, 2, 4, 4)))
        for _ in range(50):
            bn(x)
        assert abs(bn.running_mean.mean() - 3.0) < 0.3

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        x = _x(8, 2, 4, 4)
        for _ in range(10):
            bn(x)
        bn.eval()
        out_a = bn(x)
        out_b = bn(_x(8, 2, 4, 4) * 0 + Tensor(x.data))
        np.testing.assert_allclose(out_a.data, out_b.data)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(_x(3, 2))

    def test_gradients_flow_to_affine_params(self):
        bn = nn.BatchNorm2d(2)
        out = bn(_x(4, 2, 3, 3))
        out.sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None


class TestStatelessLayers:
    def test_flatten(self):
        assert nn.Flatten()(_x(2, 3, 4, 5)).shape == (2, 60)

    def test_identity(self):
        x = _x(3, 3)
        assert nn.Identity()(x) is x

    def test_pools(self):
        assert nn.MaxPool2d(2)(_x(1, 2, 8, 8)).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(_x(1, 2, 8, 8)).shape == (1, 2, 4, 4)
        assert nn.GlobalAvgPool2d()(_x(1, 2, 8, 8)).shape == (1, 2, 1, 1)

    def test_dropout_respects_eval(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = _x(5, 5)
        assert drop(x) is x

    def test_activation_modules(self):
        x = _x(3)
        np.testing.assert_allclose(nn.ReLU()(x).data, np.maximum(x.data, 0))
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh(x.data))
        np.testing.assert_allclose(
            nn.Sigmoid()(x).data, 1 / (1 + np.exp(-x.data))
        )
        np.testing.assert_allclose(
            nn.LeakyReLU(0.2)(x).data, np.where(x.data > 0, x.data, 0.2 * x.data)
        )
