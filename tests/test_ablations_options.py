"""Tests for the ablation studies and the Options I-IV comparison."""

import numpy as np
import pytest

from repro.experiments import ablations, options_study


class TestAdcSweep:
    def test_error_monotone_in_bits(self):
        rows = ablations.adc_resolution_sweep(bits_list=(4, 6, 8), n_vectors=4)
        errors = [row["rel_error"] for row in rows]
        assert errors[0] > errors[1] > errors[2]

    def test_8bit_exact_for_128_rows(self):
        rows = ablations.adc_resolution_sweep(bits_list=(8,), n_vectors=2)
        assert rows[0]["rel_error"] < 1e-12

    def test_energy_reported(self):
        rows = ablations.adc_resolution_sweep(bits_list=(5,), n_vectors=2)
        assert rows[0]["energy_per_mac_fj"] > 0


class TestNoiseSweep:
    def test_error_grows_with_noise(self):
        rows = ablations.bitline_noise_sweep(sigmas=(0.0, 4.0))
        assert rows[0]["rel_error"] < rows[1]["rel_error"]

    def test_zero_noise_zero_error_with_8bit_adc(self):
        rows = ablations.bitline_noise_sweep(sigmas=(0.0,))
        assert rows[0]["rel_error"] < 1e-12


class TestPackingAblation:
    def test_packing_saves_subarrays(self):
        report = ablations.packing_ablation(width_mult=0.125)
        assert report["subarray_saving"] > 1.0
        assert report["packed_array_utilization"] > report["naive_array_utilization"]


class TestDutyCycle:
    def test_rom_advantage_diverges_when_idle(self):
        rows = ablations.duty_cycle_ablation(duty_cycles=(1.0, 0.01))
        assert rows[1]["rom_advantage"] > rows[0]["rom_advantage"]
        assert all(row["rom_advantage"] >= 1.0 for row in rows)


@pytest.mark.slow
class TestTrainingAblations:
    CONFIG = ablations.TrainAblationConfig(
        pretrain_epochs=5, transfer_epochs=4, n_train=128, n_test=96
    )

    def test_branch_init_zero_at_least_as_good(self):
        result = ablations.branch_init_ablation(self.CONFIG)
        assert result.source_accuracy > 0.6
        # Zero init starts from the pretrained function; random init
        # perturbs it.  Allow noise, but zero init must stay competitive.
        assert (
            result.accuracies["zero_init"]
            >= result.accuracies["random_init"] - 0.10
        )

    def test_projection_ablation_frozen_competitive(self):
        result = ablations.projection_ablation(self.CONFIG)
        # The ROM-deployable frozen projections must not collapse
        # relative to (SRAM-hungry) trainable projections.
        assert (
            result.accuracies["frozen_projections"]
            >= result.accuracies["trainable_projections"] - 0.15
        )


@pytest.mark.slow
class TestOptionsStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return options_study.run(options_study.fast_config())

    def test_all_options_present(self, result):
        assert set(result.by_option()) == {
            "all_sram",
            "rosl",
            "atl",
            "spwd",
            "rebranch",
        }

    def test_rebranch_smallest_trainable_area_after_rosl(self, result):
        rows = result.by_option()
        # SPWD area saving is capped at the bit ratio (4x -> 0.25+);
        # ReBranch goes far below it.
        assert rows["rebranch"].normalized_area < rows["spwd"].normalized_area
        assert rows["rebranch"].normalized_area < rows["atl"].normalized_area

    def test_rebranch_beats_rosl_accuracy(self, result):
        rows = result.by_option()
        # ROSL's weakness (paper): no advantage once training data exists.
        assert rows["rebranch"].accuracy >= rows["rosl"].accuracy

    def test_gradient_options_above_chance(self, result):
        rows = result.by_option()
        for option in ("all_sram", "atl", "spwd", "rebranch"):
            assert rows[option].accuracy > 0.2, option

    def test_source_learned(self, result):
        assert result.source_accuracy > 0.7
