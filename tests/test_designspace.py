"""Tests for the ADC-count / activated-rows design space (section 4.3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim import (
    AdcSpec,
    CimMacro,
    DesignPoint,
    DesignSpaceConfig,
    MacroConfig,
    explore,
    pareto_frontier,
    partial_activation_matmul,
)

RNG = np.random.default_rng(11)


def make_macro(rows=128, cols=16, n_adcs=16, adc_bits=5, seed=0):
    config = MacroConfig(rows=rows, n_adcs=n_adcs, adc=AdcSpec(bits=adc_bits))
    weights = RNG.integers(-128, 128, size=(rows, cols))
    return CimMacro(config, weights, rng=np.random.default_rng(seed))


class TestPartialActivation:
    def test_full_activation_matches_plain_matmul(self):
        macro = make_macro()
        x = RNG.integers(0, 256, size=(128, 4))
        full, _ = partial_activation_matmul(macro, x, 128)
        plain, _ = macro.matmul(x)
        np.testing.assert_array_equal(full, plain)

    def test_single_row_groups_are_exact(self):
        """With one row on, every count is 0/1 — no quantization error."""
        macro = make_macro()
        x = RNG.integers(0, 256, size=(128, 3))
        out, _ = partial_activation_matmul(macro, x, 1)
        np.testing.assert_array_equal(out, macro.exact_matmul(x))

    def test_small_groups_exact_within_adc_codes(self):
        """Groups of <= 2^bits - 1 rows resolve every count exactly."""
        macro = make_macro(adc_bits=5)
        x = RNG.integers(0, 256, size=(128, 3))
        out, _ = partial_activation_matmul(macro, x, 31)
        np.testing.assert_array_equal(out, macro.exact_matmul(x))

    def test_fewer_activated_rows_never_less_accurate(self):
        macro = make_macro()
        x = RNG.integers(0, 256, size=(128, 8))
        exact = macro.exact_matmul(x)
        err = {}
        for w in (16, 128):
            out, _ = partial_activation_matmul(macro, x, w)
            err[w] = np.abs(out - exact).mean()
        assert err[16] <= err[128]

    def test_latency_grows_with_group_count(self):
        macro = make_macro()
        x = RNG.integers(0, 256, size=(128, 2))
        _, s16 = partial_activation_matmul(macro, x, 16)
        _, s128 = partial_activation_matmul(macro, x, 128)
        assert s16.latency_ns == pytest.approx(8 * s128.latency_ns)

    def test_macs_conserved_across_grouping(self):
        macro = make_macro()
        x = RNG.integers(0, 256, size=(128, 2))
        for w in (1, 16, 33, 128):
            _, stats = partial_activation_matmul(macro, x, w)
            assert stats.macs == 128 * 16 * 2

    def test_uneven_group_split(self):
        macro = make_macro(rows=100)
        x = RNG.integers(0, 256, size=(100, 2))
        out, _ = partial_activation_matmul(macro, x, 31)
        np.testing.assert_array_equal(out, macro.exact_matmul(x))

    def test_oversized_group_clamps_to_rows(self):
        macro = make_macro(rows=64)
        x = RNG.integers(0, 256, size=(64, 2))
        out, stats = partial_activation_matmul(macro, x, 512)
        plain, plain_stats = macro.matmul(x)
        np.testing.assert_array_equal(out, plain)
        assert stats.cycles == plain_stats.cycles

    def test_vector_input(self):
        macro = make_macro(rows=32)
        x = RNG.integers(0, 256, size=32)
        out, _ = partial_activation_matmul(macro, x, 8)
        assert out.shape == (16,)

    def test_invalid_activated_rows(self):
        macro = make_macro(rows=32)
        with pytest.raises(ValueError, match="activated_rows"):
            partial_activation_matmul(macro, np.zeros(32, dtype=int), 0)

    def test_row_mismatch_rejected(self):
        macro = make_macro(rows=32)
        with pytest.raises(ValueError, match="rows"):
            partial_activation_matmul(macro, np.zeros(33, dtype=int), 8)


class TestPareto:
    def point(self, err, lat, area):
        return DesignPoint(
            n_adcs=16,
            activated_rows=32,
            rel_error=err,
            latency_ns=lat,
            energy_per_mac_fj=1.0,
            adc_area_mm2=area,
            throughput_gops=1.0,
        )

    def test_dominance(self):
        a = self.point(0.1, 10.0, 1.0)
        b = self.point(0.2, 20.0, 2.0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_no_self_dominance(self):
        a = self.point(0.1, 10.0, 1.0)
        assert not a.dominates(self.point(0.1, 10.0, 1.0))

    def test_frontier_filters_dominated(self):
        a = self.point(0.1, 10.0, 1.0)
        b = self.point(0.2, 20.0, 2.0)  # dominated by a
        c = self.point(0.05, 30.0, 3.0)  # best error, worst elsewhere
        frontier = pareto_frontier([a, b, c])
        assert a in frontier and c in frontier and b not in frontier

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1), st.floats(1, 100), st.floats(0.1, 10)
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_frontier_is_mutually_non_dominated(self, triples):
        points = [self.point(*t) for t in triples]
        frontier = pareto_frontier(points)
        assert frontier  # something always survives
        for p in frontier:
            assert not any(q.dominates(p) for q in points)


class TestExplore:
    def test_grid_is_complete(self):
        config = DesignSpaceConfig(
            adc_counts=(16, 32), activated_rows=(32, 128), n_vectors=4
        )
        result = explore(config)
        assert len(result.points) == 4
        assert result.at(16, 32).rel_error <= result.at(16, 128).rel_error

    def test_more_adcs_reduce_latency(self):
        config = DesignSpaceConfig(
            adc_counts=(16, 64), activated_rows=(128,), n_vectors=4
        )
        result = explore(config)
        assert result.at(64, 128).latency_ns < result.at(16, 128).latency_ns

    def test_adc_area_scales_with_count(self):
        config = DesignSpaceConfig(
            adc_counts=(8, 64), activated_rows=(128,), n_vectors=2
        )
        result = explore(config)
        assert result.at(64, 128).adc_area_mm2 == pytest.approx(
            8 * result.at(8, 128).adc_area_mm2
        )

    def test_uneven_adc_share_rejected(self):
        config = DesignSpaceConfig(adc_counts=(17,), n_vectors=2)
        with pytest.raises(ValueError, match="evenly"):
            explore(config)

    def test_missing_point_raises(self):
        config = DesignSpaceConfig(
            adc_counts=(16,), activated_rows=(128,), n_vectors=2
        )
        result = explore(config)
        with pytest.raises(KeyError):
            result.at(99, 1)

    def test_frontier_nonempty(self):
        config = DesignSpaceConfig(
            adc_counts=(16, 32), activated_rows=(16, 128), n_vectors=4
        )
        result = explore(config)
        assert result.frontier()
