"""Tests for the area-constrained D/U search (section 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rebranch import (
    DuCandidate,
    DuEvaluation,
    default_candidates,
    search,
    select_minimum_area,
)


def evaluation(d, u, accuracy, sram):
    return DuEvaluation(
        candidate=DuCandidate(d, u),
        accuracy=accuracy,
        sram_area_mm2=sram,
        total_area_mm2=sram * 1.5,
        trainable_params=int(sram * 1e6),
    )


class TestCandidates:
    def test_default_grid_bounds(self):
        candidates = default_candidates(max_du=64)
        assert all(4 <= c.du <= 64 for c in candidates)
        assert DuCandidate(4, 4) in candidates
        assert DuCandidate(1, 16) in candidates

    def test_symmetric_only(self):
        candidates = default_candidates(max_du=64, symmetric_only=True)
        assert candidates == [DuCandidate(2, 2), DuCandidate(4, 4), DuCandidate(8, 8)]

    def test_invalid_max(self):
        with pytest.raises(ValueError, match="max_du"):
            default_candidates(max_du=2)

    def test_candidate_properties(self):
        candidate = DuCandidate(2, 8)
        assert candidate.du == 16
        assert candidate.asymmetry == 4.0
        assert DuCandidate(4, 4).asymmetry == 1.0

    def test_invalid_candidate(self):
        with pytest.raises(ValueError, match="ratios"):
            DuCandidate(0, 4)


class TestSelection:
    def test_absolute_floor(self):
        evals = [
            evaluation(2, 2, 0.92, 4.0),
            evaluation(4, 4, 0.91, 1.0),
            evaluation(8, 8, 0.80, 0.25),
        ]
        chosen = select_minimum_area(evals, accuracy_floor=0.90)
        assert chosen.candidate == DuCandidate(4, 4)

    def test_tolerance_relative_to_best(self):
        evals = [
            evaluation(2, 2, 0.92, 4.0),
            evaluation(4, 4, 0.91, 1.0),
            evaluation(8, 8, 0.80, 0.25),
        ]
        chosen = select_minimum_area(evals, tolerance=0.015)
        assert chosen.candidate == DuCandidate(4, 4)

    def test_loose_tolerance_takes_smallest(self):
        evals = [
            evaluation(4, 4, 0.91, 1.0),
            evaluation(8, 8, 0.80, 0.25),
        ]
        chosen = select_minimum_area(evals, tolerance=0.5)
        assert chosen.candidate == DuCandidate(8, 8)

    def test_infeasible_floor_raises(self):
        evals = [evaluation(4, 4, 0.5, 1.0)]
        with pytest.raises(ValueError, match="no candidate reaches"):
            select_minimum_area(evals, accuracy_floor=0.99)

    def test_requires_exactly_one_criterion(self):
        evals = [evaluation(4, 4, 0.9, 1.0)]
        with pytest.raises(ValueError, match="exactly one"):
            select_minimum_area(evals)
        with pytest.raises(ValueError, match="exactly one"):
            select_minimum_area(evals, accuracy_floor=0.5, tolerance=0.1)

    def test_area_tie_breaks_to_accuracy(self):
        evals = [
            evaluation(2, 8, 0.88, 1.0),
            evaluation(4, 4, 0.92, 1.0),
        ]
        chosen = select_minimum_area(evals, tolerance=0.5)
        assert chosen.candidate == DuCandidate(4, 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no candidates"):
            select_minimum_area([], tolerance=0.1)

    @given(
        st.lists(
            st.tuples(st.floats(0, 1), st.floats(0.01, 10)),
            min_size=1,
            max_size=12,
        ),
        st.floats(0, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_selected_is_feasible_and_minimal(self, rows, tolerance):
        evals = [
            evaluation(4, 4, acc, area) for acc, area in rows
        ]
        chosen = select_minimum_area(evals, tolerance=tolerance)
        floor = max(e.accuracy for e in evals) - tolerance
        assert chosen.accuracy >= floor
        feasible_areas = [
            e.sram_area_mm2 for e in evals if e.accuracy >= floor
        ]
        assert chosen.sram_area_mm2 == min(feasible_areas)


class TestSearchDriver:
    def test_search_with_synthetic_evaluator(self):
        """A synthetic accuracy/area landscape: accuracy decays with D*U,
        SRAM area shrinks with D*U — the classic Fig. 11(a) shape."""

        def evaluate(candidate):
            penalty = 0.002 * candidate.du + 0.01 * (candidate.asymmetry - 1)
            return evaluation(
                candidate.d,
                candidate.u,
                accuracy=0.93 - penalty,
                sram=16.0 / candidate.du,
            )

        result = search(evaluate, tolerance=0.05)
        assert result.selected is not None
        # The feasible compressions are du <= 25; the largest of those
        # wins on area, and the symmetric split wins the tie — the
        # paper's D=U=4 answer.
        assert result.selected.candidate == DuCandidate(4, 4)

    def test_frontier_monotone(self):
        def evaluate(candidate):
            return evaluation(
                candidate.d,
                candidate.u,
                accuracy=0.9 - 0.001 * candidate.du,
                sram=16.0 / candidate.du,
            )

        result = search(evaluate, tolerance=0.2)
        frontier = sorted(result.frontier(), key=lambda e: e.sram_area_mm2)
        accs = [e.accuracy for e in frontier]
        assert accs == sorted(accs)

    @pytest.mark.slow
    def test_training_based_search_runs(self):
        from repro.experiments import du_search

        config = du_search.fast_config()
        config.candidates = ((2, 2), (8, 8))
        config.pretrain_epochs = 3
        config.transfer_epochs = 2
        config.n_train = 96
        config.n_test = 96
        result = du_search.run(config)
        assert len(result.evaluations) == 2
        assert result.selected is not None
        small, large = result.evaluations
        assert large.sram_area_mm2 < small.sram_area_mm2
