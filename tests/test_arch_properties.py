"""Property-based tests on the architecture accounting invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import models
from repro.arch import (
    AreaBreakdown,
    EnergyBreakdown,
    RomChipletSystem,
    TrainingCostModel,
    YolocSystem,
)
from repro.arch.mapping import map_model


@pytest.fixture(scope="module")
def vgg_profile():
    model = models.build_model("vgg8", rng=np.random.default_rng(0))
    return models.profile_model(model, (1, 3, 32, 32))


positive = st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False)


class TestBreakdownInvariants:
    @given(positive, positive, positive, positive, positive)
    @settings(max_examples=60, deadline=None)
    def test_energy_fractions_sum_to_one(self, a, b, c, d, e):
        breakdown = EnergyBreakdown(
            cim_pj=a, peripheral_pj=b, buffer_pj=c, dram_pj=d, interconnect_pj=e
        )
        fractions = breakdown.fractions()
        if breakdown.total_pj > 0:
            assert sum(fractions.values()) == pytest.approx(1.0)
        else:
            assert fractions == {}

    @given(positive, positive, positive, positive, positive)
    @settings(max_examples=60, deadline=None)
    def test_area_fractions_sum_to_one(self, a, b, c, d, e):
        breakdown = AreaBreakdown(
            array_mm2=a, adc_mm2=b, rw_mm2=c, buffer_mm2=d, ctrl_mm2=e
        )
        fractions = breakdown.fractions()
        if breakdown.total_mm2 > 0:
            assert sum(fractions.values()) == pytest.approx(1.0)
        assert breakdown.total_cm2 == pytest.approx(breakdown.total_mm2 / 100)

    @given(positive, positive, positive, positive, positive)
    @settings(max_examples=40, deadline=None)
    def test_energy_total_is_component_sum(self, a, b, c, d, e):
        breakdown = EnergyBreakdown(
            cim_pj=a, peripheral_pj=b, buffer_pj=c, dram_pj=d, interconnect_pj=e
        )
        assert breakdown.total_pj == pytest.approx(a + b + c + d + e)


class TestMappingInvariants:
    @given(st.sampled_from([1, 2, 4, 8, 16]), st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_yoloc_mapping_conserves_trunk_macs(self, d, u):
        model = models.build_model("vgg8", rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 32, 32))
        yoloc = map_model(profile, "yoloc", d=d, u=u)
        all_sram = map_model(profile, "all_sram")
        # The branch only ever adds MACs on top of the trunk's.
        assert yoloc.total_macs >= all_sram.total_macs
        # Stronger compression means fewer SRAM-resident weights.
        assert 0 < yoloc.trainable_fraction <= 1

    def test_stronger_compression_fewer_sram_bits(self, vgg_profile):
        loose = map_model(vgg_profile, "yoloc", d=2, u=2)
        tight = map_model(vgg_profile, "yoloc", d=8, u=8)
        assert tight.sram_weight_bits < loose.sram_weight_bits

    def test_all_sram_has_no_rom(self, vgg_profile):
        mapping = map_model(vgg_profile, "all_sram")
        assert mapping.rom_weight_bits == 0
        assert mapping.rom_macs == 0


class TestSystemMonotonicity:
    @given(st.sampled_from([2, 4, 8]))
    @settings(max_examples=8, deadline=None)
    def test_rebranch_training_never_costlier_than_full(self, du):
        model = models.build_model("vgg8", rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 32, 32))
        cost_model = TrainingCostModel()
        full = cost_model.step_cost(profile, "full")
        rebranch = cost_model.step_cost(profile, "rebranch", d=du, u=du)
        assert rebranch.total_pj <= full.total_pj
        assert rebranch.trainable_bits < full.trainable_bits

    def test_yoloc_report_latency_positive(self, vgg_profile):
        report = YolocSystem().evaluate(vgg_profile)
        assert report.latency_ns > 0
        assert report.tops_per_w > 0
        assert report.throughput_gops > 0

    @given(st.sampled_from([20.0, 40.0, 80.0, 160.0]))
    @settings(max_examples=8, deadline=None)
    def test_rom_chiplet_count_monotone_in_die_area(self, die_area):
        model = models.build_model("vgg8", rng=np.random.default_rng(0))
        profile = models.profile_model(model, (1, 3, 32, 32))
        smaller = RomChipletSystem(die_area_mm2=die_area).n_chips_for(profile)
        larger = RomChipletSystem(die_area_mm2=2 * die_area).n_chips_for(profile)
        assert larger <= smaller
