"""Tests for the word-line activation encodings (section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cim import (
    AdcSpec,
    BitlineModel,
    BitSerialEncoding,
    CimMacro,
    MacroConfig,
    PulseWidthEncoding,
    UnaryPulseEncoding,
    default_encodings,
    encoding_by_name,
)
from repro.experiments import encoding_study

RNG = np.random.default_rng(7)


def small_macro(input_bits=2, rows=4, cols=2, adc_bits=8, signed_inputs=False, **kw):
    """A macro small enough that the ADC resolves every count exactly."""
    config = MacroConfig(
        rows=max(rows, 1),
        phys_columns=cols * 8,
        n_adcs=cols * 8 if (cols * 8) % 16 else 16,
        adc=AdcSpec(bits=adc_bits),
        input_bits=input_bits,
        signed_inputs=signed_inputs,
        **kw,
    )
    weights = RNG.integers(-128, 128, size=(rows, cols))
    return CimMacro(config, weights, rng=np.random.default_rng(3))


class TestExactness:
    """With a fine-enough ADC every encoding reduces to exact integers."""

    def test_bit_serial_exact(self):
        macro = small_macro(input_bits=4, rows=8, adc_bits=8)
        x = RNG.integers(0, 16, size=(8, 5))
        approx, _ = BitSerialEncoding().matmul(macro, x)
        np.testing.assert_array_equal(approx, macro.exact_matmul(x))

    def test_unary_exact_when_adc_resolves(self):
        # full scale = rows * (2^b - 1) = 4 * 3 = 12 <= 255 levels.
        macro = small_macro(input_bits=2, rows=4, adc_bits=8)
        x = RNG.integers(0, 4, size=(4, 6))
        approx, _ = UnaryPulseEncoding().matmul(macro, x)
        np.testing.assert_allclose(approx, macro.exact_matmul(x), atol=1e-9)

    def test_pulse_width_without_jitter_matches_unary(self):
        macro_a = small_macro(input_bits=2, rows=4)
        macro_b = CimMacro(
            macro_a.config, macro_a.weights, rng=np.random.default_rng(3)
        )
        x = RNG.integers(0, 4, size=(4, 6))
        unary, _ = UnaryPulseEncoding().matmul(macro_a, x)
        pw, _ = PulseWidthEncoding(jitter_sigma_slots=0.0).matmul(macro_b, x)
        np.testing.assert_allclose(pw, unary, atol=1e-9)

    def test_vector_input_round_trip(self):
        macro = small_macro(input_bits=2, rows=4)
        x = np.array([0, 1, 2, 3])
        out, _ = UnaryPulseEncoding().matmul(macro, x)
        assert out.shape == (macro.cols_used,)
        np.testing.assert_allclose(out, macro.exact_matmul(x), atol=1e-9)


class TestValidation:
    def test_unary_rejects_signed_inputs(self):
        macro = small_macro(input_bits=4, rows=8, signed_inputs=True)
        x = RNG.integers(-8, 8, size=(8, 2))
        with pytest.raises(ValueError, match="unsigned"):
            UnaryPulseEncoding().matmul(macro, x)

    def test_pulse_width_rejects_signed_inputs(self):
        macro = small_macro(input_bits=4, rows=8, signed_inputs=True)
        x = RNG.integers(-8, 8, size=(8, 2))
        with pytest.raises(ValueError, match="unsigned"):
            PulseWidthEncoding().matmul(macro, x)

    def test_out_of_range_input_rejected(self):
        macro = small_macro(input_bits=2, rows=4)
        with pytest.raises(ValueError, match="input codes"):
            UnaryPulseEncoding().matmul(macro, np.full((4, 1), 4))

    def test_wrong_row_count_rejected(self):
        macro = small_macro(input_bits=2, rows=4)
        with pytest.raises(ValueError, match="rows"):
            UnaryPulseEncoding().matmul(macro, np.zeros((5, 1), dtype=int))

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            PulseWidthEncoding(jitter_sigma_slots=-0.1)

    def test_registry_lookup(self):
        assert isinstance(encoding_by_name("bit-serial"), BitSerialEncoding)
        assert isinstance(encoding_by_name("unary-pulse"), UnaryPulseEncoding)
        pw = encoding_by_name("pulse-width", jitter_sigma_slots=0.5)
        assert pw.jitter_sigma_slots == 0.5

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError, match="unknown encoding"):
            encoding_by_name("pwm-2")

    def test_default_encodings_cover_design_space(self):
        names = [e.name for e in default_encodings()]
        assert names == ["bit-serial", "unary-pulse", "pulse-width"]


class TestTradeoffShape:
    """The speed-accuracy axes the paper's remark predicts."""

    def test_cycle_counts(self):
        assert BitSerialEncoding().wl_cycles(8) == 8
        assert UnaryPulseEncoding().wl_cycles(8) == 255
        assert PulseWidthEncoding().wl_cycles(8) == 1

    def test_conversion_counts(self):
        assert BitSerialEncoding().conversions_per_column(8) == 8
        assert UnaryPulseEncoding().conversions_per_column(8) == 1
        assert PulseWidthEncoding().conversions_per_column(8) == 1

    def test_pulse_encodings_save_adc_energy(self):
        config = MacroConfig(input_bits=8)
        weights = RNG.integers(-128, 128, size=(128, 16))
        x = RNG.integers(0, 256, size=(128, 8))
        macro = CimMacro(config, weights, rng=np.random.default_rng(0))
        _, serial = BitSerialEncoding().matmul(macro, x)
        _, unary = UnaryPulseEncoding().matmul(macro, x)
        assert unary.adc_energy_fj == pytest.approx(serial.adc_energy_fj / 8)

    def test_unary_slower_than_bit_serial_at_8_bits(self):
        config = MacroConfig(input_bits=8)
        weights = RNG.integers(-128, 128, size=(128, 16))
        x = RNG.integers(0, 256, size=(128, 4))
        macro = CimMacro(config, weights, rng=np.random.default_rng(0))
        _, serial = BitSerialEncoding().matmul(macro, x)
        _, unary = UnaryPulseEncoding().matmul(macro, x)
        assert unary.latency_ns > serial.latency_ns

    def test_pulse_width_fastest(self):
        config = MacroConfig(input_bits=8)
        weights = RNG.integers(-128, 128, size=(128, 16))
        x = RNG.integers(0, 256, size=(128, 4))
        macro = CimMacro(config, weights, rng=np.random.default_rng(0))
        _, serial = BitSerialEncoding().matmul(macro, x)
        _, pw = PulseWidthEncoding(jitter_sigma_slots=0.0).matmul(macro, x)
        assert pw.latency_ns < serial.latency_ns

    def test_jitter_degrades_pulse_width(self):
        rows = encoding_study.jitter_sweep(sigmas=(0.0, 4.0))
        assert rows[1]["rel_error"] > rows[0]["rel_error"]

    def test_jitter_hidden_behind_coarse_adc(self):
        """Behind the macro's 5-bit ADC, quantization dominates jitter."""
        config = encoding_study.EncodingStudyConfig(adc_bits=5)
        rows = encoding_study.jitter_sweep(sigmas=(0.0, 0.5), config=config)
        assert rows[1]["rel_error"] == pytest.approx(
            rows[0]["rel_error"], rel=0.05
        )

    def test_stats_macs_match(self):
        config = MacroConfig(input_bits=4)
        weights = RNG.integers(-128, 128, size=(32, 4))
        x = RNG.integers(0, 16, size=(32, 3))
        macro = CimMacro(config, weights, rng=np.random.default_rng(0))
        for encoding in default_encodings():
            _, stats = encoding.matmul(macro, x)
            assert stats.macs == 32 * 4 * 3

    def test_zero_input_zero_activity(self):
        config = MacroConfig(input_bits=4)
        weights = RNG.integers(-128, 128, size=(16, 2))
        macro = CimMacro(config, weights, rng=np.random.default_rng(0))
        x = np.zeros((16, 2), dtype=int)
        for encoding in (UnaryPulseEncoding(), PulseWidthEncoding()):
            out, stats = encoding.matmul(macro, x)
            np.testing.assert_allclose(out, 0.0, atol=1e-9)
            assert stats.row_activations == 0
            assert stats.wl_energy_fj == 0.0


class TestEncodingProperties:
    @given(
        st.integers(1, 6),
        st.integers(2, 4),
        st.integers(1, 4),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_unary_exact_on_small_macros(self, rows, input_bits, cols, seed):
        """Whenever rows*(2^b-1) fits the ADC code space, unary is exact."""
        rng = np.random.default_rng(seed)
        config = MacroConfig(
            rows=max(rows, 1),
            phys_columns=cols * 8,
            n_adcs=cols * 8,
            adc=AdcSpec(bits=10),
            input_bits=input_bits,
        )
        weights = rng.integers(-128, 128, size=(rows, cols))
        macro = CimMacro(config, weights, rng=np.random.default_rng(seed + 1))
        x = rng.integers(0, 2**input_bits, size=(rows, 3))
        out, _ = UnaryPulseEncoding().matmul(macro, x)
        np.testing.assert_allclose(out, macro.exact_matmul(x), atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_noise_free_results_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        config = MacroConfig(input_bits=4)
        weights = rng.integers(-128, 128, size=(64, 8))
        x = rng.integers(0, 16, size=(64, 2))
        outs = []
        for trial in range(2):
            macro = CimMacro(config, weights, rng=np.random.default_rng(trial))
            out, _ = UnaryPulseEncoding().matmul(macro, x)
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])


class TestEncodingStudy:
    def test_fast_study_runs_all_corners(self):
        result = encoding_study.run(encoding_study.fast_config())
        keys = result.by_key()
        assert len(result.points) == 9
        assert ("bit-serial", 8) in keys and ("pulse-width", 2) in keys

    def test_study_rows_shape(self):
        result = encoding_study.run(encoding_study.fast_config())
        rows = result.rows()
        assert len(rows) == len(result.points)
        assert all(len(r) == 7 for r in rows)

    def test_adc_share_drops_for_pulse_encodings(self):
        result = encoding_study.run(encoding_study.fast_config())
        keys = result.by_key()
        assert (
            keys[("unary-pulse", 8)].adc_energy_share
            < keys[("bit-serial", 8)].adc_energy_share
        )


class TestTiledEncodingIntegration:
    """Encodings plugged into the layer-level tiled execution path."""

    def test_tiled_matmul_accepts_encoding(self):
        from repro.cim import CimTiledMatmul, MacroConfig

        rng = np.random.default_rng(31)
        weights = rng.integers(-128, 128, size=(200, 40))
        x = rng.integers(0, 256, size=(200, 4))
        engine = CimTiledMatmul(weights, MacroConfig(), rng=np.random.default_rng(0))
        default, _ = engine.matmul(x)
        explicit, _ = engine.matmul(x, encoding=BitSerialEncoding())
        np.testing.assert_array_equal(default, explicit)

    def test_tiled_pulse_width_faster(self):
        from repro.cim import CimTiledMatmul, MacroConfig

        rng = np.random.default_rng(31)
        weights = rng.integers(-128, 128, size=(200, 40))
        x = rng.integers(0, 256, size=(200, 4))
        engine = CimTiledMatmul(weights, MacroConfig(), rng=np.random.default_rng(0))
        _, serial = engine.matmul(x)
        _, pw = engine.matmul(x, encoding=PulseWidthEncoding())
        assert pw.latency_ns < serial.latency_ns
        assert pw.adc_conversions < serial.adc_conversions

    def test_cim_linear_with_unary_encoding(self):
        from repro.cim import cim_linear

        rng = np.random.default_rng(3)
        x = np.abs(rng.normal(size=(4, 64)))  # post-ReLU: unsigned
        w = rng.normal(size=(10, 64))
        # An 8-bit ADC: the unary conversion's larger full scale
        # (rows * (2^b - 1)) still resolves well.  Behind the default
        # 5-bit ADC the single coarse conversion costs real fidelity —
        # the accuracy half of the section 3.1 trade-off.
        config = MacroConfig(adc=AdcSpec(bits=8))
        y_ref, _ = cim_linear(x, w, config=config, activation_bits=4)
        y_pulse, stats = cim_linear(
            x, w, config=config, activation_bits=4, encoding=UnaryPulseEncoding()
        )
        assert y_pulse.shape == y_ref.shape
        assert stats.macs > 0
        assert np.corrcoef(y_ref.ravel(), y_pulse.ravel())[0, 1] > 0.95

    def test_cim_linear_signed_input_rejected_for_pulse(self):
        from repro.cim import cim_linear

        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 32))  # signed activations
        w = rng.normal(size=(4, 32))
        with pytest.raises(ValueError, match="unsigned"):
            cim_linear(x, w, encoding=UnaryPulseEncoding())
