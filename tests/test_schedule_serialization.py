"""Tests for LR schedules, gradient clipping, and checkpointing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.schedule import CosineLR, StepLR, WarmupLR, clip_grad_norm
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor


def _opt(lr=0.1):
    param = Tensor(np.ones(3), requires_grad=True)
    return nn.SGD([param], lr=lr), param


class TestStepLR:
    def test_decays_every_step_size(self):
        opt, _ = _opt(lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(4)]
        assert rates == [1.0, 0.5, 0.5, 0.25]

    def test_invalid_params(self):
        opt, _ = _opt()
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=1, gamma=0.0)

    def test_optimizer_lr_mutated(self):
        opt, _ = _opt(lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestCosineLR:
    def test_monotone_decay_to_min(self):
        opt, _ = _opt(lr=1.0)
        sched = CosineLR(opt, t_max=10, min_lr=0.01)
        rates = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(0.01, rel=1e-6)

    def test_clamps_beyond_t_max(self):
        opt, _ = _opt(lr=1.0)
        sched = CosineLR(opt, t_max=5, min_lr=0.01)
        for _ in range(8):
            last = sched.step()
        assert last == pytest.approx(0.01, rel=1e-6)

    def test_invalid_t_max(self):
        opt, _ = _opt()
        with pytest.raises(ValueError):
            CosineLR(opt, t_max=0)


class TestWarmupLR:
    def test_starts_low_reaches_base(self):
        opt, _ = _opt(lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=4)
        assert opt.lr < 1.0
        for _ in range(4):
            sched.step()
        assert opt.lr == pytest.approx(1.0)

    def test_rates_monotone_during_warmup(self):
        opt, _ = _opt(lr=1.0)
        sched = WarmupLR(opt, warmup_epochs=5)
        rates = [sched.step() for _ in range(5)]
        assert rates == sorted(rates)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.ones(4) * 0.1
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(0.2)
        np.testing.assert_allclose(p.grad, 0.1 * np.ones(4))

    def test_clips_to_max_norm(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        p.grad = np.ones(4) * 10.0
        clip_grad_norm([p], max_norm=1.0)
        assert np.sqrt((p.grad**2).sum()) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        b = Tensor(np.zeros(1), requires_grad=True)
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_handles_missing_grads(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestCheckpointing:
    def _model(self, seed=0):
        rng = np.random.default_rng(seed)
        return nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.BatchNorm2d(4),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 4 * 4, 3, rng=rng),
        )

    def test_round_trip(self, tmp_path):
        model_a = self._model(seed=0)
        model_b = self._model(seed=99)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model_a, path, metadata={"stage": "pretrain"})
        meta = load_checkpoint(model_b, path)
        assert meta["stage"] == "pretrain"
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4, 4)))
        model_a.eval()
        model_b.eval()
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_buffers_restored(self, tmp_path):
        model = self._model()
        model(Tensor(np.random.default_rng(0).normal(size=(8, 3, 4, 4))))
        running = model[1].running_mean.copy()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(model, path)
        fresh = self._model(seed=5)
        load_checkpoint(fresh, path)
        np.testing.assert_allclose(fresh[1].running_mean, running)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(self._model(), tmp_path / "missing.npz")

    def test_non_strict_partial_load(self, tmp_path):
        model = self._model()
        path = tmp_path / "ckpt"
        save_checkpoint(model, path)  # numpy appends .npz
        fresh = self._model(seed=3)
        load_checkpoint(fresh, path, strict=False)
        np.testing.assert_allclose(
            fresh[0].weight.data, model[0].weight.data
        )

    def test_metadata_survives(self, tmp_path):
        model = self._model()
        path = tmp_path / "c.npz"
        save_checkpoint(model, path, metadata={"d": "4", "u": "4"})
        meta = load_checkpoint(self._model(seed=1), path)
        assert meta["d"] == "4"
        assert meta["n_entries"] == len(model.state_dict())
