"""Tests for the dynamic-batching inference serving layer.

The load-bearing guarantees:

* the scheduler coalesces single-sample requests into dynamic batches
  under ``max_batch_size`` / ``max_wait_s``, drawing round-robin across
  tenants (fairness) and never mixing models in one batch;
* admission is bounded: a full queue or an over-cap tenant gets a
  *typed* rejection result, never an exception or a silent drop;
* an executed batch is one ``CompiledModel.run`` call, so server
  outputs are bitwise-identical to ``runtime.reference_forward`` over
  the coalesced inputs, and per-request outputs are exact slices;
* per-tenant ``ExecutionSession`` accounting survives concurrent
  workers and concurrent submitters (the session lock);
* the registry hot-registers, hot-swaps and evicts while serving, and
  shares programmed engines through the runtime's cache.
"""

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.cim.macro import MacroStats
from repro.runtime import (
    EngineCache,
    ExecutionSession,
    RuntimeConfig,
    reference_forward,
)
from repro.serve import (
    BatchPolicy,
    InferenceRequest,
    InferenceServer,
    LoadGenerator,
    LoadSpec,
    ModelRegistry,
    RequestQueue,
    RequestStatus,
    ServerMetrics,
    UnknownModelError,
    fraction_of_stats,
    percentile,
)

from .helpers import await_results, immediate_results, next_batch_or_fail

IN_FEATURES = 32


def mlp(seed=0, hidden=16, num_classes=4):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, hidden, rng=rng),
        nn.ReLU(),
        nn.Linear(hidden, num_classes, rng=rng),
    )


def requests_pool(n, seed=1):
    return np.random.default_rng(seed).normal(size=(n, IN_FEATURES))


def make_registry(**models):
    registry = ModelRegistry(cache=EngineCache())
    for name, model in models.items():
        registry.register(name, model)
    return registry


def queued_request(request_id, tenant, model="m", n_samples=1, submitted_at=None):
    return InferenceRequest(
        request_id=request_id,
        tenant=tenant,
        model=model,
        x=np.zeros((n_samples, IN_FEATURES)),
        submitted_at=time.monotonic() if submitted_at is None else submitted_at,
    )


class TestRequestQueue:
    def test_coalesces_up_to_max_batch_size(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=4, max_wait_s=10.0))
        for i in range(10):
            assert queue.offer(queued_request(i, "t")) == RequestQueue.OK
        batch = queue.next_batch(timeout=1.0)
        assert [r.request_id for r in batch] == [0, 1, 2, 3]
        assert queue.next_batch(timeout=1.0) is not None
        assert queue.depth == 2

    def test_max_wait_releases_partial_batch(self):
        # Event-based: the batch is far below max_batch_size, so the
        # only thing that can release it before the (generous) deadline
        # is the max_wait timer — a non-None return proves it fired.
        queue = RequestQueue(BatchPolicy(max_batch_size=64, max_wait_s=0.01))
        queue.offer(queued_request(0, "t"))
        batch = next_batch_or_fail(queue)
        assert [r.request_id for r in batch] == [0]

    def test_round_robin_across_tenants(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=4, max_wait_s=10.0))
        # Tenant a floods before b shows up at all.
        for i in range(6):
            queue.offer(queued_request(i, "a"))
        queue.offer(queued_request(6, "b"))
        queue.offer(queued_request(7, "b"))
        batch = queue.next_batch(timeout=1.0)
        tenants = [r.tenant for r in batch]
        # Fairness: b is interleaved into the first batch despite arriving last.
        assert tenants == ["a", "b", "a", "b"]

    def test_batches_never_mix_models(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=8, max_wait_s=0.0))
        queue.offer(queued_request(0, "t", model="m1"))
        queue.offer(queued_request(1, "t", model="m2"))
        queue.offer(queued_request(2, "t", model="m1"))
        first = queue.next_batch(timeout=1.0)
        second = queue.next_batch(timeout=1.0)
        assert [r.request_id for r in first] == [0, 2]
        assert [r.request_id for r in second] == [1]

    def test_oldest_model_lane_goes_first(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=8, max_wait_s=0.0))
        queue.offer(queued_request(0, "t", model="m2"))
        queue.offer(queued_request(1, "t", model="m1"))
        batch = queue.next_batch(timeout=1.0)
        assert batch[0].model == "m2"

    def test_full_lane_not_blocked_by_other_models_partial_lane(self):
        # A lone young request for m1 must not head-of-line block m2's
        # already-full batch behind m1's max_wait deadline.  Event-based
        # proof: m1's lane cannot release before its 60 s max_wait and
        # the deadline is far shorter, so the only batch the queue can
        # hand out is m2's full one — released immediately.
        queue = RequestQueue(BatchPolicy(max_batch_size=4, max_wait_s=60.0))
        queue.offer(queued_request(0, "t", model="m1"))
        for i in range(1, 5):
            queue.offer(queued_request(i, "t", model="m2"))
        batch = next_batch_or_fail(queue)
        assert {r.model for r in batch} == {"m2"}
        assert len(batch) == 4

    def test_bounded_depth_counts_samples(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=4, max_queue_depth=4))
        assert queue.offer(queued_request(0, "t", n_samples=3)) == RequestQueue.OK
        assert queue.offer(queued_request(1, "t", n_samples=2)) == RequestQueue.FULL
        assert queue.offer(queued_request(2, "t", n_samples=1)) == RequestQueue.OK
        assert queue.offer(queued_request(3, "t")) == RequestQueue.FULL

    def test_per_tenant_cap(self):
        policy = BatchPolicy(max_batch_size=4, max_pending_per_tenant=2)
        queue = RequestQueue(policy)
        assert queue.offer(queued_request(0, "a")) == RequestQueue.OK
        assert queue.offer(queued_request(1, "a")) == RequestQueue.OK
        assert queue.offer(queued_request(2, "a")) == RequestQueue.TENANT_LIMIT
        assert queue.offer(queued_request(3, "b")) == RequestQueue.OK

    def test_oversized_request_executes_alone(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=2, max_queue_depth=64))
        queue.offer(queued_request(0, "t", n_samples=5))
        queue.offer(queued_request(1, "t"))
        batch = queue.next_batch(timeout=1.0)
        assert [r.request_id for r in batch] == [0]

    def test_close_flushes_pending_then_returns_none(self):
        queue = RequestQueue(BatchPolicy(max_batch_size=64, max_wait_s=60.0))
        queue.offer(queued_request(0, "t"))
        queue.close()
        batch = queue.next_batch(timeout=1.0)
        assert [r.request_id for r in batch] == [0]
        assert queue.next_batch(timeout=1.0) is None
        assert queue.offer(queued_request(1, "t")) == RequestQueue.CLOSED

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-1.0)


class TestServerExecution:
    def test_burst_coalesces_and_outputs_are_bitwise_to_reference(self):
        model = mlp()
        registry = make_registry(m=model)
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=8, max_wait_s=0.005),
            record_batches=True,
        )
        pool = requests_pool(24)
        handles = [server.submit("m", pool[i : i + 1]) for i in range(24)]
        server.start()
        results = [h.result(timeout=30.0) for h in handles]
        server.stop()
        assert all(r.ok for r in results)
        assert [b.inputs.shape[0] for b in server.executed_batches] == [8, 8, 8]
        by_id = {r.request_id: r for r in results}
        for batch in server.executed_batches:
            expected, _ = reference_forward(model, batch.inputs)
            assert np.array_equal(batch.outputs, expected)
            offset = 0
            for request_id in batch.request_ids:
                result = by_id[request_id]
                stop = offset + result.output.shape[0]
                assert np.array_equal(result.output, expected[offset:stop])
                assert result.batch_samples == batch.inputs.shape[0]
                offset = stop

    def test_batch1_policy_is_bitwise_per_request(self):
        model = mlp()
        registry = make_registry(m=model)
        pool = requests_pool(6)
        with InferenceServer(registry, BatchPolicy(max_batch_size=1)) as server:
            handles = [server.submit("m", pool[i : i + 1]) for i in range(6)]
            results = [h.result(timeout=30.0) for h in handles]
        for i, result in enumerate(results):
            expected, _ = reference_forward(model, pool[i : i + 1])
            assert np.array_equal(result.output, expected)
            assert result.batch_samples == 1

    def test_multi_sample_requests_slice_back_correctly(self):
        model = mlp()
        registry = make_registry(m=model)
        pool = requests_pool(9)
        sizes = [1, 3, 2, 3]
        chunks, start = [], 0
        for size in sizes:
            chunks.append(pool[start : start + size])
            start += size
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=16, max_wait_s=0.005),
            record_batches=True,
        )
        handles = [server.submit("m", chunk) for chunk in chunks]
        server.start()
        results = [h.result(timeout=30.0) for h in handles]
        server.stop()
        [batch] = server.executed_batches
        assert batch.inputs.shape[0] == 9
        expected, _ = reference_forward(model, batch.inputs)
        offset = 0
        for size, result in zip(sizes, results):
            assert result.output.shape[0] == size
            assert np.array_equal(result.output, expected[offset : offset + size])
            offset += size

    def test_unknown_model_is_typed_rejection(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry)
        result = server.submit("missing", requests_pool(1)).result(timeout=1.0)
        assert result.status is RequestStatus.REJECTED_UNKNOWN_MODEL
        assert not result.ok
        assert "missing" in result.error

    def test_queue_full_is_typed_rejection(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=4, max_queue_depth=4)
        )
        pool = requests_pool(6)
        handles = [server.submit("m", pool[i : i + 1]) for i in range(6)]
        statuses = [r.status for r in immediate_results(handles)]
        assert statuses == [RequestStatus.REJECTED_QUEUE_FULL] * 2
        server.start()
        completed = await_results(handles[:4])
        server.stop()
        assert all(r.ok for r in completed)
        snapshot = server.snapshot()
        assert snapshot.rejected == {RequestStatus.REJECTED_QUEUE_FULL.value: 2}
        assert snapshot.completed == 4

    def test_tenant_cap_is_typed_rejection(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=4, max_pending_per_tenant=1),
        )
        pool = requests_pool(3)
        first = server.submit("m", pool[:1], tenant="a")
        second = server.submit("m", pool[1:2], tenant="a")
        other = server.submit("m", pool[2:3], tenant="b")
        assert second.result(timeout=1.0).status is RequestStatus.REJECTED_TENANT_LIMIT
        server.start()
        assert first.result(timeout=30.0).ok
        assert other.result(timeout=30.0).ok
        server.stop()

    def test_submit_after_stop_rejected(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry).start()
        server.stop()
        result = server.submit("m", requests_pool(1)).result(timeout=1.0)
        assert result.status is RequestStatus.REJECTED_SHUTTING_DOWN
        assert result.status.rejected

    def test_empty_request_rejected_at_submit(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry)
        with pytest.raises(ValueError, match="at least one sample"):
            server.submit("m", np.empty((0, IN_FEATURES)))
        with pytest.raises(ValueError):
            LoadSpec(samples_per_request=0)

    def test_unadmittable_oversized_request_fails_loudly(self):
        # Bigger than the whole admission bound: no backoff would ever
        # admit it, so it must not masquerade as transient backpressure.
        registry = make_registry(m=mlp())
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=4, max_queue_depth=8)
        )
        with pytest.raises(ValueError, match="admits at most"):
            server.submit("m", requests_pool(9))

    def test_stop_without_drain_cancels_pending(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry, BatchPolicy(max_batch_size=4))
        handles = [server.submit("m", requests_pool(1)) for _ in range(3)]
        server.stop(drain=False)  # never started: everything pending cancels
        statuses = {h.result(timeout=1.0).status for h in handles}
        assert statuses == {RequestStatus.CANCELLED}
        assert server.snapshot().cancelled == 3

    def test_stop_with_drain_on_never_started_server_cancels(self):
        # drain=True has no workers to drain through on a never-started
        # server; pending handles must cancel, not strand forever.
        registry = make_registry(m=mlp())
        server = InferenceServer(registry, BatchPolicy(max_batch_size=4))
        handle = server.submit("m", requests_pool(1))
        server.stop()  # default drain=True
        assert handle.result(timeout=1.0).status is RequestStatus.CANCELLED

    def test_cancelling_close_parks_workers(self):
        # close(flush=False) must not let next_batch draw pending work.
        queue = RequestQueue(BatchPolicy(max_batch_size=1, max_wait_s=0.0))
        queue.offer(queued_request(0, "t"))
        queue.close(flush=False)
        assert queue.next_batch(timeout=0.5) is None
        assert [r.request_id for r in queue.drain_remaining()] == [0]

    def test_drained_lanes_are_dropped(self):
        # Model-name churn must not grow the lane scan set forever.
        queue = RequestQueue(BatchPolicy(max_batch_size=1, max_wait_s=0.0))
        for i in range(5):
            queue.offer(queued_request(i, "t", model=f"m-v{i}"))
            assert queue.next_batch(timeout=1.0) is not None
        assert len(queue._lanes) == 0

    def test_failed_batch_produces_typed_results(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry, BatchPolicy(max_batch_size=4))
        bad = np.ones((1, IN_FEATURES + 1))  # wrong feature width
        handle = server.submit("m", bad)
        server.start()
        result = handle.result(timeout=30.0)
        assert result.status is RequestStatus.FAILED
        assert result.error
        # The worker survives a failing batch and keeps serving.
        good = server.submit("m", requests_pool(1)).result(timeout=30.0)
        server.stop()
        assert good.ok
        tenants = {t.tenant: t for t in server.snapshot().tenants}
        assert tenants["default"].failed == 1

    def test_malformed_request_does_not_fail_batch_mates(self):
        # A bad request coalesced with good ones fails alone: the batch
        # retries per request, isolating the offender.
        model = mlp()
        registry = make_registry(m=model)
        server = InferenceServer(registry, BatchPolicy(max_batch_size=4))
        pool = requests_pool(3)
        good_before = server.submit("m", pool[:1], tenant="good")
        bad = server.submit("m", np.ones((1, IN_FEATURES + 1)), tenant="bad")
        good_after = server.submit("m", pool[1:2], tenant="good")
        server.start()
        results = [h.result(timeout=30.0) for h in (good_before, bad, good_after)]
        server.stop()
        assert results[0].ok and results[2].ok
        assert results[1].status is RequestStatus.FAILED
        # Isolated re-execution is still the exact per-request path.
        expected, _ = reference_forward(model, pool[:1])
        assert np.array_equal(results[0].output, expected)

    def test_eviction_between_admission_and_execution_fails_typed(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry, BatchPolicy(max_batch_size=4))
        handle = server.submit("m", requests_pool(1))
        registry.evict("m")
        server.start()
        result = handle.result(timeout=30.0)
        server.stop()
        assert result.status is RequestStatus.FAILED
        assert "evicted" in result.error

    def test_timings_populated(self):
        registry = make_registry(m=mlp())
        with InferenceServer(registry, BatchPolicy(max_batch_size=1)) as server:
            result = server.submit("m", requests_pool(1)).result(timeout=30.0)
        assert result.latency_s >= result.queued_s >= 0.0
        assert result.batch_seq >= 0


class TestSessionsAndAccounting:
    def test_per_tenant_sessions_sum_to_batch_stats(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=8, max_wait_s=0.005),
            record_batches=True,
        )
        pool = requests_pool(8)
        tenants = ["a", "a", "b", "a", "b", "c", "a", "b"]
        handles = [
            server.submit("m", pool[i : i + 1], tenant=tenants[i]) for i in range(8)
        ]
        server.start()
        results = [h.result(timeout=30.0) for h in handles]
        server.stop()
        assert all(r.ok for r in results)
        [batch] = server.executed_batches
        sessions = server.sessions()
        assert sessions["a"].samples == 4
        assert sessions["b"].samples == 3
        assert sessions["c"].samples == 1
        total_energy = sum(
            s.snapshot()[0].total_energy_fj for s in sessions.values()
        )
        assert total_energy == pytest.approx(batch.stats.total_energy_fj, rel=1e-12)
        total_macs = sum(s.snapshot()[0].macs for s in sessions.values())
        assert total_macs == pytest.approx(batch.stats.macs, rel=1e-12)

    def test_concurrent_submitters_lose_no_session_updates(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(
            registry,
            BatchPolicy(max_batch_size=8, max_wait_s=0.001, max_queue_depth=4096),
            n_workers=2,
        ).start()
        pool = requests_pool(4)
        n_threads, per_thread = 4, 25
        all_handles = []
        handle_lock = threading.Lock()

        def flood(tenant):
            handles = [
                server.submit("m", pool[:1], tenant=tenant)
                for _ in range(per_thread)
            ]
            with handle_lock:
                all_handles.extend(handles)

        threads = [
            threading.Thread(target=flood, args=(f"tenant-{i % 2}",))
            for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        results = [h.result(timeout=60.0) for h in all_handles]
        server.stop()
        assert all(r.ok for r in results)
        sessions = server.sessions()
        assert sessions["tenant-0"].samples == 50
        assert sessions["tenant-1"].samples == 50
        assert server.snapshot().completed == n_threads * per_thread

    def test_execution_session_record_is_thread_safe(self):
        # The satellite fix: unguarded += lost updates under contention.
        session = ExecutionSession()
        stats = MacroStats(cycles=1, macs=2, wl_energy_fj=0.5)
        n_threads, per_thread = 8, 200

        def hammer():
            for _ in range(per_thread):
                session.record(stats, samples=1)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * per_thread
        assert session.batches == expected
        assert session.samples == expected
        assert session.stats.cycles == expected
        assert session.stats.macs == 2 * expected
        assert session.stats.wl_energy_fj == pytest.approx(0.5 * expected)

    def test_fraction_of_stats_partitions_exactly(self):
        stats = MacroStats(
            cycles=100, adc_conversions=40, row_activations=30, macs=1000,
            wl_energy_fj=5.0, bitline_energy_fj=7.0, adc_energy_fj=11.0,
            peripheral_energy_fj=13.0, latency_ns=42.0,
        )
        parts = [fraction_of_stats(stats, n, 8) for n in (1, 3, 4)]
        assert sum(p.macs for p in parts) == pytest.approx(stats.macs)
        assert sum(p.total_energy_fj for p in parts) == pytest.approx(
            stats.total_energy_fj
        )
        # The batch's critical path is shared, not divided.
        assert all(p.latency_ns == stats.latency_ns for p in parts)
        with pytest.raises(ValueError):
            fraction_of_stats(stats, 1, 0)


class TestRegistry:
    def test_register_get_evict(self):
        registry = make_registry(m=mlp())
        assert "m" in registry and len(registry) == 1
        assert registry.get("m").n_weight_layers == 2
        entry = registry.evict("m")
        assert entry.name == "m"
        assert "m" not in registry
        with pytest.raises(UnknownModelError):
            registry.get("m")
        with pytest.raises(UnknownModelError):
            registry.evict("m")

    def test_duplicate_name_requires_replace(self):
        registry = make_registry(m=mlp())
        with pytest.raises(ValueError):
            registry.register("m", mlp(seed=9))
        entry = registry.register("m", mlp(seed=9), replace=True)
        assert entry.generation == 1

    def test_concurrent_register_same_name_one_winner(self):
        # The duplicate-name check must hold across the unlocked compile:
        # exactly one racer wins, every loser gets the promised ValueError.
        registry = ModelRegistry(cache=EngineCache())
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        outcomes = [None] * n_threads

        def race(index):
            barrier.wait()
            try:
                registry.register("m", mlp(seed=index))
                outcomes[index] = "won"
            except ValueError:
                outcomes[index] = "raised"

        threads = [
            threading.Thread(target=race, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("won") == 1
        assert outcomes.count("raised") == n_threads - 1
        assert registry.entry("m").generation == 0

    def test_same_weights_share_programmed_engines(self):
        registry = ModelRegistry(cache=EngineCache())
        model = mlp()
        registry.register("first", model)
        programmed = registry.cache.stats.programmed
        registry.register("second", model)
        assert registry.cache.stats.programmed == programmed
        assert registry.cache.stats.hits > 0

    def test_hot_swap_while_serving(self):
        model_a, model_b = mlp(seed=0), mlp(seed=9)
        registry = make_registry(m=model_a)
        pool = requests_pool(4)
        with InferenceServer(registry, BatchPolicy(max_batch_size=1)) as server:
            before = server.submit("m", pool[:1]).result(timeout=30.0)
            registry.register("m", model_b, replace=True)
            after = server.submit("m", pool[:1]).result(timeout=30.0)
        expected_a, _ = reference_forward(model_a, pool[:1])
        expected_b, _ = reference_forward(model_b, pool[:1])
        assert np.array_equal(before.output, expected_a)
        assert np.array_equal(after.output, expected_b)

    def test_runtime_config_respected(self):
        registry = ModelRegistry(cache=EngineCache())
        registry.register("m", mlp(), RuntimeConfig(activation_bits=6))
        assert registry.get("m").config.activation_bits == 6

    def test_rows_report(self):
        registry = make_registry(m=mlp())
        [(name, layers, generation, compile_ms)] = registry.rows()
        assert (name, layers, generation) == ("m", 2, 0)
        assert compile_ms >= 0.0


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = np.asarray([10.0, 20.0, 30.0, 40.0], dtype=float)
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile(np.asarray([], dtype=float), 50) == 0.0

    def test_batch_histogram_and_counts(self):
        metrics = ServerMetrics()
        metrics.observe_batch(4, [0.1] * 3, [0.05] * 3, ["a", "a", "b"])
        metrics.observe_batch(1, [0.2], [0.1], ["b"])
        metrics.observe_rejected("rejected_queue_full", "c")
        snapshot = metrics.snapshot(
            queue_depth=2, sessions={"a": ExecutionSession(), "b": ExecutionSession()}
        )
        assert snapshot.batch_size_hist == {4: 1, 1: 1}
        assert snapshot.completed == 4
        assert snapshot.batches == 2
        assert snapshot.queue_depth == 2
        assert snapshot.mean_batch_size == 2.5
        assert snapshot.total_rejected == 1
        assert snapshot.p50_latency_s == pytest.approx(0.1)
        assert snapshot.p99_latency_s == pytest.approx(0.2)
        tenants = {t.tenant: t for t in snapshot.tenants}
        assert tenants["a"].completed == 2
        assert tenants["b"].completed == 2
        assert tenants["c"].rejected == 1

    def test_rolling_window_trims_old_completions(self):
        metrics = ServerMetrics(window_s=0.5)
        old = time.monotonic() - 10.0
        metrics.observe_batch(1, [0.1], [0.0], ["a"], now=old)
        metrics.observe_batch(1, [0.1], [0.0], ["a"])
        snapshot = metrics.snapshot()
        # Totals keep history; the rolling throughput window does not.
        assert snapshot.completed == 2
        assert snapshot.throughput_rps > 0
        window = sum(r for _, r, _ in metrics._completions)
        assert window == 1


class TestLoadGenerator:
    def test_schedule_is_deterministic(self):
        registry = make_registry(m=mlp())
        server = InferenceServer(registry)
        spec = LoadSpec(
            n_requests=16,
            rate_rps=500.0,
            tenant_weights={"a": 2.0, "b": 1.0},
            seed=3,
        )
        pools = {"m": requests_pool(8)}
        plan_a = LoadGenerator(server, spec, pools).schedule()
        plan_b = LoadGenerator(server, spec, pools).schedule()
        assert [(o, t, m) for o, t, m, _ in plan_a] == [
            (o, t, m) for o, t, m, _ in plan_b
        ]
        for (_, _, _, xa), (_, _, _, xb) in zip(plan_a, plan_b):
            assert np.array_equal(xa, xb)
        offsets = [offset for offset, _, _, _ in plan_a]
        assert offsets == sorted(offsets)
        assert {tenant for _, tenant, _, _ in plan_a} == {"a", "b"}

    def test_burst_run_completes_all(self):
        registry = make_registry(m=mlp(), m2=mlp(seed=5))
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=8, max_wait_s=0.002), n_workers=2
        ).start()
        spec = LoadSpec(
            n_requests=32, tenant_weights={"a": 1.0, "b": 1.0}, seed=11
        )
        report = LoadGenerator(
            server, spec, {"m": requests_pool(8), "m2": requests_pool(8, seed=2)}
        ).run()
        server.stop()
        assert report.completed == 32
        assert report.rejected == 0 and report.failed == 0
        assert report.throughput_rps > 0
        assert sum(t.submitted for t in report.tenants) == 32
        assert {t.tenant for t in report.tenants} == {"a", "b"}
        assert report.p99_latency_s >= report.p50_latency_s > 0

    def test_rejections_are_counted_not_raised(self):
        registry = make_registry(m=mlp())
        # Tiny queue, no workers running: everything past the bound rejects.
        server = InferenceServer(
            registry, BatchPolicy(max_batch_size=4, max_queue_depth=4)
        )
        spec = LoadSpec(n_requests=10, seed=0)
        generator = LoadGenerator(server, spec, {"m": requests_pool(8)})
        plan = generator.schedule()
        handles = [
            (tenant, server.submit(model, x, tenant=tenant))
            for _, tenant, model, x in plan
        ]
        rejected = [
            r
            for r in immediate_results([h for _, h in handles])
            if r.status is RequestStatus.REJECTED_QUEUE_FULL
        ]
        assert len(rejected) == 6
        server.start()
        server.stop()  # drains the 4 admitted requests

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(n_requests=0)
        with pytest.raises(ValueError):
            LoadSpec(rate_rps=0.0)
        with pytest.raises(ValueError):
            LoadSpec(tenant_weights={})
        registry = make_registry(m=mlp())
        server = InferenceServer(registry)
        with pytest.raises(ValueError):
            LoadGenerator(server, LoadSpec(), {})
        with pytest.raises(ValueError):
            LoadGenerator(
                server,
                LoadSpec(samples_per_request=4),
                {"m": requests_pool(2)},
            )
        with pytest.raises(ValueError, match="no input pool"):
            LoadGenerator(
                server,
                LoadSpec(model_weights={"typo-model": 1.0}),
                {"m": requests_pool(4)},
            )
