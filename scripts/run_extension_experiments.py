#!/usr/bin/env python
"""Regenerate the extension-study numbers at full budget.

Writes ``results/extension_results.txt`` — the extension studies at
full budget.  (The numbered
paper figures regenerate via ``run_full_experiments.py``.)

Run:  python scripts/run_extension_experiments.py
"""

import pathlib
import time

import numpy as np

from repro import models
from repro.arch import (
    MeshNocSpec,
    TrainingCostModel,
    chiplet_scaling,
    map_layers_to_tiles,
    noc_share_of_compute,
)
from repro.arch.mapping import map_model
from repro.cim import DesignSpaceConfig, explore, tolerable_cell_sigma, variation_sweep
from repro.cim.spec import rom_macro_spec
from repro.experiments import (
    cim_accuracy,
    encoding_study,
    pipeline_study,
    related_work_quant,
)

BENCHMARKS = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


def main() -> None:
    out_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    report_path = out_dir / "extension_results.txt"
    lines = []
    started = time.time()

    def log(text: str = "") -> None:
        print(text, flush=True)
        lines.append(text)

    def header(title: str) -> None:
        log("")
        log("=" * 70)
        log(f"{title}  [t={time.time() - started:.0f}s]")
        log("=" * 70)

    header("Ext-1: activation encodings (sec. 3.1)")
    enc = encoding_study.run(encoding_study.full_config())
    for row in enc.rows():
        log(
            f"  {row[0]:11s} {row[1]}b cycles={row[2]:3d} conv/col={row[3]} "
            f"err={row[4]:.3f} fJ/mac={row[5]:.1f} ns/vec={row[6]:.1f}"
        )
    for r in encoding_study.jitter_sweep():
        log(f"  jitter sigma={r['jitter_sigma_slots']:.2f} err={r['rel_error']:.4f}")

    header("Ext-2: ADC count vs activated rows (sec. 4.3.1)")
    grid = explore(DesignSpaceConfig())
    for p in grid.points:
        log(
            f"  adcs={p.n_adcs:2d} rows={p.activated_rows:3d} err={p.rel_error:.3f} "
            f"ns={p.latency_ns:.1f} adc_mm2={p.adc_area_mm2 * 1e3:.2f}e-3"
        )
    log(f"  pareto frontier: {len(grid.frontier())}/{len(grid.points)}")

    header("Ext-3: ROM-CiM chiplets (sec. 4.3.3)")
    yolo = models.profile_model(
        models.build_model("yolo", rng=np.random.default_rng(0)), (1, 3, 416, 416)
    )
    for p in chiplet_scaling(yolo, model_name="yolo").points:
        log(
            f"  die={p.die_area_mm2:.0f}mm2 rom={p.rom_chips} sram={p.sram_chips} "
            f"rom_cm2={p.rom_area_cm2:.2f} sram_cm2={p.sram_area_cm2:.2f} "
            f"E_ratio={p.energy_ratio:.2f}"
        )

    header("Ext-4: ping-pong reload (sec. 4.3.3)")
    for row in pipeline_study.run(pipeline_study.full_config()).rows:
        log(
            f"  {row['model']:9s} resident={row['resident_fraction']:.2f} "
            f"relief={row['latency_relief']:.3f} "
            f"dram_uJ={row['serial_dram_pj'] / 1e6:.0f} (both schedules)"
        )

    header("Ext-5: on-chip training (sec. 3.3)")
    cost_model = TrainingCostModel()
    rng = np.random.default_rng(0)
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        s = cost_model.summary(profile)
        log(
            f"  {name:9s} full={s['full_step_uj']:.0f}uJ "
            f"rebranch={s['rebranch_step_uj']:.0f}uJ saving={s['energy_saving']:.1f}x "
            f"trainableX={s['trainable_reduction']:.1f}"
        )

    header("Ext-6: device variation (sec. 2)")
    for v, r in variation_sweep():
        log(
            f"  cell={v.cell_sigma:.2f} offset={v.adc_offset_sigma:.1f} "
            f"mean={r.mean:.3f} p95={r.p95:.3f}"
        )
    log(f"  tolerable cell sigma @5% budget: {tolerable_cell_sigma(0.05):.2f}")

    header("Ext-7: automated D/U search (sec. 3.2)")
    from repro.experiments import du_search

    search = du_search.run(du_search.full_config())
    for e in search.evaluations:
        log(
            f"  D{e.candidate.d}-U{e.candidate.u} acc={e.accuracy:.3f} "
            f"sram_mm2={e.sram_area_mm2:.3f} trainable={e.trainable_params}"
        )
    log(
        f"  selected: D={search.selected.candidate.d} "
        f"U={search.selected.candidate.u} (floor {search.accuracy_floor:.3f})"
    )

    header("Ext-8: sub-8-bit quantization (sec. 2.3)")
    quant = related_work_quant.run(related_work_quant.full_config())
    log(f"  baselines: {quant.baselines}")
    for row in quant.rows():
        log(
            f"  {row[0]:9s} {row[1]:8s} acc={row[2]:.3f} drop={row[3]:+.3f} "
            f"w_err={row[4]:.3f}"
        )

    header("Ext-9: NoC transport (Fig. 9)")
    spec = MeshNocSpec(rows=4, cols=4)
    for name, shape in BENCHMARKS:
        profile = models.profile_model(models.build_model(name, rng=rng), shape)
        mapping = map_model(profile, "yoloc")
        compute_pj = mapping.total_macs * rom_macro_spec().energy_per_op_fj / 1000.0
        report = map_layers_to_tiles(profile, spec)
        log(
            f"  {name:9s} traffic={report.total_bits / 1e6:.1f}Mb "
            f"noc={report.total_energy_pj / 1e6:.2f}uJ "
            f"share={noc_share_of_compute(profile, compute_pj):.4f}"
        )

    header("Ext-10: end-to-end CiM accuracy")
    acc = cim_accuracy.run(cim_accuracy.full_config())
    log(f"  float accuracy: {acc.float_accuracy:.3f}")
    for row in acc.rows():
        log(
            f"  adc={row[0]}b {row[1]:11s} noise={row[2]:.1f} "
            f"acc={row[3]:.3f} fJ/mac={row[4]:.1f}"
        )

    log("")
    log(f"total wall time: {time.time() - started:.0f}s")
    report_path.write_text("\n".join(lines))
    print(f"\nwritten to {report_path}")


if __name__ == "__main__":
    main()
