#!/usr/bin/env python
"""Check internal links in docs/ and the README.

Scans markdown files for relative links (``[text](target)``) and fails
when a target file or directory does not exist.  External links
(http/https/mailto) are ignored — this is a fast, offline, structural
check, not a crawler.  Anchors are stripped (``file.md#section`` checks
``file.md``).

Usage: python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links; deliberately simple — our docs do not use
#: reference-style links or angle-bracket targets.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown():
    yield REPO_ROOT / "README.md"
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def check_file(path: Path) -> list:
    problems = []
    text = path.read_text()
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: broken link "
                    f"-> {target}"
                )
    return problems


def main() -> int:
    problems = []
    checked = 0
    for path in iter_markdown():
        if not path.exists():
            problems.append(f"missing expected file: {path.relative_to(REPO_ROOT)}")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"checked {checked} markdown files: all internal links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
