#!/usr/bin/env python
"""Reject wall-clock synchronization in the test suites.

Scans every Python file under ``tests/`` and ``benchmarks/`` for
``time.sleep`` (and ``sleep(...)`` imported bare from ``time``).  Tests
that "wait a bit" for a thread or a queue are flake factories: they
pass on a fast machine and time out under a loaded CI runner.  Every
blocking wait must go through an event-ordered primitive — the
``DEADLINE``-bounded helpers in ``tests/helpers.py``
(``await_results``), a ``threading.Event``/``Condition`` wait, or a
``join(timeout)`` — which block until the state change actually
happens instead of guessing how long it takes.

A line may opt out with a trailing ``# hygiene: allow-sleep`` comment
and a reason; none exist today, and adding one should be rare enough to
argue in review.

Usage: python scripts/check_test_hygiene.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SUITES = ("tests", "benchmarks")

#: ``time.sleep(...)`` or a bare ``sleep(...)`` call (from ``from time
#: import sleep``); attribute access on other objects does not match.
SLEEP = re.compile(r"(?<![\w.])(?:time\.)?sleep\s*\(")
BARE_IMPORT = re.compile(r"^\s*from\s+time\s+import\s+.*\bsleep\b")
ALLOW = "# hygiene: allow-sleep"


def check_file(path: Path) -> list:
    problems = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if ALLOW in line:
            continue
        stripped = line.split("#", 1)[0]
        if SLEEP.search(stripped) or BARE_IMPORT.match(stripped):
            problems.append(
                f"{path.relative_to(REPO_ROOT)}:{lineno}: wall-clock sleep "
                f"in a test suite — synchronize on an event "
                f"(tests/helpers.py DEADLINE idioms) instead"
            )
    return problems


def main() -> int:
    problems = []
    checked = 0
    for suite in SUITES:
        for path in sorted((REPO_ROOT / suite).rglob("*.py")):
            checked += 1
            problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print(f"checked {checked} test files: no wall-clock sleeps")
    return 0


if __name__ == "__main__":
    sys.exit(main())
