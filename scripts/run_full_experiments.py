#!/usr/bin/env python
"""Regenerate every paper table/figure at full budget.

Writes a machine-readable summary to ``results/full_results.txt`` —
the full-budget counterpart of the fast configs the tests exercise.

Run:  python scripts/run_full_experiments.py
"""

import json
import pathlib
import time

from repro.experiments import (
    cim_accuracy,
    encoding_study,
    fig6b,
    fig10,
    fig11,
    fig12,
    fig14,
    pipeline_study,
    table1,
)


def main() -> None:
    out_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    report_path = out_dir / "full_results.txt"
    lines = []
    started = time.time()

    def log(text: str = "") -> None:
        print(text, flush=True)
        lines.append(text)

    log("=" * 70)
    log("Table I")
    log("=" * 70)
    t1 = table1.run()
    log(table1.format_report(t1))

    log("")
    log("=" * 70)
    log("Fig. 14 (system comparison)")
    log("=" * 70)
    r14 = fig14.run(fig14.full_config())
    log(fig14.format_report(r14))
    log("YOLoC (yolo) area breakdown: " + json.dumps(
        {k: round(v, 3) for k, v in r14.yoloc_area_breakdown("yolo").items()}
    ))
    for model in ("vgg8", "resnet18", "tiny_yolo", "yolo"):
        log(f"energy breakdown {model}: " + json.dumps(
            {k: round(v, 3) for k, v in r14.energy_breakdown(model).items()}
        ))

    log("")
    log("=" * 70)
    log(f"Fig. 6(b) ATL sweep  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    r6 = fig6b.run(fig6b.full_config())
    log(f"source accuracy: {r6.source_accuracy:.3f}")
    for p in r6.points:
        log(f"  frozen={p.n_frozen_convs:2d} acc={p.accuracy:.3f} trainable={p.trainable_params}")

    log("")
    log("=" * 70)
    log(f"Fig. 10 generalization  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    r10 = fig10.run(fig10.full_config())
    log("source accuracy: " + json.dumps(
        {k: round(v, 3) for k, v in r10.source_accuracy.items()}
    ))
    for row in r10.rows:
        log(
            f"  {row.model:9s} {row.target:7s} {row.method:9s} "
            f"acc={row.accuracy:.3f} norm_area={row.normalized_area:.3f} "
            f"trainable={row.trainable_params}"
        )

    log("")
    log("=" * 70)
    log(f"Fig. 11 D/U sweeps  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    r11 = fig11.run(fig11.full_config())
    for p in r11.ratio_points:
        log(f"  ratio {p.model:9s} D{p.d}xU{p.u:2d} (D*U={p.du:2d}) acc={p.accuracy:.3f} "
            f"norm_area={p.normalized_area:.3f}")
    for p in r11.split_points:
        log(f"  split {p.model:9s} D{p.d:2d}-U{p.u:2d} acc={p.accuracy:.3f}")

    log("")
    log("=" * 70)
    log(f"Fig. 12 detection  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    r12 = fig12.run(fig12.full_config())
    log("source mAP: " + json.dumps({k: round(v, 3) for k, v in r12.source_map.items()}))
    for row in r12.rows:
        log(f"  {row.method:10s} {row.target:10s} mAP={row.map50:.3f} "
            f"trainable={row.trainable_params}")
    for area in r12.areas:
        log(f"  area {area.method:10s} total={area.total_cm2:.2f} cm^2 "
            f"(rom={area.rom_cim_cm2:.2f}, sram={area.sram_cim_cm2:.2f})")

    log("")
    log("=" * 70)
    log(f"Extension: activation encodings (sec. 3.1)  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    enc = encoding_study.run(encoding_study.full_config())
    for row in enc.rows():
        log(
            f"  {row[0]:11s} {row[1]}b cycles={row[2]:3d} conv/col={row[3]} "
            f"err={row[4]:.3f} fJ/mac={row[5]:.1f} ns/vec={row[6]:.1f}"
        )

    log("")
    log("=" * 70)
    log(f"Extension: end-to-end CiM accuracy  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    acc = cim_accuracy.run(cim_accuracy.full_config())
    log(f"  float accuracy: {acc.float_accuracy:.3f}")
    for row in acc.rows():
        log(
            f"  adc={row[0]}b {row[1]:11s} noise={row[2]:.1f} "
            f"acc={row[3]:.3f} fJ/mac={row[4]:.1f}"
        )

    log("")
    log("=" * 70)
    log(f"Extension: ping-pong reload (sec. 4.3.3)  [t={time.time() - started:.0f}s]")
    log("=" * 70)
    pp = pipeline_study.run(pipeline_study.full_config())
    for row in pp.rows:
        log(
            f"  {row['model']:9s} resident={row['resident_fraction']:.2f} "
            f"serial={row['serial_ns'] / 1e6:.2f}ms "
            f"pingpong={row['pingpong_ns'] / 1e6:.2f}ms "
            f"relief={row['latency_relief']:.3f}"
        )

    log("")
    log(f"total wall time: {time.time() - started:.0f}s")
    report_path.write_text("\n".join(lines))
    print(f"\nwritten to {report_path}")


if __name__ == "__main__":
    main()
