"""Analytic macro specifications — the Table I envelope.

The system simulator never bit-simulates full networks; it consumes the
macro-level figures this module derives from the circuit parameters:
density, throughput, area efficiency, energy efficiency.

The derivation follows the paper's accounting:

* One macro *inference* streams the 8 serial input bits (8 cycles of
  ~1.1 ns = 8.9 ns) while the 16 shared ADCs resolve 16 physical columns
  per cycle, i.e. 16 / 8 = 2 logical 8-bit output columns of a 128-row
  dot product per inference -> 128 x 2 = **256 operations** (Table I).
* A *macro* is ``capacity_bits`` of cells behind one ADC bank; only one
  subarray of a macro is active at a time (different macros on the chip
  run in parallel).
* Density includes peripherals via ``array_efficiency`` (cell area /
  macro area), calibrated to the published 5 Mb/mm^2 (ROM) and
  19x-lower SRAM-CiM figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.cim.macro import MacroConfig

#: Table I as printed in the paper, for paper-vs-measured reporting.
TABLE1_PAPER: Dict[str, float] = {
    "process_nm": 28,
    "macro_size_mb": 1.2,
    "macro_area_mm2": 0.24,
    "macro_density_mb_mm2": 5.0,
    "cell_area_um2": 0.014,
    "input_bits": 8,
    "weight_bits": 8,
    "inference_time_ns": 8.9,
    "operation_number": 256,
    "throughput_gops": 28.8,
    "area_efficiency_gops_mm2": 119.4,
    "energy_efficiency_tops_w": 11.5,
    "standby_power_w": 0.0,
}


@dataclass
class MacroSpec:
    """Analytic model of one CiM macro (array + ADC bank + peripherals)."""

    name: str
    config: MacroConfig = field(default_factory=MacroConfig)
    #: Total storage behind one ADC bank (bits).
    capacity_bits: int = 1_200_000
    #: Cell-array area divided by total macro area.  CiM macros are
    #: peripheral-dominated; ~7% reproduces the published densities.
    array_efficiency: float = 0.0707

    def __post_init__(self):
        if not 0 < self.array_efficiency <= 1:
            raise ValueError("array efficiency must be in (0, 1]")
        if self.capacity_bits < self.config.capacity_bits:
            raise ValueError("macro capacity below a single subarray")

    # -- geometry --------------------------------------------------------
    @property
    def n_subarrays(self) -> int:
        return self.capacity_bits // self.config.capacity_bits

    @property
    def cell_array_area_mm2(self) -> float:
        return self.capacity_bits * self.config.cell.area_um2 * 1e-6

    @property
    def area_mm2(self) -> float:
        return self.cell_array_area_mm2 / self.array_efficiency

    @property
    def density_mb_mm2(self) -> float:
        return self.capacity_bits / 1e6 / self.area_mm2

    # -- throughput ------------------------------------------------------
    @property
    def ops_per_inference(self) -> int:
        """MACs resolved per inference pass (Table I 'operation number')."""
        return self.config.rows * self.config.n_adcs // self.config.weight_bits

    @property
    def inference_time_ns(self) -> float:
        return self.config.input_bits * self.config.cycle_time_ns

    @property
    def throughput_gops(self) -> float:
        return self.ops_per_inference / self.inference_time_ns

    @property
    def area_efficiency_gops_mm2(self) -> float:
        return self.throughput_gops / self.area_mm2

    # -- energy ----------------------------------------------------------
    @property
    def energy_per_inference_pj(self) -> float:
        """Energy of one inference pass, from the circuit constants.

        Conversions: ``n_adcs`` per cycle for ``input_bits`` cycles.
        Word lines: all rows driven each cycle with ~50% input-bit
        activity.  Bit lines: the 16 selected columns discharge with an
        average ON-cell probability of 0.25 (random input/weight bits).
        """
        cfg = self.config
        cycles = cfg.input_bits
        conversions = cfg.n_adcs * cycles
        adc = conversions * cfg.adc.energy_fj
        wl = cfg.rows * cycles * 0.5 * cfg.wl_energy_fj
        bitline = cfg.n_adcs * cycles * (cfg.rows * 0.25) * cfg.cell.read_energy_fj
        peripheral = cycles * cfg.peripheral_energy_fj_per_cycle
        return (adc + wl + bitline + peripheral) / 1000.0

    @property
    def energy_per_op_fj(self) -> float:
        return self.energy_per_inference_pj * 1000.0 / self.ops_per_inference

    @property
    def tops_per_watt(self) -> float:
        return 1e3 / self.energy_per_op_fj / 1.0  # fJ/op -> TOPS/W

    @property
    def standby_power_w(self) -> float:
        leak_pw = self.config.cell.standby_leakage_pw
        return leak_pw * 1e-12 * self.capacity_bits

    # -- reporting -------------------------------------------------------
    def table(self) -> Dict[str, float]:
        """Table I rows as computed by this model."""
        return {
            "process_nm": 28,
            "macro_size_mb": self.capacity_bits / 1e6,
            "macro_area_mm2": self.area_mm2,
            "macro_density_mb_mm2": self.density_mb_mm2,
            "cell_area_um2": self.config.cell.area_um2,
            "input_bits": self.config.input_bits,
            "weight_bits": self.config.weight_bits,
            "inference_time_ns": self.inference_time_ns,
            "operation_number": self.ops_per_inference,
            "throughput_gops": self.throughput_gops,
            "area_efficiency_gops_mm2": self.area_efficiency_gops_mm2,
            "energy_efficiency_tops_w": self.tops_per_watt,
            "standby_power_w": self.standby_power_w,
        }


def rom_macro_spec() -> MacroSpec:
    """The proposed 1.2 Mb ROM-CiM macro (Table I)."""
    return MacroSpec(
        name="rom-cim",
        config=MacroConfig(cell=ROM_1T),
        capacity_bits=1_200_000,
        array_efficiency=0.0707,
    )


def sram_macro_spec() -> MacroSpec:
    """The 384 kb SRAM-CiM macro of [3] (ISSCC'21) used as the baseline.

    Same readout peripherals as the ROM macro (the paper reuses [3]'s),
    so compute energy matches; density is ~19x lower because of the
    larger cell and the read/write IO interface (lower array efficiency).
    """
    return MacroSpec(
        name="sram-cim",
        config=MacroConfig(cell=SRAM_CIM_6T),
        capacity_bits=384_000,
        array_efficiency=0.068,
    )
