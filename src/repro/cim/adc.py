"""ADC models for CiM column readout.

The macro of Fig. 5 shares 16 column ADCs across 256 bit lines (16:1
column multiplexing); each ADC digitizes the remnant bit-line charge to
5 bits.  Quantizing a 128-row accumulation to 32 levels is the dominant
*arithmetic* non-ideality of the macro and is modelled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class AdcSpec:
    """A column ADC.

    ``energy_fj`` is per conversion; the default is calibrated so a full
    macro pass lands on Table I's 11.5 TOPS/W (see ``repro.cim.spec``).
    """

    bits: int = 5
    energy_fj: float = 78.0
    conversion_time_ns: float = 1.1
    area_um2: float = 360.0

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError(f"ADC needs >= 1 bit, got {self.bits}")

    @property
    def levels(self) -> int:
        return 2**self.bits

    def quantize_counts(self, counts: np.ndarray, full_scale: float) -> np.ndarray:
        """Digitize bit-line accumulation counts.

        ``counts`` are the number of discharging cells per column (the
        analog MAC value); ``full_scale`` is the count mapped to the top
        code (the number of simultaneously activated rows).  Returns the
        reconstructed counts ``code * full_scale / (levels - 1)``.
        """
        if full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {full_scale}")
        # One LSB never resolves below a single cell's discharge: when the
        # activated row count is at most the code count, every integer
        # count is exactly representable (step = 1).
        step = max(1.0, full_scale / (self.levels - 1))
        codes = np.clip(np.rint(np.asarray(counts) / step), 0, self.levels - 1)
        return codes * step


@dataclass
class SharedAdcBank:
    """A bank of ``n_adcs`` ADCs multiplexed over ``n_columns`` bit lines."""

    adc: AdcSpec
    n_adcs: int
    n_columns: int

    def __post_init__(self):
        if self.n_columns % self.n_adcs != 0:
            raise ValueError(
                f"{self.n_columns} columns cannot be evenly shared by "
                f"{self.n_adcs} ADCs"
            )

    @property
    def mux_ratio(self) -> int:
        return self.n_columns // self.n_adcs

    def conversions_for_full_readout(self) -> int:
        """ADC conversions needed to read every column once."""
        return self.n_columns

    def readout_time_ns(self, columns: Optional[int] = None) -> float:
        """Time to read ``columns`` bit lines through the shared bank."""
        columns = self.n_columns if columns is None else columns
        rounds = -(-columns // self.n_adcs)  # ceil division
        return rounds * self.adc.conversion_time_ns

    def readout_energy_fj(self, columns: Optional[int] = None) -> float:
        columns = self.n_columns if columns is None else columns
        return columns * self.adc.energy_fj
