"""Static device-variation Monte-Carlo for the CiM macro.

Section 2 motivates ROM-CiM partly by reliability: CMOS ROM has "high
reliability of read and write disturbance immunity", while the
beyond-CMOS alternatives (RRAM/MRAM/FeFET) suffer "device variations".
This module quantifies how much *static* variation the bit-serial
macro arithmetic tolerates, so that claim has a number attached:

* **Cell mismatch** — each cell's discharge current deviates by a fixed
  multiplicative factor ``1 + N(0, cell_sigma)``, sampled once per chip
  instance (process mismatch, not cycle noise).
* **ADC offset / gain** — each column conversion sees a fixed count
  offset ``N(0, adc_offset_sigma)`` and gain ``1 + N(0, adc_gain_sigma)``
  per physical column (the column-mux static error budget).

:func:`monte_carlo` fabricates many virtual chips, runs the same
workload through each, and reports the error distribution — the same
experiment a silicon team runs across dies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cim.macro import CimMacro, MacroConfig


@dataclass(frozen=True)
class VariationModel:
    """Static per-chip non-ideality magnitudes."""

    #: Relative sigma of each cell's discharge strength.
    cell_sigma: float = 0.0
    #: Absolute count offset sigma of each column's conversion.
    adc_offset_sigma: float = 0.0
    #: Relative gain error sigma of each column's conversion.
    adc_gain_sigma: float = 0.0

    def __post_init__(self):
        if min(self.cell_sigma, self.adc_offset_sigma, self.adc_gain_sigma) < 0:
            raise ValueError("variation sigmas cannot be negative")

    @property
    def is_ideal(self) -> bool:
        return (
            self.cell_sigma == 0
            and self.adc_offset_sigma == 0
            and self.adc_gain_sigma == 0
        )


def apply_adc_errors(
    counts: np.ndarray,
    *,
    gain,
    offset,
    max_counts: float,
) -> np.ndarray:
    """Apply ADC gain/offset errors at the count level, then rail-clip.

    The canonical count-domain error model shared by the static
    Monte-Carlo (:func:`perturbed_matmul`) and the live ADC-drift path
    of the chaos runtime: counts are scaled by ``gain``, shifted by
    ``offset``, and clipped to the physical rail ``[0, max_counts]``
    before quantization — a discharge count can never be negative nor
    exceed the rows participating in the pass.
    """
    counts = counts * gain + offset
    return np.clip(counts, 0.0, max_counts)


def perturbed_matmul(
    macro: CimMacro,
    x: np.ndarray,
    variation: VariationModel,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One virtual chip: bit-serial MVM under static variation.

    The mismatch factors are sampled once and applied to every cycle —
    exactly how a fabricated die behaves, unlike the per-observation
    noise of :class:`~repro.cim.bitline.BitlineModel`.
    """
    rng = rng if rng is not None else np.random.default_rng()
    cfg = macro.config
    x = np.asarray(x)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != macro.rows_used:
        raise ValueError(
            f"input has {x.shape[0]} rows, macro is programmed with "
            f"{macro.rows_used}"
        )

    from repro.cim.macro import _bit_planes

    in_planes, in_weights = _bit_planes(x, cfg.input_bits, cfg.signed_inputs)

    weight_planes = macro._weight_planes  # (wb, rows, cols)
    if variation.cell_sigma > 0:
        cell_factor = 1.0 + rng.normal(0.0, variation.cell_sigma, weight_planes.shape)
        weight_planes = weight_planes * cell_factor

    counts = np.einsum("jrn,krc->jkcn", in_planes, weight_planes, optimize=True)

    gain = 1.0
    if variation.adc_gain_sigma > 0:
        gain = 1.0 + rng.normal(
            0.0, variation.adc_gain_sigma, (counts.shape[2], 1)
        )
    offset = 0.0
    if variation.adc_offset_sigma > 0:
        offset = rng.normal(0.0, variation.adc_offset_sigma, (counts.shape[2], 1))
    counts = apply_adc_errors(
        counts, gain=gain, offset=offset, max_counts=float(macro.rows_used)
    )

    quantized = cfg.adc.quantize_counts(counts, float(macro.rows_used))
    result = np.einsum(
        "j,k,jkcn->cn", in_weights, macro._plane_weights, quantized, optimize=True
    )
    return result[:, 0] if squeeze else result


@dataclass
class MonteCarloResult:
    """Error distribution across fabricated chip instances."""

    variation: VariationModel
    rel_errors: List[float] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.rel_errors)

    @property
    def mean(self) -> float:
        return float(np.mean(self.rel_errors)) if self.rel_errors else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.rel_errors)) if self.rel_errors else 0.0

    @property
    def p95(self) -> float:
        if not self.rel_errors:
            return 0.0
        return float(np.percentile(self.rel_errors, 95))

    @property
    def worst(self) -> float:
        return float(max(self.rel_errors)) if self.rel_errors else 0.0


def monte_carlo(
    variation: VariationModel,
    config: Optional[MacroConfig] = None,
    n_trials: int = 25,
    logical_cols: int = 16,
    n_vectors: int = 8,
    seed: int = 0,
) -> MonteCarloResult:
    """Fabricate ``n_trials`` virtual chips and measure each one's error."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    config = config if config is not None else MacroConfig()
    rng = np.random.default_rng(seed)
    low, high = config.weight_range()
    weights = rng.integers(low, high + 1, size=(config.rows, logical_cols))
    x = rng.integers(0, 2**config.input_bits, size=(config.rows, n_vectors))
    macro = CimMacro(config, weights, rng=np.random.default_rng(seed + 1))
    exact = macro.exact_matmul(x)
    scale = float(np.abs(exact).mean())

    result = MonteCarloResult(variation=variation)
    for trial in range(n_trials):
        approx = perturbed_matmul(
            macro, x, variation, rng=np.random.default_rng(seed + 100 + trial)
        )
        error = float(np.abs(approx - exact).mean() / scale) if scale else 0.0
        result.rel_errors.append(error)
    return result


def variation_sweep(
    cell_sigmas: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    adc_offset_sigmas: Sequence[float] = (0.0, 1.0, 2.0),
    n_trials: int = 15,
    seed: int = 0,
) -> List[Tuple[VariationModel, MonteCarloResult]]:
    """Grid sweep over the two dominant static error sources."""
    results = []
    for cell_sigma in cell_sigmas:
        for offset_sigma in adc_offset_sigmas:
            variation = VariationModel(
                cell_sigma=cell_sigma, adc_offset_sigma=offset_sigma
            )
            results.append(
                (variation, monte_carlo(variation, n_trials=n_trials, seed=seed))
            )
    return results


def tolerable_cell_sigma(
    error_budget: float = 0.05,
    sigmas: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.10, 0.20),
    n_trials: int = 15,
    seed: int = 0,
) -> float:
    """Largest swept mismatch sigma whose p95 error stays in budget.

    The headline robustness number: how sloppy the 1T cells may be
    before the 5-bit-ADC arithmetic (whose quantization already costs a
    few percent) visibly degrades.
    """
    if error_budget <= 0:
        raise ValueError("error budget must be positive")
    baseline = monte_carlo(VariationModel(), n_trials=1, seed=seed).mean
    best = 0.0
    for sigma in sorted(sigmas):
        result = monte_carlo(
            VariationModel(cell_sigma=sigma), n_trials=n_trials, seed=seed
        )
        if result.p95 - baseline <= error_budget:
            best = sigma
    return best
