"""ADC-count vs activated-rows design space (section 4.3.1, future work).

The paper notes that its macro inherits the readout style of [3] and
that "the trade-off between the number of ADCs and simultaneously
activated rows ... could be explored in future works".  This module is
that exploration:

* **Activated rows** ``W``: driving fewer word lines per evaluation
  splits a 128-row dot product into ``ceil(rows / W)`` partial sums,
  each digitized separately and accumulated digitally.  Smaller ``W``
  shrinks the ADC full scale (finer LSB, better accuracy) but
  multiplies evaluations (more latency and conversion energy).
* **ADC count** ``A``: more column ADCs read the array in fewer
  multiplexing rounds (lower latency) at the cost of ADC area — the
  dominant peripheral in CiM macros.

:func:`partial_activation_matmul` runs the functional bit-serial path
under a row-activation limit; :class:`DesignPoint` carries the measured
error together with the analytic latency/energy/area of the corner; and
:func:`pareto_frontier` reduces a sweep to its non-dominated corners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cim.macro import CimMacro, MacroConfig, MacroStats


def partial_activation_matmul(
    macro: CimMacro,
    x: np.ndarray,
    activated_rows: int,
) -> Tuple[np.ndarray, MacroStats]:
    """Bit-serial MVM with at most ``activated_rows`` rows on per cycle.

    Row groups are digitized one at a time with an ADC full scale equal
    to the group size; group partial sums are accumulated digitally.
    ``activated_rows == macro.rows_used`` reproduces
    :meth:`CimMacro.matmul` exactly.
    """
    if activated_rows < 1:
        raise ValueError(f"activated_rows must be >= 1, got {activated_rows}")
    x = np.asarray(x)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != macro.rows_used:
        raise ValueError(
            f"input has {x.shape[0]} rows, macro is programmed with "
            f"{macro.rows_used}"
        )
    activated_rows = min(activated_rows, macro.rows_used)

    total: Optional[np.ndarray] = None
    stats = MacroStats()
    for start in range(0, macro.rows_used, activated_rows):
        stop = min(start + activated_rows, macro.rows_used)
        group = CimMacro(
            _group_config(macro.config, stop - start),
            macro.weights[start:stop],
            rng=macro._rng,
        )
        partial, group_stats = group.matmul(x[start:stop])
        total = partial if total is None else total + partial
        stats = stats + group_stats
    # Groups share one physical array: MACs were already counted per
    # group and sum to the full product, but keep the row bookkeeping
    # intact by construction (nothing to fix up).
    assert total is not None
    return (total[:, 0] if squeeze else total), stats


def _group_config(config: MacroConfig, group_rows: int) -> MacroConfig:
    """The parent subarray seen through a ``group_rows``-row activation."""
    bitline = config.bitline
    if bitline is not None:
        bitline = type(bitline)(
            max_rows=group_rows,
            v_precharge=bitline.v_precharge,
            noise_sigma_counts=bitline.noise_sigma_counts,
            saturation=bitline.saturation,
        )
    return MacroConfig(
        rows=group_rows,
        phys_columns=config.phys_columns,
        n_adcs=config.n_adcs,
        adc=config.adc,
        cell=config.cell,
        weight_bits=config.weight_bits,
        input_bits=config.input_bits,
        signed_weights=config.signed_weights,
        signed_inputs=config.signed_inputs,
        cycle_time_ns=config.cycle_time_ns,
        wl_energy_fj=config.wl_energy_fj,
        peripheral_energy_fj_per_cycle=config.peripheral_energy_fj_per_cycle,
        bitline=bitline,
    )


@dataclass
class DesignPoint:
    """One (ADC count, activated rows) corner with its measured costs."""

    n_adcs: int
    activated_rows: int
    rel_error: float
    latency_ns: float
    energy_per_mac_fj: float
    adc_area_mm2: float
    throughput_gops: float

    @property
    def area_efficiency_gops_mm2(self) -> float:
        if self.adc_area_mm2 == 0:
            return float("inf")
        return self.throughput_gops / self.adc_area_mm2

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over (error, latency, ADC area)."""
        no_worse = (
            self.rel_error <= other.rel_error
            and self.latency_ns <= other.latency_ns
            and self.adc_area_mm2 <= other.adc_area_mm2
        )
        better = (
            self.rel_error < other.rel_error
            or self.latency_ns < other.latency_ns
            or self.adc_area_mm2 < other.adc_area_mm2
        )
        return no_worse and better


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated corners of a sweep, in sweep order."""
    points = list(points)
    return [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]


@dataclass
class DesignSpaceConfig:
    """Sweep ranges and the fixed workload used to measure error."""

    adc_counts: Sequence[int] = (8, 16, 32, 64)
    activated_rows: Sequence[int] = (16, 32, 64, 128)
    rows: int = 128
    logical_cols: int = 16
    n_vectors: int = 16
    seed: int = 0


@dataclass
class DesignSpaceResult:
    points: List[DesignPoint] = field(default_factory=list)

    def frontier(self) -> List[DesignPoint]:
        return pareto_frontier(self.points)

    def at(self, n_adcs: int, activated_rows: int) -> DesignPoint:
        for p in self.points:
            if p.n_adcs == n_adcs and p.activated_rows == activated_rows:
                return p
        raise KeyError(f"no point at ({n_adcs} ADCs, {activated_rows} rows)")


def explore(config: Optional[DesignSpaceConfig] = None) -> DesignSpaceResult:
    """Measure every corner of the ADC-count x activated-rows grid."""
    config = config if config is not None else DesignSpaceConfig()
    rng = np.random.default_rng(config.seed)
    base = MacroConfig(rows=config.rows)
    low, high = base.weight_range()
    weights = rng.integers(low, high + 1, size=(config.rows, config.logical_cols))
    x = rng.integers(0, 2**base.input_bits, size=(config.rows, config.n_vectors))

    result = DesignSpaceResult()
    for n_adcs in config.adc_counts:
        if base.phys_columns % n_adcs != 0:
            raise ValueError(
                f"{n_adcs} ADCs do not evenly share {base.phys_columns} columns"
            )
        macro_config = MacroConfig(rows=config.rows, n_adcs=n_adcs)
        macro = CimMacro(
            macro_config, weights, rng=np.random.default_rng(config.seed + 1)
        )
        exact = macro.exact_matmul(x)
        scale = float(np.abs(exact).mean())
        for w in config.activated_rows:
            approx, stats = partial_activation_matmul(macro, x, w)
            rel_error = (
                float(np.abs(approx - exact).mean() / scale) if scale else 0.0
            )
            latency = stats.latency_ns / config.n_vectors
            macs_per_vector = stats.macs / config.n_vectors
            result.points.append(
                DesignPoint(
                    n_adcs=n_adcs,
                    activated_rows=min(w, config.rows),
                    rel_error=rel_error,
                    latency_ns=latency,
                    energy_per_mac_fj=stats.energy_per_mac_fj,
                    adc_area_mm2=n_adcs * macro_config.adc.area_um2 * 1e-6,
                    throughput_gops=macs_per_vector / latency if latency else 0.0,
                )
            )
    return result
