"""Memory cell models (Fig. 2 and Fig. 4 of the paper).

Areas are 28 nm layout numbers anchored on the paper's headline figures:
the proposed 1T ROM cell occupies 0.014 um^2/bit; a compact-rule 6T SRAM
is 16x larger; the SRAM-CiM cell of [3] (ISSCC'21) is 18.5x larger; the
other published CiM cells of Fig. 4 span 14.5x-29.5x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CellSpec:
    """Static properties of one memory/CiM bit cell."""

    name: str
    transistors: int
    area_um2: float
    volatile: bool
    #: True when the cell supports in-array multiply-accumulate.
    computes: bool
    #: Energy to discharge the bitline through one ON cell, femtojoules.
    read_energy_fj: float
    #: Standby leakage power per cell, picowatts (0 for ROM: non-volatile
    #: and unpowered when idle).
    standby_leakage_pw: float

    @property
    def density_mb_per_mm2(self) -> float:
        """Raw cell-array density in Mb/mm^2 (no peripherals)."""
        return 1e6 / (self.area_um2 * 1e6) * 1.0  # bits/um^2 -> Mb/mm^2

    def relative_area(self, other: "CellSpec") -> float:
        """Area of ``self`` relative to ``other`` (>1 means bigger)."""
        return self.area_um2 / other.area_um2


#: The proposed 1T/cell ROM-CiM cell (Fig. 4a): gate fused to WL ('1')
#: or grounded ('0').  0.014 um^2/bit — denser than 5-7nm SRAM.
ROM_1T = CellSpec(
    name="rom-1t",
    transistors=1,
    area_um2=0.014,
    volatile=False,
    computes=True,
    read_energy_fj=0.45,
    standby_leakage_pw=0.0,
)

#: Compact-rule 6T SRAM in the same 28nm process (16x the ROM cell).
SRAM_6T = CellSpec(
    name="sram-6t",
    transistors=6,
    area_um2=0.014 * 16.0,
    volatile=True,
    computes=False,
    read_energy_fj=0.55,
    standby_leakage_pw=1.2,
)

#: The 6T SRAM-CiM cell of ISSCC'21 [3] (18.5x the ROM cell).
SRAM_CIM_6T = CellSpec(
    name="sram-cim-6t",
    transistors=6,
    area_um2=0.014 * 18.5,
    volatile=True,
    computes=True,
    read_energy_fj=0.60,
    standby_leakage_pw=1.2,
)

#: 8T read-decoupled CiM cell (Fig. 4c).
SRAM_CIM_8T = CellSpec(
    name="sram-cim-8t",
    transistors=8,
    area_um2=0.014 * 22.0,
    volatile=True,
    computes=True,
    read_energy_fj=0.58,
    standby_leakage_pw=1.6,
)

#: Twin-8T multibit CiM cell (Fig. 4d, JSSC'20 [19]).
SRAM_CIM_TWIN8T = CellSpec(
    name="sram-cim-twin8t",
    transistors=16,
    area_um2=0.014 * 25.9,
    volatile=True,
    computes=True,
    read_energy_fj=0.62,
    standby_leakage_pw=3.0,
)

#: 10T dot-product cell (Fig. 4e, CONV-SRAM [20]).
SRAM_CIM_10T = CellSpec(
    name="sram-cim-10t",
    transistors=10,
    area_um2=0.014 * 29.5,
    volatile=True,
    computes=True,
    read_energy_fj=0.65,
    standby_leakage_pw=2.0,
)

#: Dual-split LCC-6T cell (Fig. 4f, TCAS-I'19 [21]) — the densest
#: published CiM cell in the comparison, still 14.5x the ROM cell.
SRAM_CIM_LCC6T = CellSpec(
    name="sram-cim-lcc6t",
    transistors=6,
    area_um2=0.014 * 14.5,
    volatile=True,
    computes=True,
    read_energy_fj=0.60,
    standby_leakage_pw=1.2,
)


def all_cim_cells() -> List[CellSpec]:
    """Every compute-capable cell of the Fig. 4 comparison."""
    return [
        ROM_1T,
        SRAM_CIM_6T,
        SRAM_CIM_8T,
        SRAM_CIM_TWIN8T,
        SRAM_CIM_10T,
        SRAM_CIM_LCC6T,
    ]
