"""Layer-level execution on tiled CiM subarrays.

A network layer's weight matrix (rows = flattened input patch, cols =
output channels) rarely fits one 128 x 32-word subarray.
:class:`CimTiledMatmul` splits it into subarray tiles, runs each tile
through the functional :class:`~repro.cim.macro.CimMacro`, accumulates
partial sums digitally across row tiles (the "Shift & Add" block of
Fig. 5 extended across subarrays), and aggregates energy/latency stats.

Row tiles of the same output column can live in different subarrays and
activate simultaneously, so latency counts one tile's serial passes
while energy counts all tiles — matching the paper's high-parallelism
mapping ("storing the weights of different layers to the same sub-array
... to achieve high ADC utilization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cim.encoding import ActivationEncoding
from repro.cim.macro import CimMacro, MacroConfig, MacroStats
from repro.nn import functional as F
from repro.quant.quantizer import QuantSpec, quantize


def validate_groups(out_channels: int, in_per_group: int, groups: int, in_channels: int) -> None:
    """Shared validation of a grouped convolution's channel layout.

    One source for both the reference path and the runtime's per-group
    lowering, so their error behaviour cannot drift.
    """
    if groups < 1 or out_channels % groups:
        raise ValueError(
            f"groups={groups} must be >= 1 and divide out channels "
            f"({out_channels})"
        )
    if in_channels != in_per_group * groups:
        raise ValueError(
            f"input has {in_channels} channels but the grouped weight "
            f"expects {in_per_group * groups} ({groups} groups x "
            f"{in_per_group})"
        )


@dataclass
class _Tile:
    macro: CimMacro
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int


class CimTiledMatmul:
    """An integer weight matrix mapped onto CiM subarray tiles.

    Parameters
    ----------
    weights:
        Integer matrix (R, C) — rows are inputs, columns outputs.
    config:
        Subarray configuration shared by all tiles.
    """

    def __init__(
        self,
        weights: np.ndarray,
        config: Optional[MacroConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config if config is not None else MacroConfig()
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got {weights.shape}")
        self.shape = weights.shape
        rng = rng if rng is not None else np.random.default_rng()

        rows, cols = weights.shape
        tile_r = self.config.rows
        tile_c = self.config.logical_columns
        self.tiles: List[_Tile] = []
        for r0 in range(0, rows, tile_r):
            r1 = min(r0 + tile_r, rows)
            for c0 in range(0, cols, tile_c):
                c1 = min(c0 + tile_c, cols)
                macro = CimMacro(self.config, weights[r0:r1, c0:c1], rng=rng)
                self.tiles.append(_Tile(macro, r0, r1, c0, c1))

    @property
    def n_subarrays(self) -> int:
        return len(self.tiles)

    @property
    def n_row_tiles(self) -> int:
        return -(-self.shape[0] // self.config.rows)

    def matmul(
        self,
        x: np.ndarray,
        encoding: Optional["ActivationEncoding"] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Compute ``weights.T @ x`` (x: (R,) or (R, N)) through all tiles.

        ``encoding`` selects the word-line activation scheme (section
        3.1); the default is the bit-serial stream of Table I.  The
        pulse encodings require unsigned activations.  ``rng``
        optionally overrides each tile's construction-time generator
        for this call's noise draws (used by the compile-once runtime
        to attach a session RNG to long-lived programmed engines).
        """
        x = np.asarray(x)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.shape[0]:
            raise ValueError(
                f"input rows {x.shape[0]} do not match weight rows {self.shape[0]}"
            )
        out = np.zeros((self.shape[1], x.shape[1]))
        total = MacroStats()
        max_tile_latency = 0.0
        for tile in self.tiles:
            x_slice = x[tile.row_start : tile.row_stop]
            if encoding is None:
                partial, stats = tile.macro.matmul(x_slice, rng=rng)
            else:
                partial, stats = encoding.matmul(tile.macro, x_slice, rng=rng)
            out[tile.col_start : tile.col_stop] += partial
            max_tile_latency = max(max_tile_latency, stats.latency_ns)
            total = total + stats
        # Tiles run in parallel subarrays: wall-clock is the slowest tile.
        total.latency_ns = max_tile_latency
        return (out[:, 0] if squeeze else out), total

    def exact_matmul(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.int64)
        out = None
        for tile in self.tiles:
            partial = tile.macro.exact_matmul(x[tile.row_start : tile.row_stop])
            if out is None:
                shape = (self.shape[1],) + partial.shape[1:]
                out = np.zeros(shape, dtype=np.int64)
            out[tile.col_start : tile.col_stop] += partial
        return out


def reference_cim_linear(
    x: np.ndarray,
    weight: np.ndarray,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
) -> Tuple[np.ndarray, MacroStats]:
    """The seed per-call linear path: re-quantize and rebuild every call.

    Kept verbatim as the bit-exact oracle for :func:`cim_linear` (which
    now routes through the compile-once runtime) and as the baseline
    the runtime benchmarks measure against.
    """
    config = config if config is not None else MacroConfig()
    x = np.asarray(x, dtype=np.float64)
    signed_inputs = bool((x < 0).any())
    act_spec = QuantSpec(bits=activation_bits, signed=signed_inputs)
    x_codes, x_scale = quantize(x, act_spec)

    w_spec = QuantSpec(bits=config.weight_bits, signed=True, per_channel_axis=0)
    w_codes, w_scale = quantize(np.asarray(weight), w_spec)

    run_config = MacroConfig(
        rows=config.rows,
        phys_columns=config.phys_columns,
        n_adcs=config.n_adcs,
        adc=config.adc,
        cell=config.cell,
        weight_bits=config.weight_bits,
        input_bits=activation_bits,
        signed_weights=True,
        signed_inputs=signed_inputs,
        cycle_time_ns=config.cycle_time_ns,
        wl_energy_fj=config.wl_energy_fj,
        peripheral_energy_fj_per_cycle=config.peripheral_energy_fj_per_cycle,
        bitline=config.bitline,
    )
    engine = CimTiledMatmul(w_codes.T, run_config, rng=rng)
    y_codes, stats = engine.matmul(x_codes.T, encoding=encoding)  # (out, N)
    scale = float(x_scale) * w_scale.reshape(-1, 1)
    return (y_codes * scale).T, stats


def reference_cim_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
    groups: int = 1,
) -> Tuple[np.ndarray, MacroStats]:
    """The seed per-call convolution path (see :func:`reference_cim_linear`).

    ``groups`` partitions channels into independent convolutions (a
    depthwise conv is ``groups == in_channels``): group ``g`` runs its
    channel slice through its own macro set, in group index order
    against the shared ``rng``, with per-group batch-global activation
    quantization and per-group signedness — the exact semantics the
    compiled runtime's per-group engines implement.  Stats sum over
    groups (sequential word-line streaming).
    """
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    n = x.shape[0]
    oc, icg, kh, kw = weight.shape
    if groups != 1:
        validate_groups(oc, icg, groups, x.shape[1])
        ocg = oc // groups
        outs = []
        total = MacroStats()
        for g in range(groups):
            out, stats = reference_cim_conv2d(
                x[:, g * icg : (g + 1) * icg],
                weight[g * ocg : (g + 1) * ocg],
                stride=stride,
                padding=padding,
                config=config,
                activation_bits=activation_bits,
                rng=rng,
                encoding=encoding,
            )
            total = total + stats
            outs.append(out)
        return np.concatenate(outs, axis=1), total
    cols, (out_h, out_w) = F.im2col(
        x, (kh, kw), (stride, stride), (padding, padding)
    )  # (N, C*kh*kw, P)
    patches = cols.transpose(0, 2, 1).reshape(-1, icg * kh * kw)  # (N*P, K)
    flat, stats = reference_cim_linear(
        patches, weight.reshape(oc, -1), config, activation_bits, rng, encoding
    )
    out = flat.reshape(n, out_h * out_w, oc).transpose(0, 2, 1)
    return out.reshape(n, oc, out_h, out_w), stats


def cim_linear(
    x: np.ndarray,
    weight: np.ndarray,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
    cache=None,
) -> Tuple[np.ndarray, MacroStats]:
    """Run ``x @ weight.T`` (float) through quantized CiM execution.

    ``x`` is (N, in_features) float, ``weight`` (out, in) float.  Both are
    symmetrically quantized (activations unsigned if non-negative), the
    product is computed by the tiled macro model, and the result is
    rescaled to float.  Returns ``(y, stats)``.  ``encoding`` selects
    the word-line scheme (post-ReLU layers are unsigned, so the pulse
    encodings apply directly).

    This is a compile-and-run shim over the deployment runtime: the
    weights are quantized and programmed into tiled engines once per
    distinct ``(weights, config)`` and shared through the engine cache
    (``cache``; defaults to the process-wide one), so repeated calls
    only pay activation quantization and macro arithmetic.  Results are
    bitwise identical to :func:`reference_cim_linear` at the same RNG.
    """
    from repro.runtime.engine import linear_engine  # lazy: avoids import cycle

    config = config if config is not None else MacroConfig()
    x = np.asarray(x, dtype=np.float64)
    signed_inputs = bool((x < 0).any())
    engine = linear_engine(
        weight,
        config=config,
        activation_bits=activation_bits,
        signed_inputs=signed_inputs,
        cache=cache,
    )
    return engine.execute(x, rng=rng, encoding=encoding)


def cim_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
    encoding: Optional[ActivationEncoding] = None,
    cache=None,
    groups: int = 1,
) -> Tuple[np.ndarray, MacroStats]:
    """Convolution through CiM: im2col + :func:`cim_linear` semantics.

    ``x``: (N, C, H, W) float; ``weight``: (O, C / groups, kh, kw) float.
    Returns the float output (N, O, H', W') and aggregated macro stats.
    Like :func:`cim_linear`, a compile-and-run shim over the runtime's
    cached engines; bitwise identical to :func:`reference_cim_conv2d`.
    ``groups > 1`` lowers to one cached engine per channel group (see
    :func:`repro.runtime.engine.grouped_conv_execute`).
    """
    from repro.runtime.engine import (  # lazy: avoids import cycle
        conv_engine,
        conv_patches,
        grouped_conv_execute,
    )

    config = config if config is not None else MacroConfig()
    x = np.asarray(x, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    if groups != 1:
        ocg = weight.shape[0] // max(groups, 1)

        def engine_for(g: int, signed: bool):
            return conv_engine(
                weight[g * ocg : (g + 1) * ocg],
                stride=stride,
                padding=padding,
                config=config,
                activation_bits=activation_bits,
                signed_inputs=signed,
                cache=cache,
            )

        return grouped_conv_execute(
            x, weight.shape, groups, stride, padding, engine_for,
            rng=rng, encoding=encoding,
        )
    # Signedness is a property of the im2col patches (what actually gets
    # quantized), not of the raw input: a stride larger than the kernel
    # can skip every negative pixel.
    patches, out_hw = conv_patches(x, weight.shape, stride, padding)
    signed_inputs = bool((patches < 0).any())
    engine = conv_engine(
        weight,
        stride=stride,
        padding=padding,
        config=config,
        activation_bits=activation_bits,
        signed_inputs=signed_inputs,
        cache=cache,
    )
    return engine.execute_patches(
        patches, x.shape[0], out_hw, rng=rng, encoding=encoding
    )
