"""Circuit-level computing-in-memory simulation.

Models the proposed 1T/cell ROM-CiM macro of Fig. 5 and its SRAM-CiM
counterparts (Fig. 4) at two levels:

* **Functional** — :class:`CimMacro` executes bit-serial matrix-vector
  products through the bitline charge-sharing + shared-ADC path,
  reproducing the arithmetic *including 5-bit ADC quantization error*,
  so network accuracy can be evaluated under CiM non-idealities.
* **Analytic** — :class:`MacroSpec` derives the Table I envelope
  (density, GOPS, GOPS/mm^2, TOPS/W) consumed by the system simulator.

Energy/latency constants are calibrated to Table I of the paper
(28 nm, 5 Mb/mm^2, 8.9 ns per 256-op inference, 11.5 TOPS/W).
"""

from repro.cim.cells import (
    CellSpec,
    ROM_1T,
    SRAM_6T,
    SRAM_CIM_6T,
    SRAM_CIM_8T,
    SRAM_CIM_TWIN8T,
    SRAM_CIM_10T,
    SRAM_CIM_LCC6T,
    all_cim_cells,
)
from repro.cim.adc import AdcSpec, SharedAdcBank
from repro.cim.bitline import BitlineModel
from repro.cim.macro import MacroConfig, CimMacro, MacroStats
from repro.cim.designspace import (
    DesignPoint,
    DesignSpaceConfig,
    DesignSpaceResult,
    explore,
    pareto_frontier,
    partial_activation_matmul,
)
from repro.cim.encoding import (
    ActivationEncoding,
    BitSerialEncoding,
    UnaryPulseEncoding,
    PulseWidthEncoding,
    default_encodings,
    encoding_by_name,
)
from repro.cim.spec import MacroSpec, rom_macro_spec, sram_macro_spec, TABLE1_PAPER
from repro.cim.variation import (
    VariationModel,
    MonteCarloResult,
    perturbed_matmul,
    monte_carlo,
    variation_sweep,
    tolerable_cell_sigma,
)
from repro.cim.mvm import (
    CimTiledMatmul,
    cim_linear,
    cim_conv2d,
    reference_cim_linear,
    reference_cim_conv2d,
)
from repro.cim.deploy import (
    CimDeployedModel,
    DeployedLayerInfo,
    DeploymentReport,
    deploy_model,
    fold_batchnorm,
)

__all__ = [
    "CellSpec",
    "ROM_1T",
    "SRAM_6T",
    "SRAM_CIM_6T",
    "SRAM_CIM_8T",
    "SRAM_CIM_TWIN8T",
    "SRAM_CIM_10T",
    "SRAM_CIM_LCC6T",
    "all_cim_cells",
    "AdcSpec",
    "SharedAdcBank",
    "BitlineModel",
    "MacroConfig",
    "CimMacro",
    "MacroStats",
    "DesignPoint",
    "DesignSpaceConfig",
    "DesignSpaceResult",
    "explore",
    "pareto_frontier",
    "partial_activation_matmul",
    "ActivationEncoding",
    "BitSerialEncoding",
    "UnaryPulseEncoding",
    "PulseWidthEncoding",
    "default_encodings",
    "encoding_by_name",
    "MacroSpec",
    "rom_macro_spec",
    "sram_macro_spec",
    "TABLE1_PAPER",
    "VariationModel",
    "MonteCarloResult",
    "perturbed_matmul",
    "monte_carlo",
    "variation_sweep",
    "tolerable_cell_sigma",
    "CimTiledMatmul",
    "cim_linear",
    "cim_conv2d",
    "reference_cim_linear",
    "reference_cim_conv2d",
    "CimDeployedModel",
    "DeployedLayerInfo",
    "DeploymentReport",
    "deploy_model",
    "fold_batchnorm",
]
