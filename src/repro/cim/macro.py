"""Functional bit-serial CiM macro (Fig. 5).

Executes integer matrix-vector products exactly the way the hardware
does: weights live as bit planes across physical columns, activations
stream in as serial bits on the word lines, each column's ON-cell count
is sensed through the bit-line model and digitized by a shared 5-bit
ADC, and the digital shift-and-add reassembles the multi-bit result.

The only deviations from an ideal integer matmul are therefore the ones
real silicon has: ADC quantization, optional bit-line noise, and
optional swing saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.cim.adc import AdcSpec, SharedAdcBank
from repro.cim.bitline import BitlineModel
from repro.cim.cells import CellSpec, ROM_1T


@dataclass
class MacroConfig:
    """Geometry and circuit parameters of one CiM subarray."""

    rows: int = 128
    phys_columns: int = 256
    n_adcs: int = 16
    adc: AdcSpec = field(default_factory=AdcSpec)
    cell: CellSpec = ROM_1T
    weight_bits: int = 8
    input_bits: int = 8
    signed_weights: bool = True
    signed_inputs: bool = False
    cycle_time_ns: float = 1.1125
    #: Word-line driver energy per activated row per cycle (fJ).
    wl_energy_fj: float = 4.4
    #: Control / decode / shift-and-add energy per cycle (fJ); calibrated
    #: together with the ADC energy so one inference pass hits Table I's
    #: 11.5 TOPS/W.
    peripheral_energy_fj_per_cycle: float = 1000.0
    bitline: Optional[BitlineModel] = None

    def __post_init__(self):
        if self.phys_columns % self.weight_bits != 0:
            raise ValueError(
                f"{self.phys_columns} physical columns do not hold an integer "
                f"number of {self.weight_bits}-bit weights"
            )
        if self.bitline is None:
            self.bitline = BitlineModel(max_rows=self.rows)

    @property
    def logical_columns(self) -> int:
        """Multi-bit weight words per row."""
        return self.phys_columns // self.weight_bits

    @property
    def capacity_bits(self) -> int:
        return self.rows * self.phys_columns

    def adc_bank(self) -> SharedAdcBank:
        return SharedAdcBank(self.adc, self.n_adcs, self.phys_columns)

    def weight_range(self) -> Tuple[int, int]:
        if self.signed_weights:
            return -(2 ** (self.weight_bits - 1)), 2 ** (self.weight_bits - 1) - 1
        return 0, 2**self.weight_bits - 1

    def input_range(self) -> Tuple[int, int]:
        if self.signed_inputs:
            return -(2 ** (self.input_bits - 1)), 2 ** (self.input_bits - 1) - 1
        return 0, 2**self.input_bits - 1


@dataclass
class MacroStats:
    """Cycle/energy accounting of macro activity.

    The ``link_*`` fields account inter-chiplet serial-link traffic when
    a model is sharded across chiplets (``repro.runtime.sharded``): bits
    moved, transfer energy, and transfer latency per
    :class:`~repro.arch.chiplet.ChipletLinkSpec`.  They stay zero on any
    single-chip execution path, and ``link_latency_ns`` is kept separate
    from the macro-compute ``latency_ns`` so pipeline schedules can
    overlap the two.
    """

    cycles: int = 0
    adc_conversions: int = 0
    row_activations: int = 0
    macs: int = 0
    wl_energy_fj: float = 0.0
    bitline_energy_fj: float = 0.0
    adc_energy_fj: float = 0.0
    peripheral_energy_fj: float = 0.0
    latency_ns: float = 0.0
    link_bits: float = 0.0
    link_energy_fj: float = 0.0
    link_latency_ns: float = 0.0

    @property
    def total_energy_fj(self) -> float:
        return (
            self.wl_energy_fj
            + self.bitline_energy_fj
            + self.adc_energy_fj
            + self.peripheral_energy_fj
            + self.link_energy_fj
        )

    @property
    def energy_per_mac_fj(self) -> float:
        return self.total_energy_fj / self.macs if self.macs else 0.0

    def __add__(self, other: "MacroStats") -> "MacroStats":
        return MacroStats(
            cycles=self.cycles + other.cycles,
            adc_conversions=self.adc_conversions + other.adc_conversions,
            row_activations=self.row_activations + other.row_activations,
            macs=self.macs + other.macs,
            wl_energy_fj=self.wl_energy_fj + other.wl_energy_fj,
            bitline_energy_fj=self.bitline_energy_fj + other.bitline_energy_fj,
            adc_energy_fj=self.adc_energy_fj + other.adc_energy_fj,
            peripheral_energy_fj=self.peripheral_energy_fj + other.peripheral_energy_fj,
            latency_ns=self.latency_ns + other.latency_ns,
            link_bits=self.link_bits + other.link_bits,
            link_energy_fj=self.link_energy_fj + other.link_energy_fj,
            link_latency_ns=self.link_latency_ns + other.link_latency_ns,
        )


def macro_pass_stats(
    config: MacroConfig,
    rows_used: int,
    cols_used: int,
    n_vectors: int,
    row_activations: int,
    counts_total: float,
) -> MacroStats:
    """Cycle/energy accounting of one bit-serial macro pass.

    The single source of the accounting formulas: both the reference
    :meth:`CimMacro.matmul` and the runtime's fast kernels build their
    stats through this function, so the two paths cannot drift apart.
    ``counts_total`` is the total ON-cell count over the pass.
    """
    phys_cols = cols_used * config.weight_bits
    rounds_per_bit = -(-phys_cols // config.n_adcs)
    cycles = config.input_bits * rounds_per_bit * n_vectors
    conversions = config.input_bits * phys_cols * n_vectors
    return MacroStats(
        cycles=cycles,
        adc_conversions=conversions,
        row_activations=row_activations,
        macs=rows_used * cols_used * n_vectors,
        wl_energy_fj=row_activations * config.wl_energy_fj,
        bitline_energy_fj=float(counts_total) * config.cell.read_energy_fj,
        adc_energy_fj=conversions * config.adc.energy_fj,
        peripheral_energy_fj=cycles * config.peripheral_energy_fj_per_cycle,
        latency_ns=cycles * config.cycle_time_ns,
    )


def _bit_planes(codes: np.ndarray, bits: int, signed: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose integer codes into bit planes and their signed weights.

    Two's-complement encoding: plane ``k`` carries weight ``2**k`` except
    the MSB of a signed code, which carries ``-2**(bits-1)``.
    Returns ``(planes, weights)`` with ``planes`` of shape
    ``(bits,) + codes.shape`` and values in {0, 1}.
    """
    codes = np.asarray(codes, dtype=np.int64)
    unsigned = codes & ((1 << bits) - 1)  # two's-complement reinterpretation
    planes = np.stack([(unsigned >> k) & 1 for k in range(bits)]).astype(np.float64)
    weights = np.array([float(1 << k) for k in range(bits)])
    if signed:
        weights[bits - 1] = -float(1 << (bits - 1))
    return planes, weights


class CimMacro:
    """One subarray programmed with an integer weight matrix.

    Parameters
    ----------
    config:
        Subarray geometry and circuit parameters.
    weights:
        Integer matrix of shape (rows_used, logical_cols_used); values
        must fit ``config.weight_range()``.  For ROM cells the matrix is
        fixed at mask time — :meth:`program` raises on ROM macros.
    """

    def __init__(
        self,
        config: MacroConfig,
        weights: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng()
        self._programmed = False
        self._store(weights)
        self._programmed = True

    def _store(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        rows, cols = weights.shape
        if rows > self.config.rows or cols > self.config.logical_columns:
            raise ValueError(
                f"weights {weights.shape} exceed subarray capacity "
                f"({self.config.rows} x {self.config.logical_columns} words)"
            )
        low, high = self.config.weight_range()
        if weights.min() < low or weights.max() > high:
            raise ValueError(
                f"weight codes outside [{low}, {high}] for "
                f"{self.config.weight_bits}-bit storage"
            )
        self.rows_used = rows
        self.cols_used = cols
        self.weights = weights.astype(np.int64)
        planes, plane_weights = _bit_planes(
            weights, self.config.weight_bits, self.config.signed_weights
        )
        self._weight_planes = planes  # (wb, rows, cols)
        self._plane_weights = plane_weights

    @property
    def _weight_planes(self) -> np.ndarray:
        """The programmed weight bit planes, ``(wb, rows, cols)`` in {0, 1}.

        Computed eagerly by :meth:`_store`; a macro restored from a
        snapshot (``repro.runtime.snapshot``) arrives without them and
        derives them from ``self.weights`` on first access — the exact
        :func:`_bit_planes` computation, so the lazily derived planes
        are bitwise identical to the eagerly stored ones.
        """
        planes = self.__dict__.get("_weight_planes_cached")
        if planes is None:
            planes, _ = _bit_planes(
                self.weights, self.config.weight_bits, self.config.signed_weights
            )
            self.__dict__["_weight_planes_cached"] = planes
        return planes

    @_weight_planes.setter
    def _weight_planes(self, planes: np.ndarray) -> None:
        self.__dict__["_weight_planes_cached"] = planes

    def program(self, weights: np.ndarray) -> None:
        """Rewrite the array — only legal for volatile (SRAM) cells."""
        if self._programmed and not self.config.cell.volatile:
            raise RuntimeError(
                f"cannot reprogram a {self.config.cell.name} macro: ROM weights "
                "are fixed at mask time (the limitation ReBranch exists to solve)"
            )
        self._store(weights)

    # ------------------------------------------------------------------
    def matmul(
        self, x: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, MacroStats]:
        """Compute ``weights.T @ x`` through the analog path.

        ``x`` is an integer matrix of shape (rows_used, n_vectors) (or a
        vector of shape (rows_used,)); the return value has shape
        (cols_used, n_vectors) (or (cols_used,)).  ``rng`` optionally
        overrides the construction-time generator for this call's noise
        draws — the hook the compile-once runtime uses to attach a
        session RNG to engines programmed long before execution.
        """
        rng = rng if rng is not None else self._rng
        x = np.asarray(x)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if x.shape[0] != self.rows_used:
            raise ValueError(
                f"input has {x.shape[0]} rows, macro is programmed with "
                f"{self.rows_used}"
            )
        low, high = self.config.input_range()
        if x.min() < low or x.max() > high:
            raise ValueError(
                f"input codes outside [{low}, {high}] for "
                f"{self.config.input_bits}-bit serial input"
            )

        in_planes, in_weights = _bit_planes(
            x, self.config.input_bits, self.config.signed_inputs
        )  # (ib, rows, n)

        # ON-cell counts per (input bit, weight bit, column, vector):
        # the physical quantity each bit line accumulates in one cycle.
        counts = np.einsum(
            "jrn,krc->jkcn", in_planes, self._weight_planes, optimize=True
        )
        observed = self.config.bitline.observe(counts, rng)
        quantized = self.config.adc.quantize_counts(observed, float(self.rows_used))
        result = np.einsum(
            "j,k,jkcn->cn", in_weights, self._plane_weights, quantized, optimize=True
        )

        stats = self._stats_for(x, in_planes, counts)
        return (result[:, 0] if squeeze else result), stats

    def _stats_for(
        self, x: np.ndarray, in_planes: np.ndarray, counts: np.ndarray
    ) -> MacroStats:
        return macro_pass_stats(
            self.config,
            self.rows_used,
            self.cols_used,
            n_vectors=x.shape[1],
            row_activations=int(in_planes.sum()),
            counts_total=float(counts.sum()),
        )

    def exact_matmul(self, x: np.ndarray) -> np.ndarray:
        """Ideal integer reference (no ADC/bit-line effects)."""
        return self.weights.T @ np.asarray(x, dtype=np.int64)
