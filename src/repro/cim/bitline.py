"""Bit-line charge-sharing model.

The macro pre-charges every bit line, then pulses word lines; each ON
cell (input bit high AND stored '1') discharges the line a unit amount.
The ADC senses the remnant voltage.  This module converts ON-cell
counts to bit-line voltages and injects the analog non-idealities
(thermal/mismatch noise, optional voltage saturation) that SPICE-level
simulation would capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class BitlineModel:
    """Charge-domain bit-line behaviour.

    ``v_precharge`` is the initial voltage; each ON cell removes
    ``v_precharge / max_rows`` (linear discharge — the design regime of
    the paper, which keeps the swing inside the ADC's linear window).
    ``noise_sigma_counts`` is Gaussian noise expressed in ON-cell count
    units (0 disables it); ``saturation`` optionally clips the discharge
    at a fraction of full swing to model line non-linearity.
    """

    max_rows: int = 128
    v_precharge: float = 0.9
    noise_sigma_counts: float = 0.0
    saturation: Optional[float] = None

    def __post_init__(self):
        if self.max_rows <= 0:
            raise ValueError("max_rows must be positive")
        if self.noise_sigma_counts < 0:
            raise ValueError("noise sigma cannot be negative")

    def counts_to_voltage(self, counts: np.ndarray) -> np.ndarray:
        """Ideal remnant voltage for a given ON-cell count per column."""
        frac = np.asarray(counts, dtype=np.float64) / self.max_rows
        if self.saturation is not None:
            frac = np.minimum(frac, self.saturation)
        return self.v_precharge * (1.0 - frac)

    def voltage_to_counts(self, voltage: np.ndarray) -> np.ndarray:
        """Inverse mapping used by the sensing path."""
        frac = 1.0 - np.asarray(voltage, dtype=np.float64) / self.v_precharge
        return frac * self.max_rows

    def observe(self, counts: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Counts as seen by the ADC: noise added, saturation applied."""
        observed = np.asarray(counts, dtype=np.float64)
        if self.noise_sigma_counts > 0:
            rng = rng if rng is not None else np.random.default_rng()
            observed = observed + rng.normal(0, self.noise_sigma_counts, observed.shape)
        if self.saturation is not None:
            observed = np.minimum(observed, self.saturation * self.max_rows)
        return np.clip(observed, 0, self.max_rows)

    def discharge_energy_fj(self, counts: float, cell_read_energy_fj: float) -> float:
        """Energy of one evaluation: precharge + per-cell discharge."""
        return counts * cell_read_energy_fj
