"""Word-line activation encodings (section 3.1's speed-accuracy knob).

The macro of Fig. 5 streams activations onto the word lines serially.
The paper's text describes the *unary pulse-count* scheme ("0, 1, 2, or
3 pulses applied to each WL for a 2-bit activation input") and notes
that "the input activation encoding method using the pulse width may
also be used with a different speed-accuracy trade-off".  Table I's
8.9 ns / 8-cycle inference corresponds to a binary *bit-serial* stream
with a digital shift-and-add.  This module implements all three members
of that design space so the trade-off can actually be measured:

:class:`BitSerialEncoding`
    One word-line cycle per binary input bit, digital shift-and-add
    (the scheme :meth:`repro.cim.macro.CimMacro.matmul` hard-codes).
    ``b`` cycles and ``b`` conversions per column.  Each conversion sees
    a full scale of the activated-row count, but its quantization error
    is amplified by the bit-plane weight ``2**k`` during recombination.

:class:`UnaryPulseEncoding`
    The amplitude is the number of unit pulses; the bit line integrates
    all of them before a single conversion.  ``2**b - 1`` word-line
    cycles but only **one** conversion per column, so the ADC energy
    drops by ``b``x.  The unit discharge is scaled by ``1/(2**b - 1)``
    so a full-amplitude integration still fits the pre-charge swing
    (charge-domain scaling); per-cycle thermal noise accumulates as the
    square root of the pulse count.

:class:`PulseWidthEncoding`
    The amplitude is the ON-time of a single pulse, subdivided into
    ``2**b - 1`` timing slots.  One word-line cycle and one conversion:
    the fastest and most ADC-frugal option, but the drive amplitude is
    now set by analog timing, so a slot-level jitter sigma models the
    pulse-generator precision limit, and the conversion-referred noise
    is not amortized over multiple cycles.

All three produce the same ideal integer product; they differ only in
cycle count, conversion count, energy split, and error statistics —
exactly the axes of the paper's "different speed-accuracy trade-off".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cim.macro import CimMacro, MacroStats


def _validate_unsigned_input(macro: CimMacro, x: np.ndarray) -> np.ndarray:
    """Pulse encodings carry amplitude in pulse count/width: unsigned only."""
    if macro.config.signed_inputs:
        raise ValueError(
            "pulse encodings represent amplitude as a pulse count/width and "
            "cannot drive negative inputs; use unsigned activations (post-ReLU) "
            "or the bit-serial encoding"
        )
    x = np.asarray(x)
    low, high = macro.config.input_range()
    if x.min() < low or x.max() > high:
        raise ValueError(
            f"input codes outside [{low}, {high}] for "
            f"{macro.config.input_bits}-bit input"
        )
    return x


def _as_columns(x: np.ndarray) -> Tuple[np.ndarray, bool]:
    x = np.asarray(x)
    if x.ndim == 1:
        return x[:, None], True
    return x, False


class ActivationEncoding:
    """Base class: one way of driving activations onto the word lines."""

    #: Short identifier used in experiment tables.
    name: str = "base"

    def matmul(
        self,
        macro: CimMacro,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        """Compute ``macro.weights.T @ x`` under this encoding.

        ``rng`` optionally overrides the macro's construction-time
        generator for this call's noise/jitter draws.
        """
        raise NotImplementedError

    def wl_cycles(self, input_bits: int) -> int:
        """Word-line cycles needed to stream one activation vector."""
        raise NotImplementedError

    def conversions_per_column(self, input_bits: int) -> int:
        """ADC conversions per physical column per activation vector."""
        raise NotImplementedError


class BitSerialEncoding(ActivationEncoding):
    """Binary bit-serial streaming with digital shift-and-add.

    Table I's operating point: ``input_bits`` cycles, one conversion per
    column per cycle.  Delegates to :meth:`CimMacro.matmul`, which
    implements exactly this scheme.
    """

    name = "bit-serial"

    def matmul(
        self,
        macro: CimMacro,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        return macro.matmul(x, rng=rng)

    def wl_cycles(self, input_bits: int) -> int:
        return input_bits

    def conversions_per_column(self, input_bits: int) -> int:
        return input_bits


@dataclass
class UnaryPulseEncoding(ActivationEncoding):
    """Amplitude as a unit-pulse count, integrated before one conversion."""

    name: str = "unary-pulse"

    def wl_cycles(self, input_bits: int) -> int:
        return 2**input_bits - 1

    def conversions_per_column(self, input_bits: int) -> int:
        return 1

    def matmul(
        self,
        macro: CimMacro,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        return _integrating_matmul(
            macro,
            x,
            integration_cycles=self.wl_cycles(macro.config.input_bits),
            # Independent per-cycle thermal noise accumulates as sqrt(cycles).
            noise_growth=float(np.sqrt(self.wl_cycles(macro.config.input_bits))),
            drive_jitter_slots=0.0,
            encoding_name=self.name,
            rng=rng,
        )


@dataclass
class PulseWidthEncoding(ActivationEncoding):
    """Amplitude as the ON-time of one pulse, in ``2**b - 1`` timing slots.

    ``jitter_sigma_slots`` is the standard deviation of the realized
    pulse width around its programmed value, in slot units.  A slot of
    an 8-bit encoding at the macro's 1.1 ns cycle is ~4.4 ps wide, so
    even a few-ps pulse generator contributes a sizeable fraction of an
    LSB — the accuracy half of the paper's trade-off remark.
    """

    jitter_sigma_slots: float = 0.0
    name: str = "pulse-width"

    def __post_init__(self):
        if self.jitter_sigma_slots < 0:
            raise ValueError("jitter sigma cannot be negative")

    def wl_cycles(self, input_bits: int) -> int:
        return 1

    def conversions_per_column(self, input_bits: int) -> int:
        return 1

    def matmul(
        self,
        macro: CimMacro,
        x: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, MacroStats]:
        return _integrating_matmul(
            macro,
            x,
            integration_cycles=1,
            noise_growth=1.0,
            drive_jitter_slots=self.jitter_sigma_slots,
            encoding_name=self.name,
            rng=rng,
        )


def _integrating_matmul(
    macro: CimMacro,
    x: np.ndarray,
    integration_cycles: int,
    noise_growth: float,
    drive_jitter_slots: float,
    encoding_name: str,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, MacroStats]:
    """Shared analog path for the charge-integrating encodings.

    Both pulse encodings release, per ON cell, a charge proportional to
    the activation amplitude in ``[0, 2**b - 1]`` slot units, and read
    each column once.  They differ only in how long the integration
    takes (``integration_cycles``), how conversion-referred noise scales
    (``noise_growth``), and whether the drive itself jitters
    (``drive_jitter_slots``).
    """
    cfg = macro.config
    x = _validate_unsigned_input(macro, x)
    x, squeeze = _as_columns(x)
    if x.shape[0] != macro.rows_used:
        raise ValueError(
            f"input has {x.shape[0]} rows, macro is programmed with "
            f"{macro.rows_used}"
        )
    slots = 2**cfg.input_bits - 1
    rng = rng if rng is not None else macro._rng

    drive = x.astype(np.float64)
    if drive_jitter_slots > 0:
        drive = drive + rng.normal(0.0, drive_jitter_slots, drive.shape)
        # A pulse cannot be shorter than zero or longer than the cycle.
        drive = np.clip(drive, 0.0, float(slots))

    # Charge per (weight bit plane, column, vector) in slot units; the
    # physical full scale after the 1/slots unit-discharge scaling is
    # the activated-row count, i.e. the same swing the bit-serial scheme
    # uses — quantize in the product domain with the scaled full scale.
    counts = np.einsum("rn,krc->kcn", drive, macro._weight_planes, optimize=True)
    full_scale = float(macro.rows_used * slots)
    sigma = cfg.bitline.noise_sigma_counts * noise_growth * slots
    observed = counts
    if sigma > 0:
        observed = observed + rng.normal(0.0, sigma, counts.shape)
    observed = np.clip(observed, 0.0, full_scale)
    if cfg.bitline.saturation is not None:
        observed = np.minimum(observed, cfg.bitline.saturation * full_scale)
    quantized = cfg.adc.quantize_counts(observed, full_scale)
    result = np.einsum("k,kcn->cn", macro._plane_weights, quantized, optimize=True)

    stats = _integrating_stats(macro, x, counts, integration_cycles, slots)
    return (result[:, 0] if squeeze else result), stats


def _integrating_stats(
    macro: CimMacro,
    x: np.ndarray,
    counts: np.ndarray,
    integration_cycles: int,
    slots: int,
) -> MacroStats:
    """Cycle and energy accounting for one integrate-then-read pass."""
    cfg = macro.config
    n_vectors = x.shape[1]
    phys_cols = macro.cols_used * cfg.weight_bits
    readout_rounds = -(-phys_cols // cfg.n_adcs)
    cycles = (integration_cycles + readout_rounds) * n_vectors
    conversions = phys_cols * n_vectors
    # Word-line activity: each unit of amplitude is one pulse (unary) or
    # one slot of ON-time (pulse width) — the same charge either way.
    pulse_units = float(x.sum())
    # Charge released on the bit lines, in unit-discharge equivalents
    # after the 1/slots scaling.
    unit_discharges = float(counts.sum()) / slots
    return MacroStats(
        cycles=cycles,
        adc_conversions=conversions,
        row_activations=int(round(pulse_units)),
        macs=macro.rows_used * macro.cols_used * n_vectors,
        wl_energy_fj=pulse_units / slots * cfg.wl_energy_fj,
        bitline_energy_fj=unit_discharges * cfg.cell.read_energy_fj,
        adc_energy_fj=conversions * cfg.adc.energy_fj,
        peripheral_energy_fj=cycles * cfg.peripheral_energy_fj_per_cycle,
        latency_ns=cycles * cfg.cycle_time_ns,
    )


def default_encodings(jitter_sigma_slots: float = 0.25) -> List[ActivationEncoding]:
    """The three encodings of the section 3.1 design space."""
    return [
        BitSerialEncoding(),
        UnaryPulseEncoding(),
        PulseWidthEncoding(jitter_sigma_slots=jitter_sigma_slots),
    ]


def encoding_by_name(name: str, **kwargs) -> ActivationEncoding:
    """Look up an encoding by its table identifier."""
    registry: Dict[str, type] = {
        BitSerialEncoding.name: BitSerialEncoding,
        UnaryPulseEncoding.name: UnaryPulseEncoding,
        PulseWidthEncoding.name: PulseWidthEncoding,
    }
    if name not in registry:
        raise KeyError(f"unknown encoding {name!r}; known: {sorted(registry)}")
    return registry[name](**kwargs)
