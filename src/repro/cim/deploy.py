"""Deploy trained networks onto functional CiM macros.

This is the library's end-to-end path: a float model trained with
``repro.nn`` becomes a :class:`CimDeployedModel` whose every
matrix-vector product executes through the bit-serial macro simulation
— 8-bit weights in subarray tiles, serial activation bits, bit-line
charge sharing, shared 5-bit ADCs — with ROM/SRAM placement decided per
layer exactly like the YOLoC chip (Fig. 9):

* plain convolutions / linears  -> ROM-CiM (frozen weights), unless the
  layer is trainable, which forces SRAM-CiM;
* :class:`~repro.rebranch.branch.ReBranchConv2d` -> trunk + projections
  on ROM macros, res-conv on SRAM macros;
* batch-norm is folded into the preceding convolution beforehand
  (:func:`fold_batchnorm`), as any fixed-weight deployment must.

The deployed model accumulates :class:`~repro.cim.macro.MacroStats`
per inference, so accuracy and energy/latency come out of one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.cim.macro import MacroConfig, MacroStats
from repro.cim.encoding import ActivationEncoding
from repro.cim.mvm import cim_conv2d, cim_linear
from repro.nn.tensor import Tensor
from repro.rebranch.branch import ReBranchConv2d


# ----------------------------------------------------------------------
# Batch-norm folding
# ----------------------------------------------------------------------
def fold_batchnorm(model: nn.Module) -> int:
    """Fold every (Conv2d -> BatchNorm2d) pair inside ConvBNAct-style
    blocks into the convolution's weights and bias, in place.

    Uses the running statistics, so the model must have been trained (or
    at least run) in training mode first.  After folding, the BN module
    is replaced by Identity.  Returns the number of folded pairs.
    """
    folded = 0
    for module in model.modules():
        pairs = _conv_bn_pairs(module)
        for parent, conv_name, bn_name in pairs:
            conv = getattr(parent, conv_name)
            bn = getattr(parent, bn_name)
            _fold_pair(conv, bn)
            setattr(parent, bn_name, nn.Identity())
            folded += 1
    return folded


def _conv_bn_pairs(module: nn.Module) -> List[Tuple[nn.Module, str, str]]:
    """Adjacent (Conv2d, BatchNorm2d) children of ``module``."""
    names = list(module._modules.items())
    pairs = []
    for (name_a, child_a), (name_b, child_b) in zip(names, names[1:]):
        if isinstance(child_a, nn.Conv2d) and isinstance(child_b, nn.BatchNorm2d):
            pairs.append((module, name_a, name_b))
    return pairs


def _fold_pair(conv: nn.Conv2d, bn: nn.BatchNorm2d) -> None:
    scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
    conv.weight.data = conv.weight.data * scale.reshape(-1, 1, 1, 1)
    bias = conv.bias.data if conv.bias is not None else np.zeros(conv.out_channels)
    new_bias = (bias - bn.running_mean) * scale + bn.bias.data
    if conv.bias is None:
        conv.bias = nn.Parameter(new_bias)
        conv.bias.requires_grad = conv.weight.requires_grad
    else:
        conv.bias.data = new_bias


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------
@dataclass
class DeployedLayerInfo:
    """Placement record of one weight layer."""

    name: str
    kind: str  # "conv" | "linear" | "rebranch"
    memory: str  # "rom" | "sram" | "rom+sram"
    weight_bits: int


@dataclass
class DeploymentReport:
    """Aggregate outcome of one deployment."""

    layers: List[DeployedLayerInfo] = field(default_factory=list)
    rom_weight_bits: int = 0
    sram_weight_bits: int = 0

    @property
    def rom_fraction(self) -> float:
        total = self.rom_weight_bits + self.sram_weight_bits
        return self.rom_weight_bits / total if total else 0.0


class CimDeployedModel:
    """A model whose MVMs run through the functional macro simulation.

    ``encoding`` selects the word-line activation scheme (section 3.1)
    for every MVM; the default is Table I's bit-serial stream.  The
    pulse encodings physically require non-negative inputs, so layers
    whose input carries negative values (typically only the image
    layer) silently fall back to bit-serial — the mixed configuration
    a real pulse-encoded chip would ship.

    Supports the module vocabulary of the zoo models: Conv2d, Linear,
    BatchNorm2d (fold first — deployment refuses unfolded BN), the
    activations, pooling, Flatten, Identity, Sequential nesting, and
    ReBranchConv2d.  Residual additions inside BasicBlock are not
    supported — deploy VGG/DarkNet-style chains or individual blocks.
    """

    def __init__(
        self,
        model: nn.Module,
        rom_config: Optional[MacroConfig] = None,
        sram_config: Optional[MacroConfig] = None,
        activation_bits: int = 8,
        rng: Optional[np.random.Generator] = None,
        encoding: Optional[ActivationEncoding] = None,
    ):
        self.encoding = encoding
        self.rom_config = (
            rom_config if rom_config is not None else MacroConfig(cell=ROM_1T)
        )
        self.sram_config = (
            sram_config
            if sram_config is not None
            else MacroConfig(cell=SRAM_CIM_6T)
        )
        self.activation_bits = activation_bits
        self._rng = rng if rng is not None else np.random.default_rng()
        self.model = model
        self.report = DeploymentReport()
        self.last_stats = MacroStats()
        self._validate(model)
        self._register(model)

    # -- construction ---------------------------------------------------
    def _validate(self, model: nn.Module) -> None:
        for name, module in model.named_modules():
            if isinstance(module, nn.BatchNorm2d):
                raise ValueError(
                    f"unfolded BatchNorm2d at {name!r}: run fold_batchnorm() "
                    "before deploying (ROM weights cannot carry live BN)"
                )

    def _register(self, model: nn.Module) -> None:
        for name, module in model.named_modules():
            if isinstance(module, ReBranchConv2d):
                bits = (
                    module.trunk.weight.size
                    + module.compress.weight.size
                    + module.decompress.weight.size
                ) * self.rom_config.weight_bits
                sram_bits = module.res_conv.weight.size * self.sram_config.weight_bits
                self.report.rom_weight_bits += bits
                self.report.sram_weight_bits += sram_bits
                self.report.layers.append(
                    DeployedLayerInfo(name, "rebranch", "rom+sram", bits + sram_bits)
                )
            elif isinstance(module, nn.Conv2d) or isinstance(module, nn.Linear):
                if self._inside_rebranch(model, name):
                    continue
                kind = "conv" if isinstance(module, nn.Conv2d) else "linear"
                trainable = module.weight.requires_grad
                config = self.sram_config if trainable else self.rom_config
                bits = module.weight.size * config.weight_bits
                if trainable:
                    self.report.sram_weight_bits += bits
                else:
                    self.report.rom_weight_bits += bits
                self.report.layers.append(
                    DeployedLayerInfo(name, kind, "sram" if trainable else "rom", bits)
                )

    @staticmethod
    def _inside_rebranch(model: nn.Module, name: str) -> bool:
        parts = name.split(".")
        node = model
        for part in parts[:-1]:
            node = node._modules[part]
            if isinstance(node, ReBranchConv2d):
                return True
        return False

    # -- execution --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a batch through the CiM-simulated model.

        Returns the output array; per-inference macro stats accumulate
        in :attr:`last_stats`.
        """
        self.last_stats = MacroStats()
        out = self._run(self.model, np.asarray(x, dtype=np.float64))
        return out

    __call__ = forward

    def _encoding_for(self, x: np.ndarray) -> Optional[ActivationEncoding]:
        """The configured encoding, unless this layer's input is signed."""
        if self.encoding is None or (x < 0).any():
            return None
        return self.encoding

    def _mvm_conv(
        self, x: np.ndarray, conv: nn.Conv2d, config: MacroConfig
    ) -> np.ndarray:
        sh, sw = conv.stride
        ph, pw = conv.padding
        if sh != sw or ph != pw:
            raise ValueError("deployment supports square stride/padding only")
        out, stats = cim_conv2d(
            x,
            conv.weight.data,
            stride=sh,
            padding=ph,
            config=config,
            activation_bits=self.activation_bits,
            rng=self._rng,
            encoding=self._encoding_for(x),
        )
        self.last_stats = self.last_stats + stats
        if conv.bias is not None:
            out = out + conv.bias.data.reshape(1, -1, 1, 1)
        return out

    def _run(self, module: nn.Module, x: np.ndarray) -> np.ndarray:
        if isinstance(module, nn.Sequential):
            for child in module._modules.values():
                x = self._run(child, x)
            return x
        if isinstance(module, ReBranchConv2d):
            trunk = self._mvm_conv(x, module.trunk, self.rom_config)
            branch = self._mvm_conv(x, module.compress, self.rom_config)
            branch = self._mvm_conv(branch, module.res_conv, self.sram_config)
            branch = self._mvm_conv(branch, module.decompress, self.rom_config)
            return trunk + branch
        if isinstance(module, nn.Conv2d):
            config = (
                self.sram_config if module.weight.requires_grad else self.rom_config
            )
            return self._mvm_conv(x, module, config)
        if isinstance(module, nn.Linear):
            config = (
                self.sram_config if module.weight.requires_grad else self.rom_config
            )
            out, stats = cim_linear(
                x,
                module.weight.data,
                config=config,
                activation_bits=self.activation_bits,
                rng=self._rng,
                encoding=self._encoding_for(x),
            )
            self.last_stats = self.last_stats + stats
            if module.bias is not None:
                out = out + module.bias.data
            return out
        if isinstance(module, (nn.ReLU,)):
            return np.maximum(x, 0.0)
        if isinstance(module, nn.LeakyReLU):
            return np.where(x > 0, x, module.negative_slope * x)
        if isinstance(module, nn.Sigmoid):
            return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        if isinstance(module, nn.Tanh):
            return np.tanh(x)
        if isinstance(module, (nn.Identity, nn.Dropout)):
            return x
        if isinstance(module, nn.MaxPool2d):
            return self._pool(x, module.kernel_size, module.stride, "max")
        if isinstance(module, nn.AvgPool2d):
            return self._pool(x, module.kernel_size, module.stride, "avg")
        if isinstance(module, nn.GlobalAvgPool2d):
            return x.mean(axis=(2, 3), keepdims=True)
        if isinstance(module, nn.Flatten):
            return x.reshape(x.shape[0], -1)
        # Generic composite (e.g. ConvBNAct after folding): chain children.
        if module._modules:
            for child in module._modules.values():
                x = self._run(child, x)
            return x
        raise TypeError(f"cannot deploy module of type {type(module).__name__}")

    @staticmethod
    def _pool(x: np.ndarray, kernel, stride, mode: str) -> np.ndarray:
        k = kernel if isinstance(kernel, int) else kernel[0]
        s = k if stride is None else (stride if isinstance(stride, int) else stride[0])
        if s != k:
            raise ValueError("deployment supports stride == kernel pooling only")
        n, c, h, w = x.shape
        oh, ow = h // k, w // k
        view = x[:, :, : oh * k, : ow * k].reshape(n, c, oh, k, ow, k)
        return view.max(axis=(3, 5)) if mode == "max" else view.mean(axis=(3, 5))


def deploy_model(
    model: nn.Module,
    fold_bn: bool = True,
    rom_config: Optional[MacroConfig] = None,
    sram_config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> CimDeployedModel:
    """One-call deployment: fold batch-norm, place layers, wrap the model.

    The model is modified in place by the folding step; pass
    ``fold_bn=False`` if it was folded already.
    """
    if fold_bn:
        fold_batchnorm(model)
    model.eval()
    return CimDeployedModel(
        model,
        rom_config=rom_config,
        sram_config=sram_config,
        activation_bits=activation_bits,
        rng=rng,
    )
