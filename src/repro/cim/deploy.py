"""Deploy trained networks onto functional CiM macros.

This is the library's end-to-end path: a float model trained with
``repro.nn`` becomes a :class:`CimDeployedModel` whose every
matrix-vector product executes through the bit-serial macro simulation
— 8-bit weights in subarray tiles, serial activation bits, bit-line
charge sharing, shared 5-bit ADCs — with ROM/SRAM placement decided per
layer exactly like the YOLoC chip (Fig. 9):

* plain convolutions / linears  -> ROM-CiM (frozen weights), unless the
  layer is trainable, which forces SRAM-CiM;
* :class:`~repro.rebranch.branch.ReBranchConv2d` -> trunk + projections
  on ROM macros, res-conv on SRAM macros;
* batch-norm is folded into the preceding convolution beforehand
  (:func:`fold_batchnorm`), as any fixed-weight deployment must.

Since the compile-once refactor this module is a thin wrapper over
:mod:`repro.runtime`: construction *programs* the model's macros once
(``repro.runtime.compile``) and every forward call only streams the
batch through the cached engines.  The wrapper keeps the seed API —
stats accumulate in :attr:`CimDeployedModel.last_stats`, and weights
mutated in place between calls are picked up by re-fingerprinting —
while new code should prefer :class:`~repro.runtime.CompiledModel`
directly for per-session accounting and explicit cache control.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.cim.cells import ROM_1T, SRAM_CIM_6T
from repro.cim.macro import MacroConfig, MacroStats
from repro.cim.encoding import ActivationEncoding
from repro.runtime.programming import (  # re-exported for compatibility
    DeployedLayerInfo,
    DeploymentReport,
    fold_batchnorm,
)

__all__ = [
    "CimDeployedModel",
    "DeployedLayerInfo",
    "DeploymentReport",
    "deploy_model",
    "fold_batchnorm",
]


class CimDeployedModel:
    """A model whose MVMs run through the functional macro simulation.

    ``encoding`` selects the word-line activation scheme (section 3.1)
    for every MVM; the default is Table I's bit-serial stream.  The
    pulse encodings physically require non-negative inputs, so layers
    whose input carries negative values (typically only the image
    layer) silently fall back to bit-serial — the mixed configuration
    a real pulse-encoded chip would ship.

    Supports the module vocabulary of the zoo models: Conv2d, Linear,
    BatchNorm2d (fold first — deployment refuses unfolded BN), the
    activations, pooling, Flatten, Identity, Sequential nesting, and
    ReBranchConv2d.  Residual additions inside BasicBlock are not
    supported — deploy VGG/DarkNet-style chains or individual blocks.

    Construction compiles the model through :func:`repro.runtime.compile`
    — macros are programmed once and shared via the engine cache; the
    per-call behaviour (including in-place weight updates between
    forwards) is preserved by re-fingerprinting the weights each call.
    """

    def __init__(
        self,
        model: nn.Module,
        rom_config: Optional[MacroConfig] = None,
        sram_config: Optional[MacroConfig] = None,
        activation_bits: int = 8,
        rng: Optional[np.random.Generator] = None,
        encoding: Optional[ActivationEncoding] = None,
        cache=None,
    ):
        from repro.runtime.compiled import RuntimeConfig, compile_model

        self.encoding = encoding
        self.rom_config = (
            rom_config if rom_config is not None else MacroConfig(cell=ROM_1T)
        )
        self.sram_config = (
            sram_config
            if sram_config is not None
            else MacroConfig(cell=SRAM_CIM_6T)
        )
        self.activation_bits = activation_bits
        self._rng = rng if rng is not None else np.random.default_rng()
        self.model = model
        self._compiled = compile_model(
            model,
            RuntimeConfig(
                rom_config=self.rom_config,
                sram_config=self.sram_config,
                activation_bits=activation_bits,
                encoding=encoding,
            ),
            rng=self._rng,
            cache=cache,
        )
        self.report = self._compiled.report
        self.last_stats = MacroStats()

    @property
    def compiled(self):
        """The underlying :class:`~repro.runtime.CompiledModel`."""
        return self._compiled

    # -- execution --------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run a batch through the CiM-simulated model.

        Returns the output array; per-inference macro stats accumulate
        in :attr:`last_stats`.  Each call re-fingerprints the weights
        (an O(weight bytes) hash) to preserve the seed's live in-place
        update semantics; serving paths that never mutate weights
        should call :attr:`compiled` ``.run()`` directly and skip it.
        """
        self._compiled.ensure_fresh()
        out, stats = self._compiled.run(x)
        self.last_stats = stats
        return out

    __call__ = forward


def deploy_model(
    model: nn.Module,
    fold_bn: bool = True,
    rom_config: Optional[MacroConfig] = None,
    sram_config: Optional[MacroConfig] = None,
    activation_bits: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> CimDeployedModel:
    """One-call deployment: fold batch-norm, place layers, wrap the model.

    The model is modified in place by the folding step; pass
    ``fold_bn=False`` if it was folded already.
    """
    if fold_bn:
        fold_batchnorm(model)
    model.eval()
    return CimDeployedModel(
        model,
        rom_config=rom_config,
        sram_config=sram_config,
        activation_bits=activation_bits,
        rng=rng,
    )
