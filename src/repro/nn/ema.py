"""Exponential moving average of model parameters.

The small-data transfer runs of Figs. 10-12 are noisy; evaluating an
EMA shadow of the trainable (SRAM-resident) weights is the standard
stabilizer.  Frozen (ROM-resident) parameters never change, so the EMA
tracks only ``requires_grad`` parameters — mirroring what on-chip
hardware could actually maintain.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.layers import Module


class ExponentialMovingAverage:
    """Shadow copies ``s = decay * s + (1 - decay) * p`` of a model.

    Usage::

        ema = ExponentialMovingAverage(model, decay=0.99)
        for batch in loader:
            ...train step...
            ema.update()
        with ema.average_parameters():
            evaluate(model)
    """

    def __init__(self, model: Module, decay: float = 0.99):
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.model = model
        self.decay = decay
        self.shadow: Dict[str, np.ndarray] = {
            name: param.data.copy()
            for name, param in model.named_parameters()
            if param.requires_grad
        }
        self._backup: Optional[Dict[str, np.ndarray]] = None

    def update(self) -> None:
        """Fold the current parameter values into the shadow."""
        for name, param in self.model.named_parameters():
            if name in self.shadow:
                self.shadow[name] = (
                    self.decay * self.shadow[name]
                    + (1.0 - self.decay) * param.data
                )

    def copy_to_model(self) -> None:
        """Overwrite tracked parameters with their shadow values."""
        for name, param in self.model.named_parameters():
            if name in self.shadow:
                param.data = self.shadow[name].copy()

    def store(self) -> None:
        """Back up the live parameter values (before ``copy_to_model``)."""
        self._backup = {
            name: param.data.copy()
            for name, param in self.model.named_parameters()
            if name in self.shadow
        }

    def restore(self) -> None:
        """Put the backed-up live values back."""
        if self._backup is None:
            raise RuntimeError("restore() called without a prior store()")
        for name, param in self.model.named_parameters():
            if name in self._backup:
                param.data = self._backup[name]
        self._backup = None

    def average_parameters(self) -> "_EmaContext":
        """Context manager: evaluate with the shadow, then restore."""
        return _EmaContext(self)


class _EmaContext:
    def __init__(self, ema: ExponentialMovingAverage):
        self.ema = ema

    def __enter__(self) -> ExponentialMovingAverage:
        self.ema.store()
        self.ema.copy_to_model()
        return self.ema

    def __exit__(self, exc_type, exc, tb) -> None:
        self.ema.restore()
