"""Minimal-yet-complete neural-network substrate built on numpy.

This package replaces PyTorch (unavailable offline) for the YOLoC
reproduction.  It provides a reverse-mode autograd tensor, the standard
CNN building blocks (convolution, batch norm, pooling, activations),
optimizers, and data loading utilities.

The public surface mirrors the small subset of ``torch``/``torch.nn``
the paper's "custom workflow simulator by PyTorch" would have used::

    from repro import nn

    model = nn.Sequential(
        nn.Conv2d(3, 16, 3, padding=1), nn.BatchNorm2d(16), nn.ReLU(),
        nn.MaxPool2d(2), nn.Flatten(), nn.Linear(16 * 8 * 8, 10),
    )
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    loss = nn.cross_entropy(model(x), y)
    loss.backward()
    opt.step()
"""

from repro.nn.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.nn.functional import (
    relu,
    leaky_relu,
    sigmoid,
    tanh,
    softmax,
    log_softmax,
    cross_entropy,
    mse_loss,
    binary_cross_entropy_with_logits,
    conv2d,
    max_pool2d,
    avg_pool2d,
    global_avg_pool2d,
    pad2d,
    upsample_nearest2d,
    dropout,
)
from repro.nn.layers import (
    Module,
    Parameter,
    plan_serial,
    Sequential,
    ModuleList,
    Conv2d,
    Linear,
    BatchNorm2d,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    Identity,
)
from repro.nn.optim import Optimizer, SGD, Adam, RMSprop
from repro.nn.ema import ExponentialMovingAverage
from repro.nn.schedule import (
    LRScheduler,
    StepLR,
    CosineLR,
    WarmupLR,
    clip_grad_norm,
)
from repro.nn.data import Dataset, TensorDataset, DataLoader
from repro.nn.serialization import save_checkpoint, load_checkpoint
from repro.nn import init

__all__ = [
    "Tensor",
    "tensor",
    "plan_serial",
    "no_grad",
    "is_grad_enabled",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad2d",
    "upsample_nearest2d",
    "dropout",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "ExponentialMovingAverage",
    "LRScheduler",
    "StepLR",
    "CosineLR",
    "WarmupLR",
    "clip_grad_norm",
    "Dataset",
    "TensorDataset",
    "DataLoader",
    "save_checkpoint",
    "load_checkpoint",
    "init",
]
