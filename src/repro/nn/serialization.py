"""Model checkpointing: save/load state dicts as ``.npz`` archives.

The deployment flow needs durable artifacts twice: the pretrained
weights that get mask-programmed into ROM (fixed forever), and the
fine-tuned branch weights loaded into SRAM-CiM at power-on.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.layers import Module

PathLike = Union[str, pathlib.Path]

_META_KEY = "__repro_meta__"
_FORMAT_VERSION = 1


def save_checkpoint(
    model: Module,
    path: PathLike,
    metadata: Optional[Dict[str, str]] = None,
) -> None:
    """Write the model's state dict (and optional metadata) to ``path``.

    The archive is a plain ``numpy.savez_compressed`` file: one array
    per parameter/buffer plus a JSON metadata record, so checkpoints
    remain readable without this library.
    """
    state = model.state_dict()
    meta = {"format_version": _FORMAT_VERSION, "n_entries": len(state)}
    if metadata:
        meta.update(metadata)
    arrays = dict(state)
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_checkpoint(
    model: Module, path: PathLike, strict: bool = True
) -> Dict[str, str]:
    """Load a checkpoint written by :func:`save_checkpoint`.

    With ``strict`` (default) the archive must contain every parameter
    and buffer of ``model``; otherwise missing entries keep the model's
    current values.  Returns the stored metadata.
    """
    path = pathlib.Path(path)
    if not path.exists():
        # np.savez appends .npz when missing; accept both spellings.
        alt = path.with_suffix(path.suffix + ".npz")
        if alt.exists():
            path = alt
        else:
            raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as archive:
        meta_raw = archive[_META_KEY].tobytes().decode("utf-8")
        metadata = json.loads(meta_raw)
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {metadata.get('format_version')!r}"
            )
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
    if strict:
        model.load_state_dict(state)
    else:
        current = model.state_dict()
        current.update({k: v for k, v in state.items() if k in current})
        model.load_state_dict(current)
    return metadata
