"""Gradient-descent optimizers.

Only parameters with ``requires_grad=True`` are updated, which is how the
YOLoC training flows keep ROM-resident (frozen) weights untouched while
the SRAM-resident residual branch learns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = grad + self.momentum * vel if self.nesterov else vel
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param in self.parameters:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton): per-parameter adaptive step sizes."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        momentum: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if momentum < 0:
            raise ValueError(f"momentum cannot be negative, got {momentum}")
        self.lr = lr
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self.momentum = momentum
        self._sq: Dict[int, np.ndarray] = {}
        self._buf: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            sq = self._sq.get(id(param))
            if sq is None:
                sq = np.zeros_like(param.data)
            sq = self.alpha * sq + (1 - self.alpha) * grad**2
            self._sq[id(param)] = sq
            update = grad / (np.sqrt(sq) + self.eps)
            if self.momentum:
                buf = self._buf.get(id(param))
                if buf is None:
                    buf = np.zeros_like(param.data)
                buf = self.momentum * buf + update
                self._buf[id(param)] = buf
                update = buf
            param.data = param.data - self.lr * update
