"""Learning-rate schedules and gradient clipping.

The full-budget transfer runs use step decay (matching the usual
fine-tuning recipe); cosine decay is provided for the longer pretrain
runs; gradient clipping stabilizes the YOLO loss early in training.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on each :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        if lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 1e-6):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        self.t_max = t_max
        self.min_lr = min_lr

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1 + math.cos(math.pi * progress)
        )


class WarmupLR(LRScheduler):
    """Linear warm-up to the base rate, then constant."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be >= 1")
        self.warmup_epochs = warmup_epochs
        # Start below the base rate immediately.
        optimizer.lr = self.get_lr(0)

    def get_lr(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * (epoch + 1) / (self.warmup_epochs + 1)


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm (useful for logging divergence).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    grads: List[np.ndarray] = [
        p.grad for p in parameters if p.requires_grad and p.grad is not None
    ]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g**2).sum()) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for grad in grads:
            grad *= scale
    return total
