"""Reverse-mode automatic differentiation on numpy arrays.

The :class:`Tensor` records, for every differentiable operation, a closure
that propagates the output gradient to the operands.  Calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph
and runs the closures in reverse order.

Design choices
--------------
* float64 is the default dtype: the experiments here use tiny models where
  numeric robustness matters more than speed, and numerical gradient
  checking in the test-suite requires double precision.
* Broadcasting is fully supported; gradients are summed back over
  broadcast dimensions by :func:`unbroadcast`.
* A global gradient-enabled flag (:func:`no_grad`) lets inference and
  optimizer updates skip graph construction, exactly like
  ``torch.no_grad()``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the dimensions that were broadcast to reach it.

    ``grad`` has the broadcasted shape; the result has ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = ()
        self._op = ""

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_part})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        out = Tensor(data)
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if needs:
            out.requires_grad = True
            out._backward = backward
            out._prev = tuple(parents)
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs, matching
        the PyTorch convention).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "mul")

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other_t.data, self.shape))
            if other_t.requires_grad:
                other_t._accumulate(
                    unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
                )

        return Tensor._make(data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed only inside the active range."""
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.data.shape[a]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            full = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
                full = np.expand_dims(data, axis=tuple(sorted(axes)))
            mask = self.data == full
            # Split gradient between ties, matching numpy argmax-free semantics.
            counts = mask.sum(
                axis=axis if axis is not None else None, keepdims=True
            )
            self._accumulate(mask * g / counts)

        return Tensor._make(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(data, (self,), backward, "getitem")

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        arrays = [t.data for t in tensors]
        data = np.concatenate(arrays, axis=axis)
        sizes = [a.shape[axis] for a in arrays]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor_i, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor_i.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor_i._accumulate(grad[tuple(slicer)])

        return Tensor._make(data, tuple(tensors), backward, "concat")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(np.outer(grad, other_t.data).reshape(self.shape))
                else:
                    g = grad @ np.swapaxes(other_t.data, -1, -2)
                    self._accumulate(unbroadcast(g, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(
                        np.outer(self.data, grad).reshape(other_t.shape)
                    )
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other_t._accumulate(unbroadcast(g, other_t.shape))

        return Tensor._make(data, (self, other_t), backward, "matmul")

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Comparisons (no gradient)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
