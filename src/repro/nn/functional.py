"""Functional neural-network operations with autograd support.

Convolution is implemented with im2col/col2im so the heavy lifting is a
single numpy matmul in both the forward and backward passes — the same
strategy cuDNN-free PyTorch builds use, and fast enough for the scaled
models in this reproduction.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return value
    return (int(value), int(value))


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns.

    Returns an array of shape (N, C*kh*kw, out_h*out_w) and the output
    spatial size.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride {sh}x{sw}, padding {ph}x{pw}"
        )
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    # Strided sliding-window view: (N, C, kh, kw, out_h, out_w)
    sn, sc, sh_b, sw_b = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh_b, sw_b, sh_b * sh, sw_b * sw),
        writeable=False,
    )
    cols = view.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    reshaped = cols.reshape(n, c, kh, kw, out_h, out_w)
    for ki in range(kh):
        for kj in range(kw):
            padded[:, :, ki : ki + sh * out_h : sh, kj : kj + sw * out_w : sw] += reshaped[
                :, :, ki, kj
            ]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
    groups: int = 1,
) -> Tensor:
    """2-D cross-correlation, NCHW layout.

    ``weight`` has shape (out_channels, in_channels / groups, kh, kw);
    ``groups == in_channels`` with one filter per channel is depthwise
    convolution (the MobileNet building block of the related-work
    comparison).
    """
    stride_p = _pair(stride)
    padding_p = _pair(padding)
    n, c, h, w = x.shape
    oc, ic_per_group, kh, kw = weight.shape
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    if c % groups != 0 or oc % groups != 0:
        raise ValueError(
            f"groups={groups} must divide both in ({c}) and out ({oc}) channels"
        )
    if ic_per_group != c // groups:
        raise ValueError(
            f"input has {c} channels in {groups} groups but weight expects "
            f"{ic_per_group} per group"
        )

    cols, (out_h, out_w) = im2col(x.data, (kh, kw), stride_p, padding_p)
    positions = out_h * out_w
    if groups == 1:
        w_mat = weight.data.reshape(oc, -1)
        out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
    else:
        # cols carry channel-major patches: regroup to (n, g, k_g, p).
        cols = cols.reshape(n, groups, ic_per_group * kh * kw, positions)
        w_mat = weight.data.reshape(groups, oc // groups, -1)
        out = np.einsum("gok,ngkp->ngop", w_mat, cols, optimize=True)
        out = out.reshape(n, oc, positions)
    if bias is not None:
        out = out + bias.data.reshape(1, oc, 1)
    out = out.reshape(n, oc, out_h, out_w)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(n, oc, positions)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)).reshape(bias.shape))
        if groups == 1:
            if weight.requires_grad:
                gw = np.einsum("nop,nkp->ok", grad_mat, cols, optimize=True)
                weight._accumulate(gw.reshape(weight.shape))
            if x.requires_grad:
                gcols = np.einsum("ok,nop->nkp", w_mat, grad_mat, optimize=True)
                gx = col2im(gcols, (n, c, h, w), (kh, kw), stride_p, padding_p)
                x._accumulate(gx)
            return
        grad_g = grad_mat.reshape(n, groups, oc // groups, positions)
        if weight.requires_grad:
            gw = np.einsum("ngop,ngkp->gok", grad_g, cols, optimize=True)
            weight._accumulate(gw.reshape(weight.shape))
        if x.requires_grad:
            gcols = np.einsum("gok,ngop->ngkp", w_mat, grad_g, optimize=True)
            gcols = gcols.reshape(n, c * kh * kw, positions)
            gx = col2im(gcols, (n, c, h, w), (kh, kw), stride_p, padding_p)
            x._accumulate(gx)

    return Tensor._make(out, parents, backward, "conv2d")


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling, NCHW.  ``stride`` defaults to ``kernel_size``."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols, _ = im2col(
        x.data.reshape(n * c, 1, h, w), (kh, kw), (sh, sw), (0, 0)
    )  # (N*C, kh*kw, out_h*out_w)
    arg = cols.argmax(axis=1)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gcols = np.zeros_like(cols)
        np.put_along_axis(
            gcols, arg[:, None, :], grad.reshape(n * c, 1, out_h * out_w), axis=1
        )
        gx = col2im(gcols, (n * c, 1, h, w), (kh, kw), (sh, sw), (0, 0))
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling, NCHW."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), (kh, kw), (sh, sw), (0, 0))
    out = cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        g = grad.reshape(n * c, 1, out_h * out_w) / (kh * kw)
        gcols = np.broadcast_to(g, (n * c, kh * kw, out_h * out_w)).copy()
        gx = col2im(gcols, (n * c, 1, h, w), (kh, kw), (sh, sw), (0, 0))
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning (N, C, 1, 1)."""
    return x.mean(axis=(2, 3), keepdims=True)


def pad2d(x: Tensor, padding: IntPair, value: float = 0.0) -> Tensor:
    """Zero-pad (or constant-pad) the two spatial dimensions."""
    ph, pw = _pair(padding)
    data = np.pad(
        x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=value
    )

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            h, w = x.shape[2], x.shape[3]
            x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(data, (x,), backward, "pad2d")


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour upsampling by an integer factor."""
    data = x.data.repeat(scale, axis=2).repeat(scale, axis=3)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        n, c, h, w = x.shape
        g = grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(g)

    return Tensor._make(data, (x,), backward, "upsample_nearest2d")


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(data, (x,), backward, "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.1) -> Tensor:
    """LeakyReLU; the DarkNet family uses slope 0.1."""
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(data, (x,), backward, "leaky_relu")


def sigmoid(x: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60, 60)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data, (x,), backward, "sigmoid")


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - data**2))

    return Tensor._make(data, (x,), backward, "tanh")


def dropout(x: Tensor, p: float = 0.5, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout.  Identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(data, (x,), backward, "dropout")


# ----------------------------------------------------------------------
# Softmax / losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * data).sum(axis=axis, keepdims=True)
            x._accumulate(data * (grad - dot))

    return Tensor._make(data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_sum
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(data, (x,), backward, "log_softmax")


def cross_entropy(
    logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Mean cross-entropy over integer class targets (shape (N,)).

    ``label_smoothing`` mixes the one-hot target with the uniform
    distribution: ``(1 - s) * onehot + s / C`` — the standard
    regularizer for the small-data transfer runs.
    """
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError("targets must be a 1-D integer class array")
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError(
            f"label_smoothing must be in [0, 1), got {label_smoothing}"
        )
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), targets]
    if label_smoothing == 0.0:
        return -picked.mean()
    uniform = log_probs.mean(axis=1)
    return -(
        (1.0 - label_smoothing) * picked + label_smoothing * uniform
    ).mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, weight: Optional[np.ndarray] = None
) -> Tensor:
    """Numerically-stable sigmoid + BCE, averaged over all elements."""
    targets = np.asarray(targets, dtype=np.float64)
    z = logits.data
    # loss = max(z, 0) - z*t + log(1 + exp(-|z|))
    data = np.maximum(z, 0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    if weight is not None:
        data = data * weight

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            g = (sig - targets) * grad
            if weight is not None:
                g = g * weight
            logits._accumulate(g)

    per_element = Tensor._make(data, (logits,), backward, "bce_logits")
    return per_element.mean()
