"""Dataset / DataLoader abstractions for numpy arrays."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping parallel numpy arrays (features first axis aligned)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset needs at least one array")
        length = len(arrays[0])
        for array in arrays:
            if len(array) != length:
                raise ValueError("all arrays must share the first dimension")
        self.arrays = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        row = tuple(a[index] for a in self.arrays)
        return row if len(row) > 1 else row[0]


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Batches are stacked numpy arrays; the training loops convert them to
    :class:`~repro.nn.tensor.Tensor` as needed.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                return
            samples = [self.dataset[int(i)] for i in batch_idx]
            if isinstance(samples[0], tuple):
                yield tuple(np.stack(column) for column in zip(*samples))
            else:
                yield np.stack(samples)
