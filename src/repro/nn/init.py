"""Weight initialization schemes.

All initializers take an explicit ``rng`` (``numpy.random.Generator``) so
experiments are reproducible end-to-end from a single seed.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear (out, in) or conv (out, in, kh, kw)."""
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal initialization (ReLU gain by default)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / math.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
