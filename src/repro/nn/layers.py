"""Module system: composable layers with named parameters.

Mirrors the ``torch.nn.Module`` contract that the YOLoC training flows
need: recursive parameter discovery, train/eval modes, state dicts, and
parameter freezing (the mechanism by which trunk weights become "ROM").
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_mod
from repro.nn.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration ---------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. batch-norm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(
            p.size
            for p in self.parameters()
            if p.requires_grad or not trainable_only
        )

    # -- modes -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Mark every parameter non-trainable (ROM-resident in YOLoC terms)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- state -----------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for name, child in self._modules.items():
            state.update(child.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: {value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing buffer {key!r} in state dict")
            self._update_buffer(name, np.array(state[key], copy=True))
        for name, child in self._modules.items():
            child.load_state_dict(state, prefix=f"{prefix}{name}.")

    # -- call ------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        return "\n".join(lines) + ")"


def plan_serial(module: "Module", builder, x):
    """Declare a composite's dataflow as its child chain.

    Assign this function as a class attribute (``plan_forward =
    plan_serial``) on a composite whose custom ``forward`` applies the
    children in registration order — the deployment runtime then lowers
    the composite as that serial chain, and the artifact store may
    serialize it as a generic container.  Composites whose dataflow is
    *not* the serial chain (residual adds, parallel branches) implement
    their own ``plan_forward(builder, x)`` instead.
    """
    for name, child in module._modules.items():
        x = builder.child(child, name, x)
    return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index % len(self._modules))]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """List container whose entries are registered as sub-modules."""

    def __init__(self, modules: Optional[Sequence[Module]] = None):
        super().__init__()
        self._length = 0
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(self._length), module)
        object.__setattr__(self, "_length", self._length + 1)
        return self

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(index % self._length)]

    def __iter__(self) -> Iterator[Module]:
        for i in range(self._length):
            yield self._modules[str(i)]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Identity(Module):
    """Pass-through module."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Conv2d(Module):
    """2-D convolution over NCHW tensors.

    ``groups`` partitions channels into independent convolutions;
    ``groups == in_channels == out_channels`` is depthwise convolution.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: IntPair,
        stride: IntPair = 1,
        padding: IntPair = 0,
        bias: bool = True,
        groups: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if groups < 1 or in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in ({in_channels}) and "
                f"out ({out_channels}) channels"
            )
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.groups = groups
        fan_in = in_channels // groups * kh * kw
        self.weight = Parameter(
            init_mod.kaiming_normal(
                (out_channels, in_channels // groups, kh, kw), rng
            )
        )
        if bias:
            bound = 1.0 / math.sqrt(fan_in)
            self.bias: Optional[Parameter] = Parameter(
                rng.uniform(-bound, bound, size=out_channels)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, self.stride, self.padding, self.groups
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups}"
        )


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_mod.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(
                rng.uniform(-bound, bound, size=out_features)
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.transpose())
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"


class BatchNorm2d(Module):
    """Batch normalization over the channel axis of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self._update_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1),
            )
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = var.data.reshape(-1) * (n / max(n - 1, 1))
            self._update_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * unbiased,
            )
            normalized = centered * ((var + self.eps) ** -0.5)
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            var = self.running_var.reshape(1, -1, 1, 1)
            normalized = (x - mean) * ((var + self.eps) ** -0.5)
        scale = self.weight.reshape(1, self.num_features, 1, 1)
        shift = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * scale + shift

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.1):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class MaxPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    def __init__(self, kernel_size: IntPair, stride: Optional[IntPair] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
