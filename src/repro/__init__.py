"""YOLoC reproduction: ROM-based computing-in-memory with ReBranch.

Reproduces Chen et al., "YOLoC: DeploY Large-Scale Neural Network by
ROM-based Computing-in-Memory using ResiduaL Branch on a Chip" (DAC 2022).

Top-level subpackages
---------------------
``repro.nn``
    Numpy autograd neural-network substrate (stands in for PyTorch).
``repro.models``
    VGG-8 / ResNet-18 / DarkNet-19 / Tiny-YOLO model zoo and profiling.
``repro.quant``
    Uniform quantization and quantization-aware training utilities.
``repro.cim``
    Circuit-level ROM-CiM / SRAM-CiM macro simulation (Table I).
``repro.runtime``
    Compile-once / execute-many deployment runtime: program macros
    once, stream batches through cached engines.
``repro.serve``
    Multi-tenant dynamic-batching inference serving: model registry,
    fair micro-batching scheduler, worker pool, metrics, load generator.
``repro.chaos``
    Deterministic fault injection: replayable fault schedules, degraded
    analog execution, shard failover for streams and the server.
``repro.arch``
    System-level area/latency/energy simulator (Figs. 12-14).
``repro.rebranch``
    The paper's core contribution: ReBranch and Options I-III baselines.
``repro.datasets``
    Synthetic classification / detection data with domain-shift control.
``repro.eval``
    Accuracy and detection (IoU/mAP) metrics.
``repro.experiments``
    One runner per paper table/figure.
"""

__version__ = "1.9.0"

__all__ = [
    "nn",
    "models",
    "quant",
    "cim",
    "runtime",
    "serve",
    "chaos",
    "arch",
    "rebranch",
    "datasets",
    "eval",
    "experiments",
]
