"""Detection metrics: IoU, NMS, and PASCAL-VOC-style mAP."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.models.yolo import Detection


def iou(box_a: np.ndarray, box_b: np.ndarray) -> float:
    """Intersection-over-union of two (x1, y1, x2, y2) boxes."""
    ax1, ay1, ax2, ay2 = box_a
    bx1, by1, bx2, by2 = box_b
    inter_w = max(0.0, min(ax2, bx2) - max(ax1, bx1))
    inter_h = max(0.0, min(ay2, by2) - max(ay1, by1))
    inter = inter_w * inter_h
    area_a = max(0.0, ax2 - ax1) * max(0.0, ay2 - ay1)
    area_b = max(0.0, bx2 - bx1) * max(0.0, by2 - by1)
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """(len(a), len(b)) pairwise IoU, vectorized."""
    boxes_a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    boxes_b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    x1 = np.maximum(boxes_a[:, None, 0], boxes_b[None, :, 0])
    y1 = np.maximum(boxes_a[:, None, 1], boxes_b[None, :, 1])
    x2 = np.minimum(boxes_a[:, None, 2], boxes_b[None, :, 2])
    y2 = np.minimum(boxes_a[:, None, 3], boxes_b[None, :, 3])
    inter = np.clip(x2 - x1, 0, None) * np.clip(y2 - y1, 0, None)
    area_a = np.clip(boxes_a[:, 2] - boxes_a[:, 0], 0, None) * np.clip(
        boxes_a[:, 3] - boxes_a[:, 1], 0, None
    )
    area_b = np.clip(boxes_b[:, 2] - boxes_b[:, 0], 0, None) * np.clip(
        boxes_b[:, 3] - boxes_b[:, 1], 0, None
    )
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(union > 0, inter / union, 0.0)
    return result


def nms(detections: Sequence["Detection"], iou_threshold: float = 0.5) -> List["Detection"]:
    """Class-wise greedy non-maximum suppression, highest score first."""
    if not 0 <= iou_threshold <= 1:
        raise ValueError(f"iou threshold must be in [0, 1], got {iou_threshold}")
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: List["Detection"] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [
            d
            for d in remaining
            if d.class_id != best.class_id
            or iou(d.as_array(), best.as_array()) < iou_threshold
        ]
    return kept


def average_precision(
    detections: Sequence["Detection"],
    image_ids: Sequence[int],
    gt_boxes: Sequence[np.ndarray],
    gt_labels: Sequence[np.ndarray],
    class_id: int,
    iou_threshold: float = 0.5,
) -> float:
    """All-point-interpolated AP for one class (VOC 2010+ protocol).

    ``detections[i]`` belongs to image ``image_ids[i]``; ``gt_boxes[j]``/
    ``gt_labels[j]`` describe image ``j``.
    """
    class_dets = [
        (det, img) for det, img in zip(detections, image_ids) if det.class_id == class_id
    ]
    class_dets.sort(key=lambda pair: pair[0].score, reverse=True)

    n_positive = sum(int((labels == class_id).sum()) for labels in gt_labels)
    if n_positive == 0:
        return 0.0

    matched = {img: np.zeros(len(gt_labels[img]), dtype=bool) for img in range(len(gt_labels))}
    tp = np.zeros(len(class_dets))
    fp = np.zeros(len(class_dets))
    for index, (det, img) in enumerate(class_dets):
        boxes = gt_boxes[img]
        labels = gt_labels[img]
        best_iou, best_j = 0.0, -1
        for j, (box, label) in enumerate(zip(boxes, labels)):
            if label != class_id or matched[img][j]:
                continue
            overlap = iou(det.as_array(), box)
            if overlap > best_iou:
                best_iou, best_j = overlap, j
        if best_iou >= iou_threshold and best_j >= 0:
            tp[index] = 1
            matched[img][best_j] = True
        else:
            fp[index] = 1

    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / n_positive
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)

    # All-point interpolation: integrate precision envelope over recall.
    recall = np.concatenate([[0.0], recall, [recall[-1] if len(recall) else 0.0]])
    precision = np.concatenate([[1.0], precision, [0.0]])
    for i in range(len(precision) - 2, -1, -1):
        precision[i] = max(precision[i], precision[i + 1])
    deltas = np.diff(recall)
    return float((deltas * precision[1:]).sum())


def mean_average_precision(
    per_image_detections: Sequence[Sequence["Detection"]],
    gt_boxes: Sequence[np.ndarray],
    gt_labels: Sequence[np.ndarray],
    num_classes: int,
    iou_threshold: float = 0.5,
) -> float:
    """mAP over classes for per-image detection lists."""
    if len(per_image_detections) != len(gt_boxes):
        raise ValueError("detections and ground truth must cover the same images")
    flat: List["Detection"] = []
    image_ids: List[int] = []
    for image_id, dets in enumerate(per_image_detections):
        for det in dets:
            flat.append(det)
            image_ids.append(image_id)
    aps = [
        average_precision(flat, image_ids, gt_boxes, gt_labels, c, iou_threshold)
        for c in range(num_classes)
    ]
    return float(np.mean(aps)) if aps else 0.0
