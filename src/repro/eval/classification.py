"""Classification metrics."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy from predicted class ids (or logits)."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((predictions == targets).mean())


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose target is within the top-k logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("top-k accuracy requires a (N, C) logit matrix")
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top = np.argsort(-logits, axis=1)[:, :k]
    return float((top == targets[:, None]).any(axis=1).mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """(num_classes, num_classes) counts, rows = true class."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix
