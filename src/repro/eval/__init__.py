"""Evaluation metrics: classification accuracy and detection mAP."""

from repro.eval.classification import accuracy, top_k_accuracy, confusion_matrix
from repro.eval.detection import (
    iou,
    iou_matrix,
    nms,
    average_precision,
    mean_average_precision,
)

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "iou",
    "iou_matrix",
    "nms",
    "average_precision",
    "mean_average_precision",
]
