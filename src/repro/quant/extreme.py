"""Sub-8-bit weight quantization: ternary (TWN [14]) and binary (BNN [15]).

Section 2.3 dismisses ultra-scaled quantization as a route around the
SRAM density wall: "ultra-scaled networks below 8-bit quantization,
such as TNN and BNN, are still difficult to implement on modern
networks like ResNet and MobileNet".  These quantizers let the repo
measure that claim instead of citing it:

* :func:`ternarize` — Ternary Weight Networks: codes in {-1, 0, +1}
  with the threshold ``delta = 0.7 * mean|w|`` and the optimal scale
  (mean magnitude of the surviving weights) from Li et al.
* :func:`binarize` — BinaryConnect/BNN: ``sign(w)`` scaled by
  ``mean|w|`` (the XNOR-Net L1 scale).

Both come with straight-through fake-quant wrappers for training-aware
use and a post-training sweep helper used by the related-work bench,
where depthwise-separable models (MobileNet) degrade far more than
plain CNNs — the "difficult on modern networks" half of the sentence.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant.quantizer import QuantSpec, dequantize, quantize

#: TWN threshold factor (Li et al., eq. 6 approximation).
TWN_DELTA_FACTOR = 0.7


def ternarize(values: np.ndarray) -> Tuple[np.ndarray, float]:
    """Ternary codes in {-1, 0, +1} and their optimal scale.

    Returns ``(codes, scale)`` with ``codes * scale`` the TWN
    reconstruction.  All-zero inputs quantize to all-zero codes with a
    unit scale.
    """
    values = np.asarray(values, dtype=np.float64)
    delta = TWN_DELTA_FACTOR * np.abs(values).mean()
    codes = np.where(np.abs(values) > delta, np.sign(values), 0.0)
    mask = codes != 0
    scale = float(np.abs(values[mask]).mean()) if mask.any() else 1.0
    return codes.astype(np.int64), scale


def binarize(values: np.ndarray) -> Tuple[np.ndarray, float]:
    """Binary codes in {-1, +1} and the L1-optimal scale ``mean|w|``."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.where(values >= 0, 1.0, -1.0)
    scale = float(np.abs(values).mean())
    return codes.astype(np.int64), scale if scale > 0 else 1.0


def _ste(x: Tensor, data: np.ndarray, name: str) -> Tensor:
    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad)

    return Tensor._make(data, (x,), backward, name)


def fake_ternary(x: Tensor) -> Tensor:
    """TWN quantize-dequantize with a straight-through gradient."""
    codes, scale = ternarize(x.data)
    return _ste(x, codes.astype(np.float64) * scale, "fake_ternary")


def fake_binary(x: Tensor) -> Tensor:
    """BNN quantize-dequantize with a straight-through gradient."""
    codes, scale = binarize(x.data)
    return _ste(x, codes.astype(np.float64) * scale, "fake_binary")


#: Scheme name -> (codes, scale) weight quantizer.
WEIGHT_SCHEMES = {
    "int8": lambda w: quantize(w, QuantSpec(bits=8)),
    "int4": lambda w: quantize(w, QuantSpec(bits=4)),
    "ternary": ternarize,
    "binary": binarize,
}


def quantize_weights_(model: nn.Module, scheme: str) -> int:
    """Replace every conv/linear weight with its quantized value, in place.

    Per-output-channel granularity for the uniform schemes (the
    deployment-standard choice); per-tensor for ternary/binary as the
    original papers define them.  Returns the number of layers touched.
    BatchNorm and biases stay in full precision (both fit comfortably
    in digital peripherals).
    """
    if scheme not in WEIGHT_SCHEMES:
        raise KeyError(
            f"unknown scheme {scheme!r}; known: {sorted(WEIGHT_SCHEMES)}"
        )
    touched = 0
    for module in model.modules():
        if not isinstance(module, (nn.Conv2d, nn.Linear)):
            continue
        weight = module.weight.data
        if scheme in ("int8", "int4"):
            bits = 8 if scheme == "int8" else 4
            codes, scale = quantize(
                weight, QuantSpec(bits=bits, per_channel_axis=0)
            )
            module.weight.data = dequantize(codes, scale)
        else:
            codes, scale = WEIGHT_SCHEMES[scheme](weight)
            module.weight.data = codes.astype(np.float64) * scale
        touched += 1
    return touched


def weight_quantization_error(model: nn.Module, scheme: str) -> Dict[str, float]:
    """Per-layer relative L2 reconstruction error of ``scheme``.

    A cheap predictor of accuracy damage that needs no evaluation data:
    depthwise layers, with a handful of weights per filter, lose far
    more signal at ternary/binary than dense convolutions.
    """
    if scheme not in WEIGHT_SCHEMES:
        raise KeyError(
            f"unknown scheme {scheme!r}; known: {sorted(WEIGHT_SCHEMES)}"
        )
    errors: Dict[str, float] = {}
    for name, module in model.named_modules():
        if not isinstance(module, (nn.Conv2d, nn.Linear)):
            continue
        weight = module.weight.data
        codes, scale = WEIGHT_SCHEMES[scheme](weight)
        recon = codes.astype(np.float64) * np.asarray(scale, dtype=np.float64)
        norm = float(np.linalg.norm(weight))
        errors[name or type(module).__name__] = (
            float(np.linalg.norm(recon - weight)) / norm if norm else 0.0
        )
    return errors


def mean_quantization_error(model: nn.Module, scheme: str) -> float:
    """Average of :func:`weight_quantization_error` across layers."""
    errors = weight_quantization_error(model, scheme)
    return float(np.mean(list(errors.values()))) if errors else 0.0
