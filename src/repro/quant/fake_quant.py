"""Straight-through fake quantization for quantization-aware training.

Option III (SPWD) trains a 2-bit SRAM decoration branch; its forward
pass must see quantized weights while gradients flow as if the
quantizer were the identity (the straight-through estimator).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant.quantizer import QuantSpec, dequantize, quantize


def fake_quant(x: Tensor, spec: Optional[QuantSpec] = None, bits: int = 8) -> Tensor:
    """Quantize-dequantize with a straight-through gradient.

    Forward: ``dequantize(quantize(x))``.  Backward: identity inside the
    representable range, zero outside (values clipped by the quantizer
    stop receiving gradient, the standard STE-with-clipping rule).
    """
    spec = spec if spec is not None else QuantSpec(bits=bits)
    codes, scale = quantize(x.data, spec)
    data = dequantize(codes, scale)
    limit = scale * spec.qmax

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inside = (x.data >= -limit) & (x.data <= limit)
            x._accumulate(grad * inside)

    return Tensor._make(data, (x,), backward, "fake_quant")


class FakeQuantize(nn.Module):
    """Module wrapper applying :func:`fake_quant` to its input."""

    def __init__(self, bits: int = 8, per_channel_axis: Optional[int] = None):
        super().__init__()
        self.spec = QuantSpec(bits=bits, per_channel_axis=per_channel_axis)

    def forward(self, x: Tensor) -> Tensor:
        return fake_quant(x, self.spec)

    def extra_repr(self) -> str:
        return f"bits={self.spec.bits}"
