"""Core uniform quantization primitives."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def int_range(bits: int, signed: bool = True) -> Tuple[int, int]:
    """Representable integer range of a ``bits``-wide code."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if signed:
        return -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return 0, 2**bits - 1


@dataclass(frozen=True)
class QuantSpec:
    """Describes a uniform quantizer.

    ``per_channel_axis`` selects one tensor axis to carry independent
    scales (axis 0 for conv weights = per-output-channel).
    """

    bits: int = 8
    signed: bool = True
    per_channel_axis: Optional[int] = None

    def __post_init__(self):
        if self.bits < 1 or self.bits > 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")

    @property
    def qmin(self) -> int:
        return int_range(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bits, self.signed)[1]


def _scales(values: np.ndarray, spec: QuantSpec) -> np.ndarray:
    """Symmetric scale(s): max|x| mapped to the largest positive code."""
    if spec.per_channel_axis is None:
        amax = np.abs(values).max()
        amax = amax if amax > 0 else 1.0
        return np.asarray(amax / spec.qmax)
    axis = spec.per_channel_axis % values.ndim
    reduce_axes = tuple(i for i in range(values.ndim) if i != axis)
    amax = np.abs(values).max(axis=reduce_axes, keepdims=True)
    amax = np.where(amax > 0, amax, 1.0)
    return amax / spec.qmax


def quantize(values: np.ndarray, spec: QuantSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize to integer codes.  Returns ``(codes, scale)``.

    Codes are int64; ``dequantize(codes, scale)`` recovers the values up
    to quantization error.
    """
    values = np.asarray(values, dtype=np.float64)
    scale = _scales(values, spec)
    codes = np.clip(np.rint(values / scale), spec.qmin, spec.qmax).astype(np.int64)
    return codes, scale


def dequantize(codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Map integer codes back to real values."""
    return codes.astype(np.float64) * scale


def quantize_symmetric(values: np.ndarray, bits: int = 8) -> Tuple[np.ndarray, float]:
    """Convenience per-tensor signed symmetric quantization."""
    codes, scale = quantize(values, QuantSpec(bits=bits, signed=True))
    return codes, float(scale)


def quantization_mse(values: np.ndarray, spec: QuantSpec) -> float:
    """Mean squared error introduced by quantizing ``values``."""
    codes, scale = quantize(values, spec)
    return float(((dequantize(codes, scale) - values) ** 2).mean())
