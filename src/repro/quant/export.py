"""Export trained weights as integer matrices for CiM deployment.

A convolution's weight tensor (O, I, kh, kw) becomes the unrolled
matrix (I*kh*kw, O) that maps directly onto CiM subarrays: input rows on
word lines, output channels on bit-line columns (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import nn
from repro.quant.quantizer import QuantSpec, quantize


@dataclass
class QuantizedLayer:
    """Integer weight matrix of one layer, ready for CiM mapping."""

    name: str
    kind: str  # "conv" | "linear"
    codes: np.ndarray  # (rows, cols) int64
    scale: np.ndarray
    bits: int

    @property
    def rows(self) -> int:
        return self.codes.shape[0]

    @property
    def cols(self) -> int:
        return self.codes.shape[1]

    @property
    def weight_bits_total(self) -> int:
        return self.codes.size * self.bits


def _unroll(weight: np.ndarray, kind: str) -> np.ndarray:
    if kind == "conv":
        oc = weight.shape[0]
        return weight.reshape(oc, -1).T  # (I*kh*kw, O)
    if kind == "linear":
        return weight.T  # (in, out)
    raise ValueError(f"unsupported kind {kind!r}")


def quantize_model_weights(
    model: nn.Module, bits: int = 8, per_channel: bool = True
) -> List[QuantizedLayer]:
    """Quantize every Conv2d/Linear weight in ``model``.

    Per-channel scales (one per output column) are the CiM-friendly
    choice: each bit-line column owns a scale applied after the ADC.
    """
    spec_axis = 0 if per_channel else None
    layers: List[QuantizedLayer] = []
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            kind = "conv"
        elif isinstance(module, nn.Linear):
            kind = "linear"
        else:
            continue
        spec = QuantSpec(bits=bits, per_channel_axis=spec_axis)
        codes, scale = quantize(module.weight.data, spec)
        matrix = _unroll(codes, kind)
        if spec_axis is not None:
            # scale has shape (O, 1, 1, 1) or (O, 1); flatten to per-column.
            col_scale = scale.reshape(-1)
        else:
            col_scale = np.asarray(scale)
        layers.append(
            QuantizedLayer(name=name, kind=kind, codes=matrix, scale=col_scale, bits=bits)
        )
    return layers
