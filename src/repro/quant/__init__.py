"""Uniform quantization utilities.

The CiM macros compute on integer operands: YOLoC stores 8-bit weights
in ROM/SRAM arrays and streams activations bit-serially (Fig. 5), and
Option III (SPWD) decorates 8-bit ROM weights with a 2-bit SRAM branch.
This package provides the symmetric/affine quantizers, the
straight-through fake-quantization used during quantization-aware
training, and the model-weight export path consumed by ``repro.cim``.
"""

from repro.quant.quantizer import (
    QuantSpec,
    quantize,
    dequantize,
    quantize_symmetric,
    quantization_mse,
    int_range,
)
from repro.quant.fake_quant import fake_quant, FakeQuantize
from repro.quant.extreme import (
    ternarize,
    binarize,
    fake_ternary,
    fake_binary,
    quantize_weights_,
    weight_quantization_error,
    mean_quantization_error,
    WEIGHT_SCHEMES,
)
from repro.quant.export import quantize_model_weights, QuantizedLayer

__all__ = [
    "QuantSpec",
    "quantize",
    "dequantize",
    "quantize_symmetric",
    "quantization_mse",
    "int_range",
    "fake_quant",
    "FakeQuantize",
    "ternarize",
    "binarize",
    "fake_ternary",
    "fake_binary",
    "quantize_weights_",
    "weight_quantization_error",
    "mean_quantization_error",
    "WEIGHT_SCHEMES",
    "quantize_model_weights",
    "QuantizedLayer",
]
