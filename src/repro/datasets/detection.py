"""Synthetic object detection (the Fig. 12 PASCAL-VOC analogue).

Images contain 1-3 geometric objects (disk, square, cross) of
class-specific colorings on a textured background; labels are
``(class_id, x1, y1, x2, y2)`` with normalized coordinates.  A
``domain_shift`` knob plays the role of the paper's COCO -> {Pedestrian,
Traffic, VOC} migrations by rotating the class/color association.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

SHAPE_KINDS = ("disk", "square", "cross")


@dataclass
class DetectionTaskConfig:
    """Parameters of one synthetic detection task."""

    num_classes: int = 3
    image_size: int = 48
    channels: int = 3
    max_objects: int = 2
    min_size_frac: float = 0.2
    max_size_frac: float = 0.45
    noise: float = 0.15
    domain_shift: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 1 <= self.num_classes <= len(SHAPE_KINDS):
            raise ValueError(
                f"num_classes must be in [1, {len(SHAPE_KINDS)}] "
                "(one geometric shape family per class)"
            )
        if self.max_objects < 1:
            raise ValueError("need at least one object per image")
        if not 0 < self.min_size_frac < self.max_size_frac <= 0.9:
            raise ValueError("invalid object size range")


class SyntheticDetectionTask:
    """Generator of labelled detection images."""

    def __init__(self, config: DetectionTaskConfig):
        self.config = config
        rng = np.random.default_rng(config.seed + 31)
        # Class colors; domain shift rotates the palette assignment.
        base = np.array(
            [[1.0, 0.2, 0.2], [0.2, 1.0, 0.2], [0.2, 0.3, 1.0], [1.0, 1.0, 0.2]]
        )[: config.num_classes, : config.channels]
        roll = int(round(config.domain_shift * config.num_classes))
        self._colors = np.roll(base, roll, axis=0)
        self._bg_phase = rng.uniform(0, 2 * np.pi)

    def _draw_shape(
        self, image: np.ndarray, kind: str, cx: float, cy: float, half: float, color: np.ndarray
    ) -> None:
        size = image.shape[1]
        yy, xx = np.mgrid[0:size, 0:size]
        if kind == "disk":
            mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= half**2
        elif kind == "square":
            mask = (np.abs(yy - cy) <= half) & (np.abs(xx - cx) <= half)
        else:  # cross
            arm = max(1.0, half / 2.5)
            mask = (
                (np.abs(yy - cy) <= arm) & (np.abs(xx - cx) <= half)
            ) | ((np.abs(xx - cx) <= arm) & (np.abs(yy - cy) <= half))
        image[:, mask] += color[:, None]

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
        """Draw ``n`` images.

        Returns ``(images, boxes, labels)`` where ``boxes[i]`` is an
        (m_i, 4) array of normalized (x1, y1, x2, y2) and ``labels[i]``
        the matching (m_i,) class array.
        """
        config = self.config
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        size = config.image_size
        images = rng.normal(0.0, config.noise, size=(n, config.channels, size, size))
        # Low-frequency background texture common to the family.
        yy, xx = np.mgrid[0:size, 0:size] / size
        texture = 0.15 * np.sin(4 * np.pi * xx + self._bg_phase) * np.cos(
            3 * np.pi * yy
        )
        images += texture[None, None]

        all_boxes: List[np.ndarray] = []
        all_labels: List[np.ndarray] = []
        for index in range(n):
            count = int(rng.integers(1, config.max_objects + 1))
            boxes = []
            labels = []
            for _ in range(count):
                class_id = int(rng.integers(0, config.num_classes))
                half = (
                    rng.uniform(config.min_size_frac, config.max_size_frac) * size / 2
                )
                cx = rng.uniform(half + 1, size - half - 1)
                cy = rng.uniform(half + 1, size - half - 1)
                self._draw_shape(
                    images[index],
                    SHAPE_KINDS[class_id],
                    cx,
                    cy,
                    half,
                    self._colors[class_id],
                )
                boxes.append(
                    [
                        (cx - half) / size,
                        (cy - half) / size,
                        (cx + half) / size,
                        (cy + half) / size,
                    ]
                )
                labels.append(class_id)
            all_boxes.append(np.array(boxes))
            all_labels.append(np.array(labels, dtype=np.int64))
        images = np.tanh(images)
        return images, all_boxes, all_labels


def detection_suite(seed: int = 0, image_size: int = 48) -> Dict[str, SyntheticDetectionTask]:
    """COCO-analog source plus three migration targets (Fig. 12 table)."""
    return {
        "source": SyntheticDetectionTask(
            DetectionTaskConfig(image_size=image_size, domain_shift=0.0, seed=seed)
        ),
        "pedestrian": SyntheticDetectionTask(
            DetectionTaskConfig(
                image_size=image_size, num_classes=2, domain_shift=0.3, seed=seed + 1
            )
        ),
        "traffic": SyntheticDetectionTask(
            DetectionTaskConfig(
                image_size=image_size, num_classes=3, domain_shift=0.4, seed=seed + 2
            )
        ),
        "voc": SyntheticDetectionTask(
            DetectionTaskConfig(
                image_size=image_size, num_classes=3, domain_shift=0.7, seed=seed + 3
            )
        ),
    }
