"""Procedural classification tasks that transfer like natural images.

Structure
---------
A :class:`MotifBank` holds small oriented/textured patches shared by an
entire task *family* — the analogue of natural-image low-level
statistics (edges, blobs, gratings).  A :class:`SyntheticTask` defines
classes as spatial compositions of motifs, plus a global appearance
transform (channel mixing, contrast, background texture) controlled by
``domain_shift``:

* ``domain_shift = 0`` — same appearance as the source task; frozen
  features transfer nearly perfectly.
* larger shifts progressively rotate the channel mixture and swap motif
  assignments, degrading frozen-feature transfer the way Caltech101
  degrades a CIFAR-100 extractor in the paper's Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


class MotifBank:
    """Shared low-level patch vocabulary of a task family."""

    def __init__(self, n_motifs: int = 12, patch: int = 5, channels: int = 3, seed: int = 1234):
        if n_motifs < 2:
            raise ValueError("need at least two motifs")
        rng = np.random.default_rng(seed)
        self.patch = patch
        self.channels = channels
        motifs = []
        for index in range(n_motifs):
            kind = index % 3
            yy, xx = np.mgrid[0:patch, 0:patch] / (patch - 1)
            if kind == 0:  # oriented grating
                theta = rng.uniform(0, np.pi)
                freq = rng.uniform(1.5, 3.5)
                base = np.sin(2 * np.pi * freq * (xx * np.cos(theta) + yy * np.sin(theta)))
            elif kind == 1:  # center-surround blob
                cx, cy = rng.uniform(0.3, 0.7, size=2)
                sigma = rng.uniform(0.15, 0.3)
                base = np.exp(-((xx - cx) ** 2 + (yy - cy) ** 2) / (2 * sigma**2))
                base = 2 * base - base.mean()
            else:  # corner / edge
                base = np.where(xx + yy > rng.uniform(0.7, 1.3), 1.0, -1.0)
            color = rng.normal(0.0, 1.0, size=channels)
            color /= np.linalg.norm(color) + 1e-9
            motif = base[None, :, :] * color[:, None, None]
            motifs.append(motif / (np.abs(motif).max() + 1e-9))
        self.motifs = np.stack(motifs)  # (n, C, p, p)

    def __len__(self) -> int:
        return len(self.motifs)


@dataclass
class SyntheticTaskConfig:
    """Parameters of one classification task."""

    num_classes: int = 8
    image_size: int = 16
    channels: int = 3
    motifs_per_class: int = 3
    noise: float = 0.25
    domain_shift: float = 0.0
    seed: int = 0
    bank_seed: int = 1234

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("a classification task needs >= 2 classes")
        if not 0.0 <= self.domain_shift <= 1.0:
            raise ValueError("domain_shift must be in [0, 1]")
        if self.image_size < 8:
            raise ValueError("image_size must be >= 8")


class SyntheticTask:
    """One classification task drawn from a motif family."""

    def __init__(self, config: SyntheticTaskConfig, bank: Optional[MotifBank] = None):
        self.config = config
        self.bank = bank if bank is not None else MotifBank(
            channels=config.channels, seed=config.bank_seed
        )
        rng = np.random.default_rng(config.seed + 77)

        # Class templates: class-specific motif choices and placements.
        # domain_shift rotates which motifs define classes, weakening the
        # motif->class mapping learned on the source task.
        n_motifs = len(self.bank)
        shift_offset = int(round(config.domain_shift * n_motifs))
        self._assignments = []
        self._positions = []
        size = config.image_size
        patch = self.bank.patch
        for class_id in range(config.num_classes):
            motif_ids = (
                rng.permutation(n_motifs)[: config.motifs_per_class] + shift_offset
            ) % n_motifs
            positions = rng.integers(0, size - patch, size=(config.motifs_per_class, 2))
            self._assignments.append(motif_ids)
            self._positions.append(positions)

        # Global appearance transform: identity at shift 0, rotating
        # channel mixture + contrast change as shift grows.
        angle = config.domain_shift * np.pi / 3
        mix = np.eye(config.channels)
        if config.channels >= 2:
            c, s = np.cos(angle), np.sin(angle)
            rotation = np.eye(config.channels)
            rotation[0, 0], rotation[0, 1] = c, -s
            rotation[1, 0], rotation[1, 1] = s, c
            mix = rotation
        self._channel_mix = mix
        self._contrast = 1.0 + 0.5 * config.domain_shift

    def sample(
        self, n: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled images: (X (n,C,H,W) float, y (n,) int)."""
        config = self.config
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        size, patch = config.image_size, self.bank.patch
        labels = rng.integers(0, config.num_classes, size=n)
        images = rng.normal(0.0, config.noise, size=(n, config.channels, size, size))
        for index, label in enumerate(labels):
            for motif_id, (py, px) in zip(
                self._assignments[label], self._positions[label]
            ):
                jitter_y = int(np.clip(py + rng.integers(-1, 2), 0, size - patch))
                jitter_x = int(np.clip(px + rng.integers(-1, 2), 0, size - patch))
                gain = rng.uniform(0.8, 1.2)
                images[
                    index,
                    :,
                    jitter_y : jitter_y + patch,
                    jitter_x : jitter_x + patch,
                ] += gain * self.bank.motifs[motif_id]
        # Apply the task's appearance transform.
        images = np.einsum("dc,nchw->ndhw", self._channel_mix, images)
        images = np.tanh(self._contrast * images)
        return images, labels.astype(np.int64)

    def splits(
        self, n_train: int, n_test: int, seed: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Independent train/test draws: (x_train, y_train, x_test, y_test)."""
        base = self.config.seed if seed is None else seed
        x_train, y_train = self.sample(n_train, np.random.default_rng(base + 1))
        x_test, y_test = self.sample(n_test, np.random.default_rng(base + 2))
        return x_train, y_train, x_test, y_test
