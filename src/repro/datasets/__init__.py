"""Synthetic datasets with a controllable domain-shift knob.

The paper's experiments transfer models pretrained on CIFAR-100 (or
COCO) to CIFAR-10 / MNIST / Fashion-MNIST / Caltech101 (or Pedestrian /
Traffic / PASCAL VOC).  No image corpora are downloadable in this
offline environment, so this package generates procedural substitutes
engineered to preserve the property the experiments probe: all tasks in
a family share a bank of *low-level motifs* (so pretrained early
features partially transfer) while classes, compositions, and global
appearance statistics shift per task (so frozen features alone are not
enough — the regime where ReBranch earns its keep).

See docs/architecture.md for where the synthetic suites substitute
for the paper's datasets.
"""

from repro.datasets.synthetic import SyntheticTaskConfig, SyntheticTask, MotifBank
from repro.datasets.transfer_suite import (
    TransferSuite,
    classification_suite,
    SuiteSplits,
)
from repro.datasets.detection import (
    DetectionTaskConfig,
    SyntheticDetectionTask,
    detection_suite,
)

__all__ = [
    "SyntheticTaskConfig",
    "SyntheticTask",
    "MotifBank",
    "TransferSuite",
    "classification_suite",
    "SuiteSplits",
    "DetectionTaskConfig",
    "SyntheticDetectionTask",
    "detection_suite",
]
