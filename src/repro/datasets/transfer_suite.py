"""The Fig. 10 transfer suite: one source task and four target tasks.

Analogue of the paper's CIFAR-100 -> {CIFAR-10, MNIST, Fashion-MNIST,
Caltech101} protocol.  All five tasks share one motif bank (the
"natural image statistics"); the targets differ in class count,
composition complexity, and domain shift:

=================  ==========  ======================================
target             shift       paper analogue / expected behaviour
=================  ==========  ======================================
``near``           0.10        CIFAR-10: easy transfer, small gap
``simple``         0.05        MNIST: simpler task, all methods high
``medium``         0.30        Fashion-MNIST: moderate gap
``far``            0.65        Caltech101: frozen features degrade
=================  ==========  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.datasets.synthetic import MotifBank, SyntheticTask, SyntheticTaskConfig


@dataclass
class SuiteSplits:
    """Materialized train/test arrays of one task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(max(self.y_train.max(), self.y_test.max())) + 1


class TransferSuite:
    """Source + target tasks over a shared motif bank."""

    TARGETS: Dict[str, Tuple[int, float, int]] = {
        # name: (num_classes, domain_shift, motifs_per_class)
        "near": (8, 0.10, 3),
        "simple": (6, 0.05, 2),
        "medium": (8, 0.30, 3),
        "far": (10, 0.65, 4),
    }

    def __init__(
        self,
        image_size: int = 16,
        channels: int = 3,
        source_classes: int = 12,
        noise: float = 0.45,
        bank_seed: int = 1234,
        seed: int = 0,
    ):
        self.bank = MotifBank(n_motifs=12, channels=channels, seed=bank_seed)
        self.image_size = image_size
        self.channels = channels
        self.noise = noise
        self.seed = seed
        self.source = SyntheticTask(
            SyntheticTaskConfig(
                num_classes=source_classes,
                image_size=image_size,
                channels=channels,
                noise=noise,
                domain_shift=0.0,
                seed=seed,
                bank_seed=bank_seed,
            ),
            bank=self.bank,
        )
        self.targets: Dict[str, SyntheticTask] = {}
        for index, (name, (classes, shift, per_class)) in enumerate(self.TARGETS.items()):
            self.targets[name] = SyntheticTask(
                SyntheticTaskConfig(
                    num_classes=classes,
                    image_size=image_size,
                    channels=channels,
                    motifs_per_class=per_class,
                    noise=noise,
                    domain_shift=shift,
                    seed=seed + 100 * (index + 1),
                    bank_seed=bank_seed,
                ),
                bank=self.bank,
            )

    def source_splits(self, n_train: int = 512, n_test: int = 256) -> SuiteSplits:
        return SuiteSplits(*self.source.splits(n_train, n_test))

    def target_splits(
        self, name: str, n_train: int = 256, n_test: int = 256
    ) -> SuiteSplits:
        if name not in self.targets:
            raise KeyError(
                f"unknown target {name!r}; available: {sorted(self.targets)}"
            )
        return SuiteSplits(*self.targets[name].splits(n_train, n_test))


def classification_suite(seed: int = 0, image_size: int = 16) -> TransferSuite:
    """The default Fig. 10 suite."""
    return TransferSuite(image_size=image_size, seed=seed)
