"""Deterministic chaos runtime: fault injection, failover, degradation.

The paper's reliability argument for ROM-CiM (section 2: read-disturb
immunity versus the device variation of RRAM/MRAM/FeFET) lived offline
in :mod:`repro.cim.variation` accuracy studies, while the serving stack
assumed every shard, link and engine stays healthy forever.  This
package brings that reliability machinery *online*:

* :class:`FaultSchedule` — a seeded, serializable list of typed
  :class:`FaultEvent`\\ s (shard death, SIMBA-link degradation, ADC
  drift ramps, transient bit-line noise spikes) whose firing points are
  expressed in **micro-batch index** or **simulated chip time** — never
  wall time — so a chaos run replays exactly, same discipline as
  :func:`repro.runtime.stream_rng`.
* :class:`ChaosController` — the injection layer threaded through
  :meth:`repro.runtime.ShardedModel.run_stream` and
  :class:`repro.serve.InferenceServer`.  Degradation faults route
  through the *existing* analog paths per engine (the
  :class:`~repro.cim.bitline.BitlineModel` observation and the
  ADC-count error model of :mod:`repro.cim.variation`); a shard death
  triggers failover — re-plan around the dead shard, warm-restore from
  the artifact store when one is attached, replay the displaced
  micro-batches — with the recovery recorded and traced.
* :func:`run_chaos_stream` / :class:`ChaosStreamResult` — the
  chaos-instrumented twin of the pipelined stream executor, returning
  availability, recovery records and a deterministic trace digest.

Determinism contract (docs/chaos.md): zero-magnitude schedules are
bitwise identical to clean runs, and the same ``(seed, schedule)``
produces identical recovery traces and outputs across processes.
"""

from repro.chaos.schedule import (
    ADC_DRIFT,
    BITLINE_NOISE,
    FAULT_KINDS,
    LINK_DEGRADE,
    SHARD_DEATH,
    FaultEvent,
    FaultSchedule,
    generate_schedule,
)
from repro.chaos.inject import ChaosController, Degradation, degraded_execution
from repro.chaos.stream import (
    ChaosStreamResult,
    RecoveryRecord,
    run_chaos_stream,
)

__all__ = [
    "ADC_DRIFT",
    "BITLINE_NOISE",
    "FAULT_KINDS",
    "LINK_DEGRADE",
    "SHARD_DEATH",
    "FaultEvent",
    "FaultSchedule",
    "generate_schedule",
    "ChaosController",
    "Degradation",
    "degraded_execution",
    "ChaosStreamResult",
    "RecoveryRecord",
    "run_chaos_stream",
]
