"""Chaos-instrumented pipelined stream execution with shard failover.

:func:`run_chaos_stream` is the fault-tolerant twin of
:meth:`repro.runtime.ShardedModel.run_stream`: the same
worker-per-shard pipeline over bounded queues, with three additions
driven by a :class:`~repro.chaos.inject.ChaosController`:

* **Degraded-mode execution** — before a shard executes a micro-batch
  it asks the controller for the open degradation window; engines then
  route through the live analog fault paths (see
  :mod:`repro.chaos.inject`).  Link-degradation windows scale the
  simulated transfer latency/energy of the hop leaving the shard.
* **Shard death + failover** — a fired death diverts that micro-batch
  and everything behind it into a displaced list (micro-batches already
  past the dead shard complete normally).  The coordinator then
  re-plans the DAG around the dead shard (``plan_shards`` over the
  surviving count, the same single-edge-frontier legality), restores
  the engines — warm from the ``.rcma`` artifact store when the
  controller carries one, else the in-memory engines — and replays the
  displaced micro-batches through the recovered pipeline, resuming each
  at the exact plan node where it was displaced.
* **Exactly-once accounting** — every requested micro-batch index ends
  the campaign either *delivered* (exactly one output) or *dropped*
  (recorded, counted against availability); a replayed micro-batch is
  never re-executed over nodes it already completed.

Determinism: firing points are micro-batch indexes or simulated chip
time, each micro-batch owns its ``stream_rng``, and every displaced
micro-batch resumes with its own carried RNG state — so outputs *and*
recovery traces replay exactly across processes
(:meth:`ChaosStreamResult.deterministic_trace`).  Wall-clock recovery
times are measured and reported but excluded from the trace digest.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.inject import ChaosController
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.cim.macro import MacroStats
from repro.obs import trace
from repro.runtime.compiled import _USE_DEFAULT, _RunState
from repro.runtime.sharded import ShardedModel, StreamResult, shard, stream_rng


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed failover: what died, what it cost, what survived."""

    events: Tuple[FaultEvent, ...]
    dead_shards: Tuple[int, ...]
    n_shards_before: int
    n_shards_after: int
    displaced: Tuple[int, ...]
    dropped: Tuple[int, ...]
    replayed: Tuple[int, ...]
    #: plan node each replayed micro-batch resumed at (aligned with
    #: ``replayed``).
    resume_nodes: Tuple[int, ...]
    warm_restored: bool
    #: wall-clock seconds: total recovery, re-plan, engine restore.
    #: Measured, reported, and *excluded* from the deterministic trace.
    wall_s: float = 0.0
    replan_s: float = 0.0
    restore_s: float = 0.0

    def structural_meta(self) -> Dict[str, Any]:
        """The deterministic (wall-time-free) projection of the record."""
        return {
            "events": [event.to_meta() for event in self.events],
            "dead_shards": list(self.dead_shards),
            "n_shards_before": self.n_shards_before,
            "n_shards_after": self.n_shards_after,
            "displaced": list(self.displaced),
            "dropped": list(self.dropped),
            "replayed": list(self.replayed),
            "resume_nodes": list(self.resume_nodes),
            "warm_restored": self.warm_restored,
        }


@dataclass
class ChaosStreamResult(StreamResult):
    """A :class:`StreamResult` plus the campaign's fault/recovery story.

    ``outputs`` / ``per_batch`` / ``compute_ns`` / ``link_ns`` cover the
    *delivered* micro-batches, sorted by index (``delivered_indexes``
    maps row → original index).  ``compute_ns`` columns are sized to the
    starting topology; replayed micro-batches charge the stages they
    re-ran in the recovered topology, so post-failover makespans are
    approximate (documented in docs/chaos.md).
    """

    schedule: Optional[FaultSchedule] = None
    fired: List[Dict[str, Any]] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    delivered_indexes: Tuple[int, ...] = ()
    dropped_indexes: Tuple[int, ...] = ()
    n_requested: int = 0

    @property
    def n_delivered(self) -> int:
        return len(self.delivered_indexes)

    @property
    def availability(self) -> float:
        """Fraction of requested micro-batches delivered."""
        if not self.n_requested:
            return 1.0
        return self.n_delivered / self.n_requested

    @property
    def outputs_by_index(self) -> Dict[int, np.ndarray]:
        return dict(zip(self.delivered_indexes, self.outputs))

    def deterministic_trace(self) -> Dict[str, Any]:
        """JSON-serializable digest pinned across processes.

        Covers the schedule, every fired fault, every recovery's
        structural fields, the delivered/dropped index sets, and a
        SHA-256 over each delivered output's exact bytes.  Two runs of
        the same ``(seed, schedule, model, batches)`` produce equal
        digests regardless of host, thread interleaving, or wall-clock
        behaviour.
        """
        return {
            "schedule": self.schedule.to_meta() if self.schedule else None,
            "fired": self.fired,
            "recoveries": [r.structural_meta() for r in self.recoveries],
            "delivered": list(self.delivered_indexes),
            "dropped": list(self.dropped_indexes),
            "output_sha256": {
                int(i): hashlib.sha256(
                    np.ascontiguousarray(out).tobytes()
                ).hexdigest()
                for i, out in zip(self.delivered_indexes, self.outputs)
            },
        }


class _ChaosItem:
    __slots__ = ("index", "x", "state", "start_node", "compute_ns", "link_ns")

    def __init__(
        self, index: int, x: np.ndarray, state: _RunState, n_shards: int
    ):
        self.index = index
        self.x = x
        self.state = state
        self.start_node = 0  # plan node execution resumes at (0 = from input)
        self.compute_ns = np.zeros(n_shards)
        self.link_ns = np.zeros(max(n_shards - 1, 0))


class _AttemptOutcome:
    """What one pipelined attempt produced."""

    __slots__ = ("completed", "displaced", "deaths")

    def __init__(self):
        self.completed: List[_ChaosItem] = []
        #: dead shard -> items displaced there (in arrival = index order).
        self.displaced: Dict[int, List[_ChaosItem]] = {}
        #: (event, shard, fired index) in deterministic (index, shard) order.
        self.deaths: List[Tuple[FaultEvent, int, int]] = []


def _stage_start_node(sharded: ShardedModel, s: int) -> int:
    """First plan node stage ``s`` executes (next node after the
    previous stage for an empty stage)."""
    indices = sharded._stages[s]
    if indices:
        return indices[0]
    return sharded._stages[s - 1][-1] + 1 if s else 0


def _run_attempt(
    sharded: ShardedModel,
    items: Sequence[_ChaosItem],
    controller: ChaosController,
    tracer,
    queue_depth: int,
) -> _AttemptOutcome:
    """One pipelined pass; stops feeding dead shards, never loses items.

    A shard whose death fires diverts the triggering micro-batch and
    every later arrival to the displaced list and keeps draining its
    inbox (so upstream shards never block on a full queue into a dead
    stage), forwarding only the end-of-stream sentinel.  Micro-batches
    already past the dead shard finish normally.
    """
    n_shards = sharded.n_shards
    last = n_shards - 1
    queues: List["queue.Queue"] = [
        queue.Queue(maxsize=queue_depth) for _ in range(n_shards + 1)
    ]
    errors: List[BaseException] = []
    outcome = _AttemptOutcome()
    outcome_lock = threading.Lock()

    def worker(s: int) -> None:
        inbox, outbox = queues[s], queues[s + 1]
        dead: Optional[List[_ChaosItem]] = None
        cum_chip = 0.0
        while True:
            item = inbox.get()
            if item is None:
                outbox.put(None)
                return
            if errors:
                continue  # drain the pipe; the attempt already failed
            if dead is not None:
                item.start_node = max(
                    item.start_node, _stage_start_node(sharded, s)
                )
                dead.append(item)
                continue
            try:
                stage = sharded._stages[s]
                resumes_past_stage = bool(stage) and item.start_node > stage[-1]
                if not resumes_past_stage:
                    event = controller.check_shard_death(
                        shard=s, index=item.index, chip_ns=cum_chip
                    )
                    if event is not None:
                        with outcome_lock:
                            dead = outcome.displaced.setdefault(s, [])
                            outcome.deaths.append((event, s, item.index))
                        if tracer is not None:
                            with tracer.span(
                                f"fault:{event.kind}",
                                "chaos",
                                shard=s,
                                microbatch=item.index,
                            ):
                                pass
                        item.start_node = max(
                            item.start_node, _stage_start_node(sharded, s)
                        )
                        dead.append(item)
                        continue
                executed = False
                if not resumes_past_stage:
                    degrade = controller.degradation_at(
                        item.index, chip_ns=cum_chip, shard=s
                    )
                    item.state.degrade = degrade
                    before = item.state.stats.latency_ns
                    if tracer is None:
                        item.x = _execute_stage(sharded, s, item)
                    else:
                        with tracer.span(
                            f"shard{s}:mb{item.index}",
                            "shard",
                            shard=s,
                            microbatch=item.index,
                            degraded=degrade is not None,
                        ) as sp:
                            item.x = _execute_stage(sharded, s, item)
                            sp.set(
                                "chip_ns",
                                item.state.stats.latency_ns - before,
                            )
                    item.state.degrade = None
                    delta = item.state.stats.latency_ns - before
                    cum_chip += delta
                    item.compute_ns[s] += delta
                    executed = True
                if executed and s < last:
                    transfer = sharded._transfer_stats(item.x)
                    latency_f, energy_f = controller.link_factors(
                        s, item.index, cum_chip
                    )
                    if latency_f != 1.0 or energy_f != 1.0:
                        transfer = replace(
                            transfer,
                            link_energy_fj=transfer.link_energy_fj * energy_f,
                            link_latency_ns=transfer.link_latency_ns
                            * latency_f,
                        )
                    item.state.stats = item.state.stats + transfer
                    item.link_ns[s] += transfer.link_latency_ns
                    if tracer is not None:
                        with tracer.span(
                            f"link{s}:mb{item.index}",
                            "link",
                            shard=s,
                            microbatch=item.index,
                            chip_ns=transfer.link_latency_ns,
                            link_bits=transfer.link_bits,
                        ):
                            pass
            except BaseException as error:  # noqa: BLE001 - re-raised by caller
                errors.append(error)
                continue
            outbox.put(item)

    threads = [
        threading.Thread(
            target=worker, args=(s,), name=f"chaos-shard-{s}", daemon=True
        )
        for s in range(n_shards)
    ]
    for thread in threads:
        thread.start()

    def collect() -> None:
        while True:
            item = queues[n_shards].get()
            if item is None:
                return
            outcome.completed.append(item)

    collector = threading.Thread(
        target=collect, name="chaos-collect", daemon=True
    )
    collector.start()
    try:
        for item in items:
            queues[0].put(item)
        queues[0].put(None)
    finally:
        # The sentinel propagates through every worker (dead ones still
        # forward it), so these joins cannot orphan a shard thread.
        collector.join()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
    outcome.deaths.sort(key=lambda d: (d[2], d[1]))
    return outcome


def _execute_stage(sharded: ShardedModel, s: int, item: _ChaosItem) -> np.ndarray:
    """Run stage ``s`` on the item, honouring its replay resume point.

    A replayed item whose resume node falls inside this stage binds its
    carried tensor to node ``start_node - 1`` (``_run_stage_from``);
    stages entirely past the resume point run normally — by then the
    item's tensor is an ordinary inter-stage value again.
    """
    stage = sharded._stages[s]
    if item.start_node > 0 and stage and item.start_node >= stage[0]:
        return sharded._run_stage_from(s, item.x, item.state, item.start_node)
    return sharded._run_stage(s, item.x, item.state)


def _failover(
    current: ShardedModel,
    controller: ChaosController,
    outcome: _AttemptOutcome,
) -> Tuple[Optional[ShardedModel], RecoveryRecord, List[_ChaosItem]]:
    """Re-plan around the dead shard(s) and stage the replay.

    Returns ``(recovered model or None, recovery record, items to
    replay)``.  ``None`` means the fleet is unrecoverable (no shard
    left); every displaced micro-batch is then dropped.
    """
    t_start = time.perf_counter()
    dead_shards = tuple(sorted(outcome.displaced))
    events = tuple(event for event, _, _ in outcome.deaths)
    n_before = current.n_shards
    n_after = n_before - len(dead_shards)

    displaced: List[_ChaosItem] = []
    for s in dead_shards:
        displaced.extend(outcome.displaced[s])
    displaced.sort(key=lambda item: item.index)

    # Each death event abandons its first `drop` displaced micro-batches
    # (simulating in-flight state lost with the chiplet's buffers).
    n_drop = min(sum(e.drop for e in events), len(displaced))
    dropped = displaced[:n_drop]
    replay = displaced[n_drop:]

    recovered: Optional[ShardedModel] = None
    warm = False
    replan_s = 0.0
    restore_s = 0.0
    if n_after >= 1:
        if controller.store is not None and controller.artifact_key_fn is not None:
            from repro.runtime import snapshot

            t0 = time.perf_counter()
            try:
                key = controller.artifact_key_fn(n_after)
                restored = snapshot.load(controller.store, key)
                if isinstance(restored, ShardedModel) and restored.n_shards == n_after:
                    recovered = restored
                    warm = True
            except snapshot.SnapshotError:
                recovered = None  # cold re-plan below
            restore_s = time.perf_counter() - t0
        if recovered is None:
            t0 = time.perf_counter()
            recovered = shard(
                current.compiled,
                n_after,
                link=current.link,
                input_shape=controller.input_shape,
            )
            replan_s = time.perf_counter() - t0
    else:
        dropped = displaced
        replay = []

    record = RecoveryRecord(
        events=events,
        dead_shards=dead_shards,
        n_shards_before=n_before,
        n_shards_after=max(n_after, 0),
        displaced=tuple(item.index for item in displaced),
        dropped=tuple(item.index for item in dropped),
        replayed=tuple(item.index for item in replay),
        resume_nodes=tuple(item.start_node for item in replay),
        warm_restored=warm,
        wall_s=time.perf_counter() - t_start,
        replan_s=replan_s,
        restore_s=restore_s,
    )
    return recovered, record, replay


def run_chaos_stream(
    model: ShardedModel,
    batches: Sequence[np.ndarray],
    controller: ChaosController,
    *,
    seed: int = 0,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    encoding: Any = _USE_DEFAULT,
    session: Any = None,
    queue_depth: int = 2,
) -> ChaosStreamResult:
    """Pipelined stream execution under a fault schedule.

    The entry point behind ``ShardedModel.run_stream(..., chaos=...)``.
    With an inert controller (no events, or all zero-magnitude) the
    delivered outputs and stats are bitwise identical to the clean
    ``run_stream`` — the differential witness every chaos test builds
    on.
    """
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if rngs is not None and len(rngs) != len(batches):
        raise ValueError(f"{len(rngs)} rngs for {len(batches)} micro-batches")
    n_initial = model.n_shards
    resolved_encoding = (
        model.compiled.config.encoding if encoding is _USE_DEFAULT else encoding
    )
    items: List[_ChaosItem] = []
    for i, batch in enumerate(batches):
        rng = rngs[i] if rngs is not None else stream_rng(seed, i)
        items.append(
            _ChaosItem(
                i,
                np.asarray(batch, dtype=np.float64),
                _RunState(rng=rng, encoding=resolved_encoding),
                n_initial,
            )
        )

    tracer = trace.current()
    started = time.perf_counter()
    current = model
    pending: List[_ChaosItem] = items
    delivered: Dict[int, _ChaosItem] = {}
    dropped: List[int] = []
    recoveries: List[RecoveryRecord] = []

    while pending:
        outcome = _run_attempt(current, pending, controller, tracer, queue_depth)
        for item in outcome.completed:
            if item.index in delivered:
                raise RuntimeError(
                    f"micro-batch {item.index} delivered twice — "
                    "exactly-once accounting broken"
                )
            delivered[item.index] = item
        if not outcome.deaths:
            break
        recovered, record, replay = _failover(current, controller, outcome)
        recoveries.append(record)
        controller.recoveries.append(record)
        dropped.extend(record.dropped)
        if tracer is not None:
            with tracer.span(
                "chaos:recovery",
                "chaos",
                dead_shards=",".join(map(str, record.dead_shards)),
                n_shards_after=record.n_shards_after,
                replayed=len(record.replayed),
                dropped=len(record.dropped),
                warm_restored=record.warm_restored,
            ):
                pass
        if controller.recovery_hook is not None:
            controller.recovery_hook(record)
        if recovered is None:
            break
        current = recovered
        pending = replay

    wall_s = time.perf_counter() - started
    done = sorted(delivered.values(), key=lambda item: item.index)
    total = MacroStats()
    per_batch: List[MacroStats] = []
    for item in done:
        per_batch.append(item.state.stats)
        total = total + item.state.stats
        if session is not None:
            samples = item.x.shape[0] if item.x.ndim else 1
            session.record(item.state.stats, samples=samples)
    return ChaosStreamResult(
        outputs=[item.x for item in done],
        per_batch=per_batch,
        stats=total,
        compute_ns=np.stack([item.compute_ns for item in done])
        if done
        else np.zeros((0, n_initial)),
        link_ns=np.stack([item.link_ns for item in done])
        if done
        else np.zeros((0, max(n_initial - 1, 0))),
        wall_s=wall_s,
        n_shards=n_initial,
        schedule=controller.schedule,
        fired=controller.fired_records(),
        recoveries=recoveries,
        delivered_indexes=tuple(item.index for item in done),
        dropped_indexes=tuple(sorted(dropped)),
        n_requested=len(items),
    )
