"""The injection layer: live degradation and fault firing decisions.

Two halves:

* :class:`Degradation` + :func:`degraded_execution` — route a run's
  engines through the **existing** analog paths with temporarily
  degraded circuit parameters: the bit-line comparator noise of
  :meth:`repro.cim.bitline.BitlineModel.observe` and the count-domain
  ADC offset/gain error model shared with
  :func:`repro.cim.variation.perturbed_matmul` (via
  :func:`repro.cim.variation.apply_adc_errors`).  Degraded execution
  always takes the reference macro path — the exact LUT kernel is a
  noise-free fast path by construction — which is bitwise identical to
  the kernel when no degradation is active, so zero-magnitude faults
  cannot change a single output bit.
* :class:`ChaosController` — owns a normalized
  :class:`~repro.chaos.schedule.FaultSchedule` and answers the hot-path
  questions (*is this shard dead yet? what degradation window is open
  at this micro-batch? how slow is this link right now?*) in O(events)
  per micro-batch with no RNG of its own: all noise draws come from the
  micro-batch's ``stream_rng``, so firing and effects replay exactly.

Thread-safety: engines are shared across shard workers through the
engine cache, and a degraded execution temporarily mutates the engine's
``run_config`` (the one object every tile's macro references).  All
degraded executions therefore serialize on a module-global lock; clean
executions never touch it.  Degraded windows are rare by construction
(faults), so the serialization does not gate steady-state throughput.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos.schedule import (
    ADC_DRIFT,
    BITLINE_NOISE,
    DEGRADATION_KINDS,
    LINK_DEGRADE,
    SHARD_DEATH,
    FaultEvent,
    FaultSchedule,
)
from repro.cim.variation import apply_adc_errors
from repro.quant.quantizer import QuantSpec, quantize

#: Serializes every degraded execution: the degraded parameters live on
#: the engine's shared ``run_config`` for the duration of one matmul.
_DEGRADE_LOCK = threading.Lock()


@dataclass(frozen=True)
class Degradation:
    """The combined analog degradation active for one engine execution.

    ``noise_sigma_counts`` adds to the bit line's own sigma in
    quadrature (independent noise sources); ``adc_offset`` /
    ``adc_gain`` apply at the count level before rail-clipping, exactly
    like the static Monte-Carlo's per-die errors.
    """

    noise_sigma_counts: float = 0.0
    adc_offset: float = 0.0
    adc_gain: float = 1.0

    @property
    def is_noop(self) -> bool:
        return (
            self.noise_sigma_counts == 0.0
            and self.adc_offset == 0.0
            and self.adc_gain == 1.0
        )

    def wrap(self, engine: Any) -> Any:
        """The seam :class:`repro.runtime.compiled._RunState` calls.

        Returns ``engine`` untouched for a no-op degradation (the clean
        kernel path, bitwise identical to an undegraded run); otherwise
        a proxy that executes through the degraded macro path.
        """
        if self.is_noop:
            return engine
        if hasattr(engine, "execute_patches"):
            return _DegradedConv(engine, self)
        return _DegradedLinear(engine, self)


class _DriftedAdc:
    """An ADC spec whose conversions see a count offset and gain error.

    Wraps the engine's real :class:`~repro.cim.adc.AdcSpec`; every
    attribute (resolution, energy, area) delegates to it, and only
    ``quantize_counts`` differs: the observed counts are passed through
    :func:`repro.cim.variation.apply_adc_errors` first — the same
    gain → offset → rail-clip pipeline the static variation study uses.
    """

    def __init__(self, adc: Any, offset: float, gain: float):
        self._adc = adc
        self._offset = offset
        self._gain = gain

    def __getattr__(self, name: str) -> Any:
        return getattr(self._adc, name)

    def quantize_counts(self, counts: np.ndarray, max_counts: float) -> np.ndarray:
        counts = apply_adc_errors(
            counts,
            gain=self._gain,
            offset=self._offset,
            max_counts=float(max_counts),
        )
        return self._adc.quantize_counts(counts, max_counts)


@contextmanager
def degraded_execution(run_config: Any, degradation: Degradation):
    """Temporarily degrade an engine's shared run configuration.

    Swaps the config's ADC for a :class:`_DriftedAdc` and raises the
    bit-line noise sigma (in quadrature) for the duration of one
    execution, under the global degrade lock — every tile macro of the
    engine references this one config object, so the swap reaches all
    of them, and the lock keeps concurrent clean runs on other threads
    from ever observing the degraded parameters mid-matmul.
    """
    from dataclasses import replace

    with _DEGRADE_LOCK:
        saved_adc = run_config.adc
        saved_bitline = run_config.bitline
        run_config.adc = _DriftedAdc(
            saved_adc, degradation.adc_offset, degradation.adc_gain
        )
        if degradation.noise_sigma_counts > 0.0:
            run_config.bitline = replace(
                saved_bitline,
                noise_sigma_counts=float(
                    np.hypot(
                        saved_bitline.noise_sigma_counts,
                        degradation.noise_sigma_counts,
                    )
                ),
            )
        try:
            yield
        finally:
            run_config.adc = saved_adc
            run_config.bitline = saved_bitline


class _DegradedLinear:
    """``ProgrammedLinear.execute`` routed through the degraded macro path.

    Replicates the engine's execute pipeline (activation quantization,
    scale recombination) bit for bit, but always runs the tiled macro
    reference — never the exact kernel — inside a
    :func:`degraded_execution` window, so the bit-line observation and
    ADC conversion see the degraded circuit.
    """

    __slots__ = ("_engine", "_degradation")

    def __init__(self, engine: Any, degradation: Degradation):
        self._engine = engine
        self._degradation = degradation

    def execute(self, x, rng=None, encoding=None):
        engine = self._engine
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != engine.in_features:
            raise ValueError(
                f"expected input (N, {engine.in_features}), got {x.shape}"
            )
        if not engine.signed_inputs and x.size and bool((x < 0).any()):
            raise ValueError(
                "engine is programmed for unsigned activations but the "
                "input carries negative values; program a signed-input "
                "engine for this layer"
            )
        act_spec = QuantSpec(bits=engine.activation_bits, signed=engine.signed_inputs)
        x_codes, x_scale = quantize(x, act_spec)
        rng = rng if rng is not None else np.random.default_rng()
        with degraded_execution(engine.run_config, self._degradation):
            y_codes, stats = engine.engine.matmul(
                x_codes.T, encoding=encoding, rng=rng
            )
        scale = float(x_scale) * engine.w_scale.reshape(-1, 1)
        return (y_codes * scale).T, stats


class _DegradedConv:
    """``ProgrammedConv.execute_patches`` over a degraded linear core."""

    __slots__ = ("_engine", "_linear")

    def __init__(self, engine: Any, degradation: Degradation):
        self._engine = engine
        self._linear = _DegradedLinear(engine.linear, degradation)

    def execute_patches(self, patches, n_samples, out_hw, rng=None, encoding=None):
        out_h, out_w = out_hw
        flat, stats = self._linear.execute(patches, rng=rng, encoding=encoding)
        oc = self._engine.out_channels
        out = flat.reshape(n_samples, out_h * out_w, oc).transpose(0, 2, 1)
        return out.reshape(n_samples, oc, out_h, out_w), stats


class ChaosController:
    """Deterministic firing engine for one chaos campaign.

    Built once per campaign from a :class:`FaultSchedule`; threaded
    through :func:`repro.chaos.stream.run_chaos_stream` and
    :class:`repro.serve.InferenceServer`.  No-op events (zero-magnitude
    degradations, unit-factor link windows) are filtered at
    construction, so a zero-magnitude schedule leaves the controller
    *inert*: every hot-path query answers "no fault" and the
    instrumented run is bitwise identical to a clean one.

    ``store`` + ``artifact_key_fn(n_shards)`` enable warm failover
    restores from the ``.rcma`` artifact store; ``input_shape`` feeds
    the failover re-plan's MAC balancing; ``recovery_hook(record)`` is
    a test seam invoked after each completed failover, before displaced
    work is replayed or requeued.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        store: Any = None,
        artifact_key_fn: Optional[Callable[[int], str]] = None,
        input_shape: Optional[Tuple[int, ...]] = None,
        recovery_hook: Optional[Callable[[Any], None]] = None,
    ):
        self.schedule = schedule.normalized()
        self.store = store
        self.artifact_key_fn = artifact_key_fn
        self.input_shape = input_shape
        self.recovery_hook = recovery_hook
        # Positions index into the normalized schedule; duplicate events
        # stay distinct (each fires independently).
        active = tuple(
            (pos, e)
            for pos, e in enumerate(self.schedule.events)
            if not e.is_noop
        )
        self._deaths: Tuple[Tuple[int, FaultEvent], ...] = tuple(
            (pos, e) for pos, e in active if e.kind == SHARD_DEATH
        )
        self._degradations: Tuple[Tuple[int, FaultEvent], ...] = tuple(
            (pos, e) for pos, e in active if e.kind in DEGRADATION_KINDS
        )
        self._links: Tuple[Tuple[int, FaultEvent], ...] = tuple(
            (pos, e) for pos, e in active if e.kind == LINK_DEGRADE
        )
        self._lock = threading.Lock()
        #: (event position, shard key) -> index the window opened at
        #: (memo for chip-time-fired windows; index-fired windows need none).
        self._opened_at: Dict[Tuple[int, Optional[int]], int] = {}
        #: event position -> (shard, index) a death fired at.
        self._death_fired: Dict[int, Tuple[Optional[int], int]] = {}
        self.recoveries: List[Any] = []

    @property
    def is_inert(self) -> bool:
        return not (self._deaths or self._degradations or self._links)

    @property
    def has_deaths(self) -> bool:
        return bool(self._deaths)

    # -- window bookkeeping --------------------------------------------
    def _window_start(
        self,
        pos: int,
        event: FaultEvent,
        shard: Optional[int],
        index: int,
        chip_ns: float,
    ) -> Optional[int]:
        """Index the event's window opened at for this shard, or None.

        Index-fired windows open at ``at_index`` unconditionally.
        Chip-time windows open at the first micro-batch whose
        pre-execution cumulative shard chip time reaches ``at_chip_ns``
        — memoized per (event, shard) so the window start is stable for
        the rest of the run.  Shards consume micro-batches in index
        order, so the memo is deterministic.
        """
        if event.at_index is not None:
            return event.at_index if index >= event.at_index else None
        key = (pos, shard)
        start = self._opened_at.get(key)
        if start is not None:
            return start
        if chip_ns >= event.at_chip_ns:
            with self._lock:
                start = self._opened_at.setdefault(key, index)
            return start
        return None

    @staticmethod
    def _targets(event: FaultEvent, shard: Optional[int]) -> bool:
        """Does the event apply at this shard key?

        ``shard=None`` is the server-side query (the whole model runs
        as one unit): every degradation matches.  In the stream, an
        event with ``shard=None`` degrades every shard.
        """
        return shard is None or event.shard is None or event.shard == shard

    # -- hot-path queries ----------------------------------------------
    def check_shard_death(
        self, shard: Optional[int], index: int, chip_ns: float
    ) -> Optional[FaultEvent]:
        """First unfired death due at this point, marking it fired.

        In the stream each shard asks for itself (``shard=s`` in the
        current topology; events naming a shard outside it are held
        until a topology where they fit).  The server asks with
        ``shard=None``: any pending death fires, and the event's shard
        names the casualty for the re-plan.
        """
        if not self._deaths:
            return None
        for pos, event in self._deaths:
            if shard is not None and event.shard != shard:
                continue
            due = (
                index >= event.at_index
                if event.at_index is not None
                else chip_ns >= event.at_chip_ns
            )
            if not due:
                continue
            with self._lock:
                if pos in self._death_fired:
                    continue
                self._death_fired[pos] = (shard, index)
            return event
        return None

    def degradation_at(
        self, index: int, chip_ns: float = 0.0, shard: Optional[int] = None
    ) -> Optional[Degradation]:
        """Combined analog degradation open at this micro-batch.

        Drift offsets add, gains compound, noise sigmas combine in
        quadrature across overlapping windows.  Drift ramps scale with
        window *age* (micro-batches since the window opened, starting
        at 1), the live analogue of a slowly drifting ADC corner.
        """
        if not self._degradations:
            return None
        offset = 0.0
        gain = 1.0
        var = 0.0
        for pos, event in self._degradations:
            if not self._targets(event, shard):
                continue
            start = self._window_start(pos, event, shard, index, chip_ns)
            if start is None:
                continue
            if event.duration is not None and index >= start + event.duration:
                continue
            age = index - start + 1
            if event.kind == ADC_DRIFT:
                offset += event.magnitude * age
                gain *= 1.0 + event.gain_slope * age
            else:  # BITLINE_NOISE
                var += event.magnitude**2
        if offset == 0.0 and gain == 1.0 and var == 0.0:
            return None
        return Degradation(
            noise_sigma_counts=float(np.sqrt(var)), adc_offset=offset, adc_gain=gain
        )

    def link_factors(
        self, shard: int, index: int, chip_ns: float = 0.0
    ) -> Tuple[float, float]:
        """(latency, energy) multipliers on the link leaving ``shard``."""
        if not self._links:
            return (1.0, 1.0)
        latency = 1.0
        energy = 1.0
        for pos, event in self._links:
            if event.shard != shard:
                continue
            start = self._window_start(pos, event, shard, index, chip_ns)
            if start is None:
                continue
            if event.duration is not None and index >= start + event.duration:
                continue
            latency *= event.latency_factor
            energy *= event.energy_factor
        return (latency, energy)

    # -- trace ----------------------------------------------------------
    def fired_records(self) -> List[Dict[str, Any]]:
        """Deterministically ordered record of every fired death.

        Sorted by (index, event position) — independent of thread
        interleaving, so it belongs in the deterministic trace digest.
        """
        with self._lock:
            records = [
                {
                    "event": self.schedule.events[pos].to_meta(),
                    "shard": shard,
                    "index": index,
                }
                for pos, (shard, index) in self._death_fired.items()
            ]
        records.sort(key=lambda r: (r["index"], r["event"].get("at_index", -1)))
        return records
