"""Typed, seeded, serializable fault schedules.

A :class:`FaultSchedule` is the unit of replay for the chaos runtime:
a seed plus a tuple of :class:`FaultEvent` records whose firing points
are expressed in **micro-batch index** (``at_index``) or **simulated
chip time** (``at_chip_ns``) — never wall time.  Two runs given the
same schedule fire the same faults at the same logical points, which
is what makes the differential witnesses in ``tests/test_chaos.py``
possible at all.

Fault taxonomy (docs/chaos.md):

``shard_death``
    The chiplet group backing one pipeline shard goes dark.  The
    runtime fails over: re-plan around the dead shard, warm-restore
    from the artifact store, replay displaced micro-batches.
``link_degrade``
    The SIMBA-style package link leaving a shard runs slow and hot:
    per-hop latency and energy are scaled by ``latency_factor`` /
    ``energy_factor`` while the window is open.
``adc_drift``
    SAR-ADC offset/gain drift ramps linearly with micro-batch age —
    the live analogue of :class:`repro.cim.variation.VariationModel`'s
    ``adc_offset_sigma``/``adc_gain_sigma`` corners.
``bitline_noise``
    A transient thermal/supply event raises the bit-line comparator
    noise sigma (in counts) for the window — routed through the
    existing :meth:`repro.cim.bitline.BitlineModel.observe` path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

SHARD_DEATH = "shard_death"
LINK_DEGRADE = "link_degrade"
ADC_DRIFT = "adc_drift"
BITLINE_NOISE = "bitline_noise"

FAULT_KINDS: Tuple[str, ...] = (
    SHARD_DEATH,
    LINK_DEGRADE,
    ADC_DRIFT,
    BITLINE_NOISE,
)

#: Kinds that perturb arithmetic rather than topology.
DEGRADATION_KINDS: Tuple[str, ...] = (ADC_DRIFT, BITLINE_NOISE)

_SCHEDULE_VERSION = 1


class ScheduleError(ValueError):
    """A fault event or schedule failed validation."""


@dataclass(frozen=True)
class FaultEvent:
    """One typed fault with a deterministic firing point.

    Exactly one of ``at_index`` (micro-batch index) or ``at_chip_ns``
    (cumulative simulated chip time on the target shard) must be set.
    ``duration`` bounds degradation windows in micro-batches; ``None``
    leaves the window open until the stream ends.  ``shard`` names the
    target pipeline shard; for degradations ``None`` means every shard.
    """

    kind: str
    shard: Optional[int] = None
    at_index: Optional[int] = None
    at_chip_ns: Optional[float] = None
    duration: Optional[int] = None
    #: bitline_noise: added noise sigma in counts (quadrature).
    #: adc_drift: offset-count ramp slope per micro-batch of age.
    magnitude: float = 0.0
    #: adc_drift only: relative gain ramp slope per micro-batch of age.
    gain_slope: float = 0.0
    #: link_degrade only: multipliers on per-hop link latency / energy.
    latency_factor: float = 1.0
    energy_factor: float = 1.0
    #: shard_death only: displaced micro-batches abandoned (not replayed).
    drop: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScheduleError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        has_index = self.at_index is not None
        has_chip = self.at_chip_ns is not None
        if has_index == has_chip:
            raise ScheduleError(
                f"{self.kind}: exactly one of at_index/at_chip_ns must be set"
            )
        if has_index and self.at_index < 0:
            raise ScheduleError(f"{self.kind}: at_index must be >= 0")
        if has_chip and not self.at_chip_ns >= 0.0:
            raise ScheduleError(f"{self.kind}: at_chip_ns must be >= 0")
        if self.duration is not None and self.duration < 1:
            raise ScheduleError(f"{self.kind}: duration must be >= 1")
        if self.magnitude < 0.0:
            raise ScheduleError(f"{self.kind}: magnitude must be >= 0")
        if self.latency_factor <= 0.0 or self.energy_factor <= 0.0:
            raise ScheduleError(f"{self.kind}: link factors must be > 0")
        if self.drop < 0:
            raise ScheduleError(f"{self.kind}: drop must be >= 0")
        if self.kind in (SHARD_DEATH, LINK_DEGRADE) and self.shard is None:
            raise ScheduleError(f"{self.kind}: shard is required")
        if self.kind != SHARD_DEATH and self.drop:
            raise ScheduleError(f"{self.kind}: drop applies only to shard_death")
        if self.shard is not None and self.shard < 0:
            raise ScheduleError(f"{self.kind}: shard must be >= 0")

    @property
    def is_noop(self) -> bool:
        """True when firing this event cannot change any output bit."""
        if self.kind == SHARD_DEATH:
            return False
        if self.kind == LINK_DEGRADE:
            # Link degradation rescales simulated latency/energy stats but
            # never arithmetic; a unit-factor window is a strict no-op.
            return self.latency_factor == 1.0 and self.energy_factor == 1.0
        if self.kind == ADC_DRIFT:
            return self.magnitude == 0.0 and self.gain_slope == 0.0
        return self.magnitude == 0.0  # BITLINE_NOISE

    def firing_key(self) -> Tuple[int, float]:
        """Deterministic sort key: index-fired events before chip-time ones."""
        if self.at_index is not None:
            return (0, float(self.at_index))
        return (1, float(self.at_chip_ns))

    def to_meta(self) -> Dict[str, Any]:
        meta: Dict[str, Any] = {"kind": self.kind}
        for name in (
            "shard",
            "at_index",
            "at_chip_ns",
            "duration",
            "magnitude",
            "gain_slope",
            "latency_factor",
            "energy_factor",
            "drop",
            "label",
        ):
            value = getattr(self, name)
            default = type(self).__dataclass_fields__[name].default
            if value != default:
                meta[name] = value
        return meta

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "FaultEvent":
        known = set(cls.__dataclass_fields__)
        unknown = set(meta) - known
        if unknown:
            raise ScheduleError(f"unknown fault event fields: {sorted(unknown)}")
        return cls(**meta)


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, replayable campaign: what fails, where, and when.

    ``seed`` feeds every stochastic degradation draw (bit-line noise
    samples) through the same indexed-seed discipline as
    :func:`repro.runtime.stream_rng`, so chaos runs are bitwise
    replayable regardless of thread interleaving.
    """

    seed: int = 0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_noop(self) -> bool:
        return all(event.is_noop for event in self.events)

    def normalized(self) -> "FaultSchedule":
        """Events stably sorted by firing point.

        The sort is *stable*: events sharing a firing key keep their
        original relative order, so normalization is idempotent and
        insertion-order ties are preserved (a property-tested
        invariant).
        """
        ordered = tuple(sorted(self.events, key=FaultEvent.firing_key))
        if ordered == self.events:
            return self
        return replace(self, events=ordered)

    def for_kinds(self, kinds: Iterable[str]) -> Tuple[FaultEvent, ...]:
        wanted = set(kinds)
        return tuple(e for e in self.events if e.kind in wanted)

    def to_meta(self) -> Dict[str, Any]:
        return {
            "version": _SCHEDULE_VERSION,
            "seed": self.seed,
            "events": [event.to_meta() for event in self.events],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_meta(), indent=indent, sort_keys=True)

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "FaultSchedule":
        version = meta.get("version", _SCHEDULE_VERSION)
        if version != _SCHEDULE_VERSION:
            raise ScheduleError(
                f"unsupported schedule version {version!r} "
                f"(this runtime reads version {_SCHEDULE_VERSION})"
            )
        events = tuple(FaultEvent.from_meta(e) for e in meta.get("events", []))
        return cls(seed=int(meta.get("seed", 0)), events=events)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            meta = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"schedule is not valid JSON: {exc}") from exc
        if not isinstance(meta, dict):
            raise ScheduleError("schedule JSON must be an object")
        return cls.from_meta(meta)


def generate_schedule(
    seed: int,
    *,
    n_batches: int,
    n_shards: int,
    n_events: int = 4,
    kinds: Sequence[str] = DEGRADATION_KINDS,
    max_magnitude: float = 2.0,
) -> FaultSchedule:
    """Draw a random, already-normalized schedule from a seed.

    Firing points are drawn sorted, so generated schedules are
    monotone in ``at_index`` — the property pinned in
    ``tests/test_properties.py``.  Only index-fired events are
    generated (chip-time events are written by hand or by campaigns
    that know the latency profile).
    """
    if n_batches < 1 or n_shards < 1:
        raise ScheduleError("n_batches and n_shards must be >= 1")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ScheduleError(f"unknown fault kind {kind!r}")
    rng = np.random.default_rng([seed, n_batches, n_shards])
    indexes = np.sort(rng.integers(0, n_batches, size=n_events))
    events = []
    for at_index in indexes:
        kind = str(rng.choice(list(kinds)))
        duration = int(rng.integers(1, max(2, n_batches // 2)))
        magnitude = float(rng.uniform(0.0, max_magnitude))
        if kind == SHARD_DEATH:
            events.append(
                FaultEvent(
                    kind=kind,
                    shard=int(rng.integers(0, n_shards)),
                    at_index=int(at_index),
                    drop=int(rng.integers(0, 3)),
                )
            )
        elif kind == LINK_DEGRADE:
            events.append(
                FaultEvent(
                    kind=kind,
                    shard=int(rng.integers(0, n_shards)),
                    at_index=int(at_index),
                    duration=duration,
                    latency_factor=float(rng.uniform(1.0, 4.0)),
                    energy_factor=float(rng.uniform(1.0, 2.0)),
                )
            )
        elif kind == ADC_DRIFT:
            events.append(
                FaultEvent(
                    kind=kind,
                    shard=None if rng.integers(0, 2) else int(rng.integers(0, n_shards)),
                    at_index=int(at_index),
                    duration=duration,
                    magnitude=magnitude,
                    gain_slope=float(rng.uniform(0.0, 0.05)),
                )
            )
        else:  # BITLINE_NOISE
            events.append(
                FaultEvent(
                    kind=kind,
                    shard=None if rng.integers(0, 2) else int(rng.integers(0, n_shards)),
                    at_index=int(at_index),
                    duration=duration,
                    magnitude=magnitude,
                )
            )
    return FaultSchedule(seed=seed, events=tuple(events)).normalized()
