"""Typed requests, results and completion handles of the serve layer.

Every interaction with the server produces an :class:`InferenceResult`
with an explicit :class:`RequestStatus` — admission-control rejections
(full queue, per-tenant cap, unknown model) come back as typed results,
never as exceptions, so a load generator or client can count them
without exception plumbing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.cim.macro import MacroStats


class RequestStatus(Enum):
    """Terminal state of one inference request."""

    COMPLETED = "completed"
    REJECTED_QUEUE_FULL = "rejected_queue_full"
    REJECTED_TENANT_LIMIT = "rejected_tenant_limit"
    REJECTED_UNKNOWN_MODEL = "rejected_unknown_model"
    REJECTED_SHUTTING_DOWN = "rejected_shutting_down"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def rejected(self) -> bool:
        return self in (
            RequestStatus.REJECTED_QUEUE_FULL,
            RequestStatus.REJECTED_TENANT_LIMIT,
            RequestStatus.REJECTED_UNKNOWN_MODEL,
            RequestStatus.REJECTED_SHUTTING_DOWN,
        )


@dataclass
class InferenceResult:
    """Terminal outcome of one request.

    ``stats`` is this request's proportional share (by sample count) of
    the executed batch's :class:`~repro.cim.macro.MacroStats`;
    ``batch_seq`` / ``batch_samples`` identify the dynamic batch the
    request was coalesced into (``-1`` / ``0`` when it never executed).
    """

    status: RequestStatus
    request_id: int
    tenant: str
    model: str
    output: Optional[np.ndarray] = None
    stats: Optional[MacroStats] = None
    error: Optional[str] = None
    batch_seq: int = -1
    batch_samples: int = 0
    queued_s: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.COMPLETED


@dataclass
class InferenceRequest:
    """One unit of admitted work: a small activation batch for a model.

    ``x`` keeps the caller's leading batch dimension (a single-sample
    request has ``x.shape[0] == 1``); the scheduler counts samples, not
    requests, against ``BatchPolicy.max_batch_size``.
    """

    request_id: int
    tenant: str
    model: str
    x: np.ndarray
    submitted_at: float
    seq: int = 0  # arrival order, assigned by the queue

    @property
    def n_samples(self) -> int:
        return int(self.x.shape[0])


class RequestHandle:
    """Waitable completion handle returned by ``InferenceServer.submit``.

    Rejected submissions return an already-completed handle, so callers
    always deal with one type.
    """

    def __init__(self, request: Optional[InferenceRequest] = None):
        self.request = request
        self._done = threading.Event()
        self._result: Optional[InferenceResult] = None

    def _complete(self, result: InferenceResult) -> None:
        self._result = result
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> InferenceResult:
        """Block until the request reaches a terminal state."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id if self.request else '?'} "
                f"did not complete within {timeout} s"
            )
        assert self._result is not None
        return self._result

    @staticmethod
    def completed(result: InferenceResult) -> "RequestHandle":
        handle = RequestHandle()
        handle._complete(result)
        return handle
