"""Named-model registry: compile once, serve under a stable name.

The registry is the serving analogue of mask-time programming: a model
is registered (compiled) once and every request afterwards only names
it.  Registration routes through :func:`repro.runtime.compile` with a
shared :class:`~repro.runtime.cache.EngineCache`, so re-registering the
same weights — or registering them under a second name — reuses the
programmed engines instead of rebuilding them.  With a persistent
:class:`~repro.runtime.ArtifactStore` (``register(..., store=...)``)
the once extends across processes: registration warm-starts from a
content-addressed artifact when one exists and writes one back when it
compiled (see docs/snapshots.md).

Registration and eviction are thread-safe and legal while the server is
draining traffic: a :class:`CompiledModel` is immutable from the serve
layer's point of view, so batches already executing keep the compiled
image they resolved, while queued and new requests see the updated
entry at execution time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import nn
from repro.obs.log import get_logger
from repro.runtime import (
    ArtifactStore,
    CompiledModel,
    EngineCache,
    RuntimeConfig,
    ShardedModel,
    compile_model,
    resolve_cache,
    shard as shard_compiled,
)
from repro.runtime import snapshot


_log = get_logger("serve.registry")


class UnknownModelError(KeyError):
    """Request names a model the registry does not hold."""


@dataclass
class RegisteredModel:
    """One registry entry: the compiled image plus registration metadata.

    ``compiled`` is a :class:`~repro.runtime.CompiledModel` or, for a
    sharded deployment, a :class:`~repro.runtime.ShardedModel` — the
    server only needs the shared ``run(batch, rng=...)`` surface.

    ``warm_start`` records whether the image was restored from a
    persisted artifact instead of compiled from scratch (in which case
    ``compile_ms`` is the artifact load time), and ``artifact_key`` the
    content address used, when registration went through a store.
    """

    name: str
    compiled: CompiledModel
    registered_at: float
    compile_ms: float
    generation: int  # bumped on hot re-registration under the same name
    warm_start: bool = False
    artifact_key: Optional[str] = None

    @property
    def n_weight_layers(self) -> int:
        return self.compiled.n_weight_layers

    @property
    def n_shards(self) -> int:
        """Chiplet shards of the deployment (1 for a monolithic image)."""
        return (
            self.compiled.n_shards
            if isinstance(self.compiled, ShardedModel)
            else 1
        )


class ModelRegistry:
    """Thread-safe name -> :class:`CompiledModel` mapping.

    ``cache`` defaults to the process-wide engine cache so independent
    registries (and the functional paths) share programmed engines.
    """

    def __init__(self, cache: Optional[EngineCache] = None):
        self.cache = resolve_cache(cache)
        self._lock = threading.RLock()
        self._entries: Dict[str, RegisteredModel] = {}

    def register(
        self,
        name: str,
        model: nn.Module,
        config: Optional[RuntimeConfig] = None,
        *,
        replace: bool = False,
        shards: Optional[int] = None,
        link=None,
        shard_input_shape=None,
        store: Optional[ArtifactStore] = None,
    ) -> RegisteredModel:
        """Compile ``model`` and serve it as ``name``.

        Hot re-registration (``replace=True``) swaps the entry in one
        assignment.  The server resolves the entry when a batch starts
        executing, so batches already executing finish on the previous
        generation, while queued and new requests run on the new one.

        ``shards`` (when given, >= 1) registers a sharded deployment:
        the compiled plan is partitioned across that many simulated
        chiplets (optionally over ``link`` / balanced for
        ``shard_input_shape``), and every executed batch crosses the
        shard boundaries with link energy charged into the tenants'
        sessions (``shards=1``: a single-shard deployment, no
        crossings).  Numerics are unchanged — a sharded run is bitwise
        identical to the monolithic one.

        ``store`` (an :class:`~repro.runtime.ArtifactStore`) warm-starts
        registration: the content key of ``(model weights, config,
        shard request)`` is looked up first, and a hit restores the
        programmed image — bitwise identical, much faster than
        compiling — while a miss compiles and writes the artifact back
        so the *next* registration (any process) warm-starts.  A
        damaged or incompatible artifact degrades to a cold compile;
        the store can never make registration fail.
        """
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                raise ValueError(
                    f"model {name!r} is already registered; "
                    f"pass replace=True to hot-swap it"
                )
        # Compile (or warm-start) outside the lock: programming can be
        # expensive and must not stall lookups from the serving hot path.
        key: Optional[str] = None
        compiled = None
        warm = False
        start = time.perf_counter()
        if store is not None:
            try:
                key = snapshot.artifact_key(
                    model, config, shards=shards, link=link,
                    input_shape=shard_input_shape,
                )
            except snapshot.SnapshotError:
                # The artifact format cannot address this registration
                # (e.g. a custom encoding): skip the store entirely —
                # it must never make a registration fail.
                key = None
            try:
                if key is not None:
                    compiled = snapshot.load(store, key, cache=self.cache)
                    warm = True
            except snapshot.SnapshotKeyError:
                pass  # first registration of this triple: compile below
            except snapshot.SnapshotError:
                # Damaged / stale / version-mismatched artifact: serve
                # from a cold compile (and overwrite it below).
                compiled = None
        if compiled is None:
            compiled = compile_model(model, config, cache=self.cache)
            if shards is not None:
                compiled = shard_compiled(
                    compiled, shards, link=link, input_shape=shard_input_shape
                )
            if store is not None and key is not None:
                try:
                    snapshot.save(compiled, store, key=key)
                except (snapshot.SnapshotError, OSError):
                    pass  # write-back is best-effort; serving comes first
        compile_ms = (time.perf_counter() - start) * 1000.0
        _log.debug(
            "registered %r: %s in %.1f ms",
            name,
            "warm-start from artifact" if warm else "cold compile",
            compile_ms,
        )
        with self._lock:
            previous = self._entries.get(name)
            if previous is not None and not replace:
                # A concurrent register won the name while we compiled;
                # without replace the loser must not silently overwrite.
                raise ValueError(
                    f"model {name!r} is already registered; "
                    f"pass replace=True to hot-swap it"
                )
            entry = RegisteredModel(
                name=name,
                compiled=compiled,
                registered_at=time.time(),
                compile_ms=compile_ms,
                generation=(previous.generation + 1) if previous else 0,
                warm_start=warm,
                artifact_key=key,
            )
            self._entries[name] = entry
            return entry

    def swap_compiled(self, name: str, compiled: CompiledModel) -> RegisteredModel:
        """Replace ``name``'s compiled image in place (failover path).

        Unlike :meth:`register` this swaps an already-built image —
        e.g. a deployment re-planned around a dead shard — without
        recompiling.  The generation is bumped so observers can tell a
        recovered entry from the original registration.
        """
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                raise UnknownModelError(name) from None
            entry.compiled = compiled
            entry.generation += 1
        _log.debug("swapped %r image (generation %d)", name, entry.generation)
        return entry

    def evict(self, name: str) -> RegisteredModel:
        """Drop ``name``; its engines stay in the LRU cache until evicted
        there, so a prompt re-registration is cheap."""
        with self._lock:
            try:
                entry = self._entries.pop(name)
            except KeyError:
                raise UnknownModelError(name) from None
        _log.debug("evicted %r (generation %d)", name, entry.generation)
        return entry

    def get(self, name: str) -> CompiledModel:
        return self.entry(name).compiled

    def entry(self, name: str) -> RegisteredModel:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise UnknownModelError(name) from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def rows(self) -> List[Tuple]:
        """``(name, layers, generation, compile_ms)`` per entry, for reports."""
        with self._lock:
            return [
                (e.name, e.n_weight_layers, e.generation, round(e.compile_ms, 1))
                for e in self._entries.values()
            ]
