"""Multi-tenant dynamic-batching inference serving over ``repro.runtime``.

The YOLoC chip's economics are amortization: weights are programmed
once (at mask time; in software, :func:`repro.runtime.compile`) and
every inference afterwards only streams activations.  This package is
the traffic layer that completes the picture — it takes many
independent, differently-sized requests from many tenants and turns
them into efficient batched execution on compiled models:

* :class:`ModelRegistry` — compile-and-cache named models (sharing the
  runtime's :class:`~repro.runtime.EngineCache`), hot registration,
  hot swap, eviction; ``register(..., shards=n)`` serves a
  chiplet-sharded deployment (:mod:`repro.runtime.sharded`) with link
  energy folded into tenant accounting.
* :class:`BatchPolicy` / :class:`RequestQueue` — bounded admission
  (typed rejects for backpressure), per-tenant round-robin fairness,
  and dynamic micro-batching under ``max_batch_size`` / ``max_wait_s``.
* :class:`InferenceServer` — a thread worker pool draining the queue
  into :meth:`CompiledModel.run` (the numpy kernels release the GIL),
  with one lock-guarded :class:`~repro.runtime.ExecutionSession` per
  tenant.
* :class:`ServerMetrics` — rolling throughput, p50/p95/p99 latency,
  queue depth, batch-size histogram, per-tenant energy per sample.
* :class:`LoadGenerator` — seeded Poisson traffic over mixed
  tenants/models, driving the ``repro serve`` CLI command and the
  serving benchmarks.

Numerics contract: each executed batch is one ``CompiledModel.run``
call, bitwise-identical to ``runtime.reference_forward`` over the same
coalesced inputs.  Activation quantization is batch-global (seed
semantics), so the executed batch is the unit of numerical identity;
run with ``max_batch_size=1`` when per-request numerics must be pinned.
"""

from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    RequestHandle,
    RequestStatus,
)
from repro.serve.registry import ModelRegistry, RegisteredModel, UnknownModelError
from repro.serve.scheduler import BatchPolicy, RequestQueue
from repro.serve.metrics import (
    MetricsSnapshot,
    ServerMetrics,
    TenantMetrics,
    fraction_of_stats,
    percentile,
)
from repro.serve.server import ExecutedBatch, InferenceServer
from repro.serve.loadgen import LoadGenerator, LoadReport, LoadSpec, TenantLoadReport

__all__ = [
    "InferenceRequest",
    "InferenceResult",
    "RequestHandle",
    "RequestStatus",
    "ModelRegistry",
    "RegisteredModel",
    "UnknownModelError",
    "BatchPolicy",
    "RequestQueue",
    "MetricsSnapshot",
    "ServerMetrics",
    "TenantMetrics",
    "fraction_of_stats",
    "percentile",
    "ExecutedBatch",
    "InferenceServer",
    "LoadGenerator",
    "LoadReport",
    "LoadSpec",
    "TenantLoadReport",
]
