"""Dynamic micro-batching: turn request traffic into batched execution.

The ROM-CiM macros amortize over batch extent (one bit-plane
extraction, one fused count GEMM and one ADC gather per call, whatever
the batch size), so a server that executes every request alone wastes
most of what the compile-once runtime bought.  The
:class:`RequestQueue` here coalesces admitted requests into dynamic
batches under a :class:`BatchPolicy`:

* a batch closes as soon as ``max_batch_size`` samples are pending for
  one model, or once the oldest pending request has waited
  ``max_wait_s`` — latency-bounded batching;
* requests are drawn round-robin across tenants, so a flooding tenant
  cannot starve a light one out of the next batch (weighted fair
  queuing degenerates to this for equal weights);
* admission is bounded: ``max_queue_depth`` samples overall and
  optionally ``max_pending_per_tenant``, with rejects surfaced as typed
  results by the server — backpressure, not unbounded buffering.

Batches never mix models (they execute on one compiled image), but they
freely mix tenants; the server splits the executed batch's stats back
per tenant.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.obs import trace
from repro.serve.requests import InferenceRequest


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing and admission-control policy of one server.

    Sample-counting: ``max_batch_size`` and ``max_queue_depth`` count
    *samples* (a multi-sample request occupies its ``x.shape[0]``), so
    the policy bounds actual work, not request objects.

    Fields
    ------
    ``max_batch_size``
        Close a model's batch as soon as this many samples are pending
        for it.  ``1`` disables coalescing — the per-request baseline
        regime, which also pins per-request numerics exactly (see
        docs/numerics.md).  A single request larger than the budget
        still executes, alone.
    ``max_wait_s``
        Latency bound on batching: a batch also closes once its oldest
        request has waited this long, whatever has arrived by then.
        ``0`` releases immediately (batching only coalesces what is
        simultaneously pending).
    ``max_queue_depth``
        Bounded admission across all models, in samples.  A full queue
        refuses with ``REJECTED_QUEUE_FULL`` (typed backpressure), never
        buffers without bound.
    ``max_pending_per_tenant``
        Optional per-tenant admission cap, in samples
        (``REJECTED_TENANT_LIMIT``): one tenant cannot occupy the whole
        queue.  ``None`` disables the cap.
    """

    max_batch_size: int = 16
    max_wait_s: float = 0.002
    max_queue_depth: int = 256
    max_pending_per_tenant: Optional[int] = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s cannot be negative, got {self.max_wait_s}")


class _ModelLane:
    """Pending requests of one model, fair-queued across tenants."""

    __slots__ = ("model", "tenants", "rotation", "samples", "head_seq")

    def __init__(self, model: str):
        self.model = model
        self.tenants: Dict[str, Deque[InferenceRequest]] = {}
        self.rotation: Deque[str] = deque()
        self.samples = 0
        self.head_seq = 0  # arrival seq of the oldest pending request

    def push(self, request: InferenceRequest) -> None:
        pending = self.tenants.get(request.tenant)
        if pending is None:
            pending = self.tenants[request.tenant] = deque()
            self.rotation.append(request.tenant)
        pending.append(request)
        self.samples += request.n_samples

    def oldest(self) -> InferenceRequest:
        return min(
            (pending[0] for pending in self.tenants.values() if pending),
            key=lambda r: r.seq,
        )

    def draw(self, max_samples: int) -> List[InferenceRequest]:
        """Round-robin across tenants until the sample budget is filled.

        Always yields at least one request, so a single request larger
        than ``max_samples`` still executes (alone) rather than starving.
        """
        batch: List[InferenceRequest] = []
        drawn = 0
        while self.rotation:
            tenant = self.rotation[0]
            pending = self.tenants[tenant]
            request = pending[0]
            if batch and drawn + request.n_samples > max_samples:
                break
            pending.popleft()
            batch.append(request)
            drawn += request.n_samples
            self.samples -= request.n_samples
            # Rotate: next tenant gets the next slot.  Drop drained lanes.
            self.rotation.popleft()
            if pending:
                self.rotation.append(tenant)
            else:
                del self.tenants[tenant]
            if drawn >= max_samples:
                break
        return batch

    @property
    def empty(self) -> bool:
        return not self.tenants


class RequestQueue:
    """Bounded, tenant-fair request queue with dynamic batch formation.

    ``offer`` is the admission side (non-blocking, returns an admission
    verdict); ``next_batch`` is the worker side (blocks until a batch is
    ready under the policy, or the queue closes).
    """

    OK = "ok"
    FULL = "full"
    TENANT_LIMIT = "tenant_limit"
    CLOSED = "closed"

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._lanes: "OrderedDict[str, _ModelLane]" = OrderedDict()
        self._depth = 0  # admitted samples not yet drawn into a batch
        self._tenant_pending: Dict[str, int] = {}
        self._seq = 0
        self._closed = False
        self._flush_on_close = True

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`close` has run (event-based, no polling).

        ``close`` notifies the queue's condition variable, so this is a
        real synchronization point — used by shutdown tests that must
        order "the queue is closed" against a blocked worker without
        sleeping.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while not self._closed:
                wait = None
                if deadline is not None:
                    wait = deadline - time.monotonic()
                    if wait <= 0:
                        return False
                self._ready.wait(wait)
            return True

    def offer(self, request: InferenceRequest) -> str:
        """Admit ``request`` or return a typed refusal reason."""
        policy = self.policy
        with self._lock:
            if self._closed:
                return self.CLOSED
            if self._depth + request.n_samples > policy.max_queue_depth:
                return self.FULL
            if policy.max_pending_per_tenant is not None:
                pending = self._tenant_pending.get(request.tenant, 0)
                if pending + request.n_samples > policy.max_pending_per_tenant:
                    return self.TENANT_LIMIT
            request.seq = self._seq
            self._seq += 1
            lane = self._lanes.get(request.model)
            if lane is None:
                lane = self._lanes[request.model] = _ModelLane(request.model)
            if lane.empty:
                lane.head_seq = request.seq
            lane.push(request)
            self._depth += request.n_samples
            self._tenant_pending[request.tenant] = (
                self._tenant_pending.get(request.tenant, 0) + request.n_samples
            )
            self._ready.notify()
            return self.OK

    def _pick_lane(self) -> Optional[_ModelLane]:
        """The non-empty lane holding the globally oldest request."""
        best = None
        for lane in self._lanes.values():
            if lane.empty:
                continue
            if best is None or lane.head_seq < best.head_seq:
                best = lane
        return best

    def _pick_releasable(self, now: float) -> Optional[_ModelLane]:
        """The oldest lane whose batch can close *now* — full, aged past
        ``max_wait_s``, or flushing a closed queue.  Checked across every
        lane so one model's young partial lane cannot head-of-line block
        another model's already-full batch."""
        policy = self.policy
        flushing = self._closed and self._flush_on_close
        best = None
        for lane in self._lanes.values():
            if lane.empty:
                continue
            if not (
                flushing
                or lane.samples >= policy.max_batch_size
                or now - lane.oldest().submitted_at >= policy.max_wait_s
            ):
                continue
            if best is None or lane.head_seq < best.head_seq:
                best = lane
        return best

    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[InferenceRequest]]:
        """Block until a dynamic batch is ready; None on close/timeout.

        A batch is released when its lane holds ``max_batch_size``
        pending samples, or when the lane's oldest request has aged past
        ``max_wait_s`` (whatever has arrived by then executes together).
        """
        policy = self.policy
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._ready:
            while True:
                if self._closed and not self._flush_on_close:
                    # Cancelling shutdown: leave pending work for
                    # drain_remaining instead of executing it.
                    return None
                now = time.monotonic()
                lane = self._pick_releasable(now)
                if lane is not None:
                    return self._draw(lane)
                oldest_lane = self._pick_lane()
                if oldest_lane is not None:
                    # The globally oldest request's deadline expires
                    # first, so it bounds the sleep for every lane.
                    age = now - oldest_lane.oldest().submitted_at
                    wait = policy.max_wait_s - age
                elif self._closed:
                    return None
                else:
                    wait = None
                if deadline is not None:
                    remaining = deadline - now
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._ready.wait(wait)

    def _draw(self, lane: _ModelLane) -> List[InferenceRequest]:
        batch = lane.draw(self.policy.max_batch_size)
        for request in batch:
            pending = self._tenant_pending.get(request.tenant, 0) - request.n_samples
            if pending > 0:
                self._tenant_pending[request.tenant] = pending
            else:
                self._tenant_pending.pop(request.tenant, None)
        self._depth -= sum(r.n_samples for r in batch)
        if lane.empty:
            # Drop drained lanes: model-name churn (versioned hot
            # registrations) must not grow the scan set forever.
            self._lanes.pop(lane.model, None)
        else:
            lane.head_seq = lane.oldest().seq
        # Wake another worker: more batches may already be formable.
        if self._depth:
            self._ready.notify()
        tracer = trace.current()
        if tracer is not None and batch:
            # Retroactive, duration-anchored: the coalescing window ran
            # on the monotonic clock (request.submitted_at), so anchor
            # its *duration* onto the tracer's perf_counter timeline
            # ending now — the two clocks share no epoch.
            window = time.monotonic() - min(r.submitted_at for r in batch)
            now = time.perf_counter()
            tracer.record(
                "coalesce",
                now - max(window, 0.0),
                now,
                "serve",
                model=batch[0].model,
                requests=len(batch),
                samples=sum(r.n_samples for r in batch),
            )
        return batch

    def requeue(self, batch: List[InferenceRequest]) -> bool:
        """Re-admit a drawn batch at the *front* of its lanes.

        Used by failover: a batch displaced by a shard death goes back
        to the head of the queue (original ``seq`` values are kept, so
        age ordering and ``head_seq`` bookkeeping stay consistent) and
        re-executes exactly once on the recovered model.

        Returns ``False`` during a cancelling shutdown
        (``close(flush=False)``): the caller must complete the batch as
        cancelled itself, because ``drain_remaining`` may already have
        run and anything re-inserted here would be stranded.
        """
        if not batch:
            return True
        with self._ready:
            if self._closed and not self._flush_on_close:
                return False
            for request in reversed(batch):
                lane = self._lanes.get(request.model)
                if lane is None:
                    lane = self._lanes[request.model] = _ModelLane(request.model)
                pending = lane.tenants.get(request.tenant)
                if pending is None:
                    pending = lane.tenants[request.tenant] = deque()
                    lane.rotation.appendleft(request.tenant)
                pending.appendleft(request)
                lane.samples += request.n_samples
                self._depth += request.n_samples
                self._tenant_pending[request.tenant] = (
                    self._tenant_pending.get(request.tenant, 0) + request.n_samples
                )
            for model in {r.model for r in batch}:
                lane = self._lanes[model]
                lane.head_seq = lane.oldest().seq
            self._ready.notify()
            return True

    def drain_remaining(self) -> List[InferenceRequest]:
        """Pop everything still pending (used at shutdown to cancel)."""
        with self._lock:
            remaining: List[InferenceRequest] = []
            for lane in self._lanes.values():
                while not lane.empty:
                    remaining.extend(lane.draw(self.policy.max_batch_size))
            self._lanes.clear()
            self._depth = 0
            self._tenant_pending.clear()
            remaining.sort(key=lambda r: r.seq)
            return remaining

    def close(self, flush: bool = True) -> None:
        """Stop admitting; wake every waiting worker.

        ``flush=True`` (draining shutdown) lets workers keep drawing
        until pending work is gone; ``flush=False`` (cancelling
        shutdown) makes ``next_batch`` return None immediately so
        everything pending is left for :meth:`drain_remaining`.
        """
        with self._ready:
            self._closed = True
            self._flush_on_close = self._flush_on_close and flush
            self._ready.notify_all()
