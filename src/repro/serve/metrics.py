"""Serving metrics: throughput, latency percentiles, batching, energy.

Everything here is O(1) per observation on the worker hot path — a ring
buffer for latencies, a timestamp deque for the rolling-throughput
window, a dict bump for the batch-size histogram — with aggregation
deferred to :meth:`ServerMetrics.snapshot`.  Energy per sample per
tenant comes from the tenants' :class:`~repro.runtime.ExecutionSession`
accumulators, which the server feeds with each request's proportional
share of its executed batch's :class:`~repro.cim.macro.MacroStats`
(computed by :func:`fraction_of_stats`).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cim.macro import MacroStats
from repro.obs.stats import LatencySummary, percentile  # noqa: F401  (re-export)

#: MacroStats fields that describe the batch's *shared* critical path —
#: every request coalesced into a batch experiences the full latency, so
#: these are carried through :func:`fraction_of_stats` unscaled.  Every
#: other field is additive activity and scales with the sample share;
#: a newly added field therefore scales by default and must be listed
#: here explicitly to opt out (``tests/test_obs.py`` guards the drift).
SHARED_STAT_FIELDS = frozenset({"latency_ns", "link_latency_ns"})


def fraction_of_stats(stats: MacroStats, numerator: int, denominator: int) -> MacroStats:
    """``numerator / denominator`` of a batch's stats, field by field.

    Used to attribute one executed batch's activity to the requests (and
    tenants) coalesced into it, proportionally to their sample counts.
    Count fields become fractional in general; they are accounting
    quantities, and per-tenant sums over a full batch stay exact.

    Fields are enumerated via ``dataclasses.fields(MacroStats)`` so a
    newly added field cannot be silently dropped: it either scales (the
    additive default) or sits in :data:`SHARED_STAT_FIELDS`.
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    f = numerator / denominator
    scaled = {}
    for fld in dataclasses.fields(MacroStats):
        value = getattr(stats, fld.name)
        scaled[fld.name] = value if fld.name in SHARED_STAT_FIELDS else value * f
    return MacroStats(**scaled)


@dataclass
class TenantMetrics:
    """Per-tenant aggregate of one snapshot."""

    tenant: str
    completed: int
    samples: int
    rejected: int
    failed: int
    cancelled: int
    energy_per_sample_fj: float
    macs_per_sample: float


@dataclass
class MetricsSnapshot:
    """Consistent point-in-time view of server activity."""

    submitted: int
    completed: int
    failed: int
    cancelled: int
    rejected: Dict[str, int]
    queue_depth: int
    batches: int
    batch_size_hist: Dict[int, int]
    throughput_rps: float
    throughput_sps: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_queued_s: float
    uptime_s: float = 0.0
    window_s: float = 0.0
    tenants: List[TenantMetrics] = field(default_factory=list)
    # Chaos / failover accounting.  Default-valued so snapshots built by
    # older call sites (and pickled fixtures) stay constructible.
    faults: Dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    recovery_dropped: int = 0
    recovery_replayed: int = 0
    mean_recovery_s: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(size * n for size, n in self.batch_size_hist.items())
        n_batches = sum(self.batch_size_hist.values())
        return total / n_batches if n_batches else 0.0

    @property
    def total_rejected(self) -> int:
        return sum(self.rejected.values())

    def rows(self) -> List[Tuple]:
        """``(metric, value)`` rows for ``experiments.common.format_table``."""
        return [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("rejected", self.total_rejected),
            ("failed", self.failed),
            ("cancelled", self.cancelled),
            ("queue_depth", self.queue_depth),
            ("batches", self.batches),
            ("mean_batch", round(self.mean_batch_size, 2)),
            ("throughput_rps", round(self.throughput_rps, 1)),
            ("throughput_sps", round(self.throughput_sps, 1)),
            ("p50_ms", round(self.p50_latency_s * 1e3, 3)),
            ("p95_ms", round(self.p95_latency_s * 1e3, 3)),
            ("p99_ms", round(self.p99_latency_s * 1e3, 3)),
            ("mean_queued_ms", round(self.mean_queued_s * 1e3, 3)),
            # Self-describing: a snapshot read in isolation states the
            # horizon its rates were computed over.
            ("uptime_s", round(self.uptime_s, 1)),
            ("window_s", round(self.window_s, 1)),
            ("faults", sum(self.faults.values())),
            ("recoveries", self.recoveries),
            ("recovery_dropped", self.recovery_dropped),
            ("recovery_replayed", self.recovery_replayed),
            ("mean_recovery_ms", round(self.mean_recovery_s * 1e3, 3)),
        ]

    def tenant_rows(self) -> List[Tuple]:
        return [
            (
                t.tenant,
                t.completed,
                t.samples,
                t.rejected,
                t.failed,
                t.cancelled,
                round(t.energy_per_sample_fj / 1e6, 3),  # nJ
                round(t.macs_per_sample / 1e6, 3),  # M MACs
            )
            for t in self.tenants
        ]


class ServerMetrics:
    """Thread-safe rolling metrics collector.

    ``window_s`` bounds the rolling-throughput horizon; ``history``
    bounds the latency ring buffer the percentiles are computed over.
    """

    def __init__(self, window_s: float = 60.0, history: int = 4096):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self._born = time.monotonic()
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=history)
        self._queued: Deque[float] = deque(maxlen=history)
        self._completions: Deque[Tuple[float, int, int]] = deque()  # (t, requests, samples)
        self._batch_size_hist: Dict[int, int] = {}
        self._rejected: Dict[str, int] = {}
        self._tenant_completed: Dict[str, int] = {}
        self._tenant_rejected: Dict[str, int] = {}
        self._tenant_failed: Dict[str, int] = {}
        self._tenant_cancelled: Dict[str, int] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self._faults: Dict[str, int] = {}
        self._recovery_wall_s: List[float] = []
        self.recovery_dropped = 0
        self.recovery_replayed = 0

    # -- hot-path observations ----------------------------------------
    def observe_submitted(self, n: int = 1) -> None:
        with self._lock:
            self.submitted += n

    def observe_rejected(self, reason: str, tenant: str) -> None:
        """Record a typed rejection (the submission itself is counted by
        ``observe_submitted``, which runs first for every request)."""
        with self._lock:
            self._rejected[reason] = self._rejected.get(reason, 0) + 1
            self._tenant_rejected[tenant] = self._tenant_rejected.get(tenant, 0) + 1

    def observe_batch(
        self,
        n_samples: int,
        latencies_s: List[float],
        queued_s: List[float],
        tenants: List[str],
        now: Optional[float] = None,
    ) -> None:
        """Record one executed batch and its per-request timings."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self.batches += 1
            self.completed += len(latencies_s)
            self._batch_size_hist[n_samples] = (
                self._batch_size_hist.get(n_samples, 0) + 1
            )
            self._latencies.extend(latencies_s)
            self._queued.extend(queued_s)
            self._completions.append((now, len(latencies_s), n_samples))
            for tenant in tenants:
                self._tenant_completed[tenant] = (
                    self._tenant_completed.get(tenant, 0) + 1
                )
            self._trim(now)

    def observe_failed(self, tenants: List[str]) -> None:
        with self._lock:
            self.failed += len(tenants)
            for tenant in tenants:
                self._tenant_failed[tenant] = self._tenant_failed.get(tenant, 0) + 1

    def observe_fault(self, kind: str) -> None:
        """Record one chaos fault firing (by fault kind)."""
        with self._lock:
            self._faults[kind] = self._faults.get(kind, 0) + 1

    def observe_recovery(
        self, wall_s: float, *, dropped: int = 0, replayed: int = 0
    ) -> None:
        """Record one completed failover: wall time and batch accounting."""
        with self._lock:
            self._recovery_wall_s.append(float(wall_s))
            self.recovery_dropped += dropped
            self.recovery_replayed += replayed

    def observe_cancelled(self, tenant: str) -> None:
        with self._lock:
            self.cancelled += 1
            self._tenant_cancelled[tenant] = (
                self._tenant_cancelled.get(tenant, 0) + 1
            )

    def _trim(self, now: float) -> None:
        horizon = now - self.window_s
        while self._completions and self._completions[0][0] < horizon:
            self._completions.popleft()

    # -- aggregation ---------------------------------------------------
    def snapshot(self, queue_depth: int = 0, sessions=None) -> MetricsSnapshot:
        """Aggregate a consistent snapshot.

        ``sessions`` is an optional ``{tenant: ExecutionSession}`` map
        (the server passes its own) feeding per-tenant energy rows.
        """
        now = time.monotonic()
        with self._lock:
            self._trim(now)
            lat = np.asarray(self._latencies, dtype=np.float64)
            queued = np.asarray(self._queued, dtype=np.float64)
            window_requests = sum(r for _, r, _ in self._completions)
            window_samples = sum(n for _, _, n in self._completions)
            # Rate over the collector's actual horizon, not the gap to
            # the first in-window completion: a lone recent completion
            # in a sparse window must not read as hundreds of req/s.
            span = min(self.window_s, max(now - self._born, 1e-9))
            summary = LatencySummary.of(lat)
            snapshot = MetricsSnapshot(
                submitted=self.submitted,
                completed=self.completed,
                failed=self.failed,
                cancelled=self.cancelled,
                rejected=dict(self._rejected),
                queue_depth=queue_depth,
                batches=self.batches,
                batch_size_hist=dict(self._batch_size_hist),
                throughput_rps=window_requests / span,
                throughput_sps=window_samples / span,
                p50_latency_s=summary.p50_s,
                p95_latency_s=summary.p95_s,
                p99_latency_s=summary.p99_s,
                mean_queued_s=float(queued.mean()) if queued.size else 0.0,
                uptime_s=now - self._born,
                window_s=self.window_s,
                faults=dict(self._faults),
                recoveries=len(self._recovery_wall_s),
                recovery_dropped=self.recovery_dropped,
                recovery_replayed=self.recovery_replayed,
                mean_recovery_s=(
                    float(np.mean(self._recovery_wall_s))
                    if self._recovery_wall_s
                    else 0.0
                ),
            )
            tenant_completed = dict(self._tenant_completed)
            tenant_rejected = dict(self._tenant_rejected)
            tenant_failed = dict(self._tenant_failed)
            tenant_cancelled = dict(self._tenant_cancelled)
        if sessions is not None:
            seen = (
                set(tenant_completed)
                | set(tenant_rejected)
                | set(tenant_failed)
                | set(tenant_cancelled)
            )
            for tenant in sorted(seen):
                session = sessions.get(tenant)
                stats, _, samples = (
                    session.snapshot() if session is not None else (None, 0, 0)
                )
                snapshot.tenants.append(
                    TenantMetrics(
                        tenant=tenant,
                        completed=tenant_completed.get(tenant, 0),
                        samples=samples,
                        rejected=tenant_rejected.get(tenant, 0),
                        failed=tenant_failed.get(tenant, 0),
                        cancelled=tenant_cancelled.get(tenant, 0),
                        energy_per_sample_fj=(
                            stats.total_energy_fj / samples if samples else 0.0
                        ),
                        macs_per_sample=stats.macs / samples if samples else 0.0,
                    )
                )
        return snapshot
