"""Synthetic serving traffic: Poisson arrivals over mixed tenants/models.

The north-star workload is many independent clients firing small
requests at shared models.  :class:`LoadGenerator` reproduces that
shape synthetically: exponential inter-arrival times at ``rate_rps``
(``None`` degenerates to a back-to-back burst — the throughput-limit
regime benchmarks use), tenants and models drawn from weighted mixes,
and inputs drawn from per-model sample pools.  Everything is seeded,
so a load run is reproducible arrival-for-arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.stats import LatencySummary
from repro.serve.requests import RequestHandle, RequestStatus
from repro.serve.server import InferenceServer


@dataclass(frozen=True)
class LoadSpec:
    """Shape of one synthetic load run.

    ``rate_rps=None`` submits with no pacing (closed burst); otherwise
    arrivals are Poisson at the given offered rate.  ``tenant_weights``
    and ``model_weights`` are relative draw probabilities.
    """

    n_requests: int = 64
    rate_rps: Optional[float] = None
    tenant_weights: Dict[str, float] = field(
        default_factory=lambda: {"default": 1.0}
    )
    model_weights: Optional[Dict[str, float]] = None  # None: uniform over pools
    samples_per_request: int = 1
    seed: int = 0
    result_timeout_s: float = 60.0

    def __post_init__(self):
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.samples_per_request < 1:
            raise ValueError(
                f"samples_per_request must be >= 1, got {self.samples_per_request}"
            )
        if not self.tenant_weights:
            raise ValueError("tenant_weights cannot be empty")


@dataclass
class TenantLoadReport:
    tenant: str
    submitted: int
    completed: int
    rejected: int
    failed: int


@dataclass
class LoadReport:
    """Outcome of one load run (client-side view)."""

    n_requests: int
    wall_s: float
    completed: int
    rejected: int
    failed: int
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    tenants: List[TenantLoadReport] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def rows(self) -> List[Tuple]:
        return [
            (
                t.tenant,
                t.submitted,
                t.completed,
                t.rejected,
                t.failed,
            )
            for t in self.tenants
        ]


class LoadGenerator:
    """Drives an :class:`InferenceServer` with seeded synthetic traffic.

    ``inputs`` maps model name -> a sample pool array ``(pool, ...)``;
    each request draws ``samples_per_request`` consecutive samples from
    the named model's pool (wrapping), so the full request stream is a
    pure function of the spec seed.
    """

    def __init__(
        self,
        server: InferenceServer,
        spec: LoadSpec,
        inputs: Dict[str, np.ndarray],
    ):
        if not inputs:
            raise ValueError("inputs cannot be empty")
        if spec.model_weights is not None:
            missing = sorted(set(spec.model_weights) - set(inputs))
            if missing:
                raise ValueError(
                    f"model_weights name models with no input pool: {missing}"
                )
        for name, pool in inputs.items():
            if pool.ndim < 2 or pool.shape[0] < spec.samples_per_request:
                raise ValueError(
                    f"input pool for {name!r} must hold at least "
                    f"{spec.samples_per_request} samples with a batch axis"
                )
        self.server = server
        self.spec = spec
        self.inputs = inputs

    def schedule(self) -> List[Tuple[float, str, str, np.ndarray]]:
        """The seeded arrival plan: ``(offset_s, tenant, model, x)``."""
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        tenants = sorted(spec.tenant_weights)
        t_weights = np.asarray([spec.tenant_weights[t] for t in tenants], dtype=float)
        t_weights = t_weights / t_weights.sum()
        if spec.model_weights is not None:
            models = sorted(spec.model_weights)
            m_weights = np.asarray(
                [spec.model_weights[m] for m in models], dtype=float
            )
        else:
            models = sorted(self.inputs)
            m_weights = np.ones(len(models))
        m_weights = m_weights / m_weights.sum()

        offset = 0.0
        plan = []
        for index in range(spec.n_requests):
            if spec.rate_rps is not None:
                offset += float(rng.exponential(1.0 / spec.rate_rps))
            tenant = tenants[int(rng.choice(len(tenants), p=t_weights))]
            model = models[int(rng.choice(len(models), p=m_weights))]
            pool = self.inputs[model]
            start = (index * spec.samples_per_request) % pool.shape[0]
            stop = start + spec.samples_per_request
            if stop <= pool.shape[0]:
                x = pool[start:stop]
            else:  # wrap around the pool
                x = np.concatenate([pool[start:], pool[: stop - pool.shape[0]]])
            plan.append((offset, tenant, model, x))
        return plan

    def run(self) -> LoadReport:
        """Submit the full plan (paced when ``rate_rps``), await results."""
        spec = self.spec
        plan = self.schedule()
        handles: List[Tuple[str, RequestHandle]] = []
        start = time.monotonic()
        for offset, tenant, model, x in plan:
            if spec.rate_rps is not None:
                delay = offset - (time.monotonic() - start)
                if delay > 0:
                    time.sleep(delay)
            handles.append((tenant, self.server.submit(model, x, tenant=tenant)))
        results = [
            (tenant, handle.result(timeout=spec.result_timeout_s))
            for tenant, handle in handles
        ]
        wall = time.monotonic() - start

        per_tenant: Dict[str, TenantLoadReport] = {}
        latencies = []
        completed = rejected = failed = 0
        for tenant, result in results:
            report = per_tenant.get(tenant)
            if report is None:
                report = per_tenant[tenant] = TenantLoadReport(tenant, 0, 0, 0, 0)
            report.submitted += 1
            if result.status is RequestStatus.COMPLETED:
                completed += 1
                report.completed += 1
                latencies.append(result.latency_s)
            elif result.status.rejected:
                rejected += 1
                report.rejected += 1
            else:
                failed += 1
                report.failed += 1
        summary = LatencySummary.of(latencies)
        return LoadReport(
            n_requests=spec.n_requests,
            wall_s=wall,
            completed=completed,
            rejected=rejected,
            failed=failed,
            p50_latency_s=summary.p50_s,
            p95_latency_s=summary.p95_s,
            p99_latency_s=summary.p99_s,
            tenants=[per_tenant[t] for t in sorted(per_tenant)],
        )
