"""The inference server: worker pool over the dynamic-batching queue.

``submit`` is the admission side: it validates the model name, stamps
the request and offers it to the bounded queue — returning an
already-completed handle with a typed rejection when admission fails.
Worker threads drain the queue through
:meth:`~repro.serve.scheduler.RequestQueue.next_batch`, execute each
coalesced batch with one :meth:`CompiledModel.run` call, then fan the
outputs, timings and proportional stats back out to the requests.

Numerics: one executed batch is one ``CompiledModel.run`` call, so its
outputs are bitwise-identical to ``runtime.reference_forward`` over the
same coalesced batch — the serving layer adds scheduling, never
arithmetic.  Activation quantization scales are batch-global (seed
semantics), so the executed batch is the unit of numerical identity;
``BatchPolicy(max_batch_size=1)`` pins per-request numerics exactly.

Threads are the right worker model here: the numpy kernels under
``CompiledModel.run`` release the GIL for their GEMM/gather work, and
per-tenant :class:`~repro.runtime.ExecutionSession` accounting is
internally locked, so tenants' counters survive concurrent workers.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cim.macro import MacroStats
from repro.obs import trace
from repro.obs.log import get_logger
from repro.runtime import ExecutionSession
from repro.serve.metrics import ServerMetrics, MetricsSnapshot, fraction_of_stats
from repro.serve.registry import ModelRegistry
from repro.serve.requests import (
    InferenceRequest,
    InferenceResult,
    RequestHandle,
    RequestStatus,
)
from repro.serve.scheduler import BatchPolicy, RequestQueue

_log = get_logger("serve.server")


@dataclass
class ExecutedBatch:
    """Record of one executed dynamic batch (kept when ``record_batches``).

    ``inputs`` is the exact concatenated array the compiled model ran,
    so a test can replay it through ``runtime.reference_forward`` and
    pin the server's outputs bitwise.
    """

    batch_seq: int
    model: str
    request_ids: List[int]
    tenants: List[str]
    inputs: np.ndarray
    outputs: np.ndarray
    stats: MacroStats
    execute_s: float


class InferenceServer:
    """Multi-tenant dynamic-batching server over a :class:`ModelRegistry`.

    Usage::

        registry = ModelRegistry()
        registry.register("mlp", model)
        with InferenceServer(registry, BatchPolicy(max_batch_size=16)) as server:
            handle = server.submit("mlp", x, tenant="alice")
            result = handle.result(timeout=5.0)

    ``submit`` is legal before ``start`` (requests queue up and execute
    once workers run) and after ``stop`` (typed rejection).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        policy: Optional[BatchPolicy] = None,
        *,
        n_workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        record_batches: bool = False,
        rng_seed: int = 0,
        chaos=None,
    ):
        """``chaos`` is an optional :class:`repro.chaos.ChaosController`:
        each executed batch consumes one chaos index (the server-side
        analogue of a stream micro-batch index), degradation windows
        route the batch through the degraded engine paths, and a fired
        shard death triggers failover — the deployment is re-planned
        around the casualty (warm from the controller's artifact store
        when possible), hot-swapped into the registry, and the displaced
        batch requeued at the head of its lane to re-execute exactly
        once.  Chaos indexes are allocated at execution start, so with
        ``n_workers > 1`` the batch → index mapping depends on worker
        interleaving; deterministic campaigns use ``n_workers=1``.
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.registry = registry
        self.policy = policy if policy is not None else BatchPolicy()
        self.queue = RequestQueue(self.policy)
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.record_batches = record_batches
        self.executed_batches: List[ExecutedBatch] = []
        self.chaos = chaos
        self.recoveries: List = []
        self._chaos_seq = 0
        self._chaos_chip_ns = 0.0
        self._n_workers = n_workers
        self._rng_seed = rng_seed
        self._workers: List[threading.Thread] = []
        self._handles: Dict[int, RequestHandle] = {}
        self._sessions: Dict[str, ExecutionSession] = {}
        self._state_lock = threading.Lock()
        self._batch_seq = 0
        self._next_id = 0
        self._stopping = False
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "InferenceServer":
        with self._state_lock:
            if self._started:
                raise RuntimeError("server already started")
            self._started = True
        for index in range(self._n_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(np.random.default_rng(self._rng_seed + index),),
                name=f"serve-worker-{index}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()
        _log.debug("server started with %d workers", self._n_workers)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Shut down: optionally drain pending work first.

        With ``drain=True`` (default) everything already admitted
        executes before workers exit; with ``drain=False`` pending
        requests complete as ``CANCELLED``.  A server that never
        started has no workers to drain through, so its pending
        requests cancel either way rather than stranding their handles.
        """
        with self._state_lock:
            if self._stopping:
                return
            self._stopping = True
            started = self._started
        if not drain or not started:
            # Close before draining: a submit racing this stop either
            # lands before the close (drained and cancelled here) or
            # gets the typed queue-full rejection — never stranded.
            # flush=False parks the workers immediately so they cannot
            # race this drain into executing work marked for cancel.
            self.queue.close(flush=False)
            for request in self.queue.drain_remaining():
                self.metrics.observe_cancelled(request.tenant)
                self._complete_request(
                    request,
                    InferenceResult(
                        status=RequestStatus.CANCELLED,
                        request_id=request.request_id,
                        tenant=request.tenant,
                        model=request.model,
                    ),
                )
        else:
            self.queue.close()
        for worker in self._workers:
            worker.join(timeout)
        self._workers = []
        _log.debug("server stopped (drain=%s)", drain)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=not any(exc_info))

    # -- admission -----------------------------------------------------
    def submit(
        self, model: str, x: np.ndarray, tenant: str = "default"
    ) -> RequestHandle:
        """Admit one request; always returns a :class:`RequestHandle`.

        ``x`` keeps its leading batch dimension (``(1, ...)`` for a
        single sample).  Rejections (unknown model, full queue, tenant
        cap, stopped server) come back as already-completed handles with
        a typed :class:`RequestStatus`.
        """
        tracer = trace.current()
        if tracer is None:
            return self._submit_inner(model, x, tenant)
        with tracer.span("admit", "serve", model=model, tenant=tenant) as sp:
            handle = self._submit_inner(model, x, tenant)
            if handle.request is not None:
                sp.set("request_id", handle.request.request_id)
            return handle

    def _submit_inner(
        self, model: str, x: np.ndarray, tenant: str
    ) -> RequestHandle:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim < 2 or x.shape[0] < 1:
            raise ValueError(
                f"request input must carry at least one sample in its "
                f"batch dimension, got shape {x.shape}"
            )
        if x.shape[0] > self.policy.max_queue_depth:
            # Larger than the whole admission bound: no amount of
            # backoff would ever admit it, so fail loudly instead of
            # returning a misleading transient rejection forever.
            raise ValueError(
                f"request carries {x.shape[0]} samples but the queue "
                f"admits at most {self.policy.max_queue_depth}"
            )
        # Count the submission before the request can reach a worker, so
        # a snapshot can never observe completed > submitted.
        self.metrics.observe_submitted()
        if model not in self.registry:
            self.metrics.observe_rejected(
                RequestStatus.REJECTED_UNKNOWN_MODEL.value, tenant
            )
            with self._state_lock:
                request_id = self._next_id
                self._next_id += 1
            return RequestHandle.completed(
                InferenceResult(
                    status=RequestStatus.REJECTED_UNKNOWN_MODEL,
                    request_id=request_id,
                    tenant=tenant,
                    model=model,
                    error=f"model {model!r} is not registered",
                )
            )
        request = InferenceRequest(
            request_id=-1,
            tenant=tenant,
            model=model,
            x=x,
            submitted_at=time.monotonic(),
        )
        handle = RequestHandle(request)
        with self._state_lock:
            request_id = self._next_id
            self._next_id += 1
            request.request_id = request_id
            stopping = self._stopping
            if not stopping:
                self._handles[request_id] = handle
        if stopping:
            # Terminal, not transient: retry-on-backpressure clients
            # must be able to tell shutdown from a momentarily full queue.
            self.metrics.observe_rejected(
                RequestStatus.REJECTED_SHUTTING_DOWN.value, tenant
            )
            handle._complete(
                self._rejection(request, RequestStatus.REJECTED_SHUTTING_DOWN)
            )
            return handle
        verdict = self.queue.offer(request)
        if verdict == RequestQueue.OK:
            return handle
        if verdict == RequestQueue.TENANT_LIMIT:
            status = RequestStatus.REJECTED_TENANT_LIMIT
        elif verdict == RequestQueue.CLOSED:
            # A submit that raced stop() past the _stopping check still
            # reports the terminal status, not transient backpressure.
            status = RequestStatus.REJECTED_SHUTTING_DOWN
        else:
            status = RequestStatus.REJECTED_QUEUE_FULL
        with self._state_lock:
            self._handles.pop(request_id, None)
        self.metrics.observe_rejected(status.value, tenant)
        handle._complete(self._rejection(request, status))
        return handle

    def submit_many(
        self, model: str, batches: Sequence[np.ndarray], tenant: str = "default"
    ) -> List[RequestHandle]:
        return [self.submit(model, x, tenant=tenant) for x in batches]

    @staticmethod
    def _rejection(request: InferenceRequest, status: RequestStatus) -> InferenceResult:
        return InferenceResult(
            status=status,
            request_id=request.request_id,
            tenant=request.tenant,
            model=request.model,
            error=status.value,
        )

    # -- tenants -------------------------------------------------------
    def session(self, tenant: str) -> ExecutionSession:
        """The tenant's (lazily created) shared execution session."""
        with self._state_lock:
            session = self._sessions.get(tenant)
            if session is None:
                session = self._sessions[tenant] = ExecutionSession()
            return session

    def sessions(self) -> Dict[str, ExecutionSession]:
        with self._state_lock:
            return dict(self._sessions)

    # -- observability -------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot(
            queue_depth=self.queue.depth, sessions=self.sessions()
        )

    # -- execution -----------------------------------------------------
    def _worker_loop(self, rng: np.random.Generator) -> None:
        while True:
            batch = self.queue.next_batch()
            if batch is None:
                return
            try:
                self._execute_batch(batch, rng)
            except Exception:  # pragma: no cover - defensive: keep draining
                self._fail_batch(batch, traceback.format_exc())

    def _execute_batch(
        self, batch: List[InferenceRequest], rng: np.random.Generator
    ) -> None:
        model = batch[0].model
        try:
            compiled = self.registry.get(model)
        except KeyError:
            # Evicted between admission and execution.
            self._fail_batch(batch, f"model {model!r} was evicted before execution")
            return
        tracer = trace.current()
        degrade = None
        if self.chaos is not None:
            with self._state_lock:
                chaos_seq = self._chaos_seq
                self._chaos_seq += 1
                chip_ns = self._chaos_chip_ns
            event = self.chaos.check_shard_death(
                shard=None, index=chaos_seq, chip_ns=chip_ns
            )
            if event is not None:
                self._chaos_failover(model, batch, event)
                return
            degrade = self.chaos.degradation_at(chaos_seq, chip_ns=chip_ns)
        try:
            inputs = (
                np.concatenate([request.x for request in batch])
                if len(batch) > 1
                else batch[0].x
            )
            started = time.monotonic()
            exec_t0 = time.perf_counter() if tracer is not None else 0.0
            outputs, stats = compiled.run(inputs, rng=rng, degrade=degrade)
            exec_t1 = time.perf_counter() if tracer is not None else 0.0
        except Exception as error:
            if len(batch) > 1:
                # Isolate the offender: one malformed request must not
                # fail the innocent requests coalesced around it.
                for request in batch:
                    self._execute_batch([request], rng)
            else:
                self._fail_batch(batch, f"{type(error).__name__}: {error}")
            return
        finished = time.monotonic()
        n_samples = int(inputs.shape[0])

        with self._state_lock:
            batch_seq = self._batch_seq
            self._batch_seq += 1
            if self.chaos is not None:
                # Advance the simulated chip clock chip-time-fired chaos
                # events are judged against.
                self._chaos_chip_ns += stats.latency_ns + stats.link_latency_ns

        # Per-tenant accounting: one locked record per tenant present.
        tenant_samples: Dict[str, int] = {}
        for request in batch:
            tenant_samples[request.tenant] = (
                tenant_samples.get(request.tenant, 0) + request.n_samples
            )
        for tenant, samples in tenant_samples.items():
            self.session(tenant).record(
                fraction_of_stats(stats, samples, n_samples), samples=samples
            )

        results: List[InferenceResult] = []
        offset = 0
        for request in batch:
            stop = offset + request.n_samples
            results.append(
                InferenceResult(
                    status=RequestStatus.COMPLETED,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    model=model,
                    output=outputs[offset:stop],
                    stats=fraction_of_stats(stats, request.n_samples, n_samples),
                    batch_seq=batch_seq,
                    batch_samples=n_samples,
                    queued_s=started - request.submitted_at,
                    latency_s=finished - request.submitted_at,
                )
            )
            offset = stop

        if self.record_batches:
            record = ExecutedBatch(
                batch_seq=batch_seq,
                model=model,
                request_ids=[r.request_id for r in batch],
                tenants=[r.tenant for r in batch],
                inputs=inputs,
                outputs=outputs,
                stats=stats,
                execute_s=finished - started,
            )
            with self._state_lock:
                self.executed_batches.append(record)
        if tracer is not None:
            # Queue spans are retroactive, duration-anchored: queued_s
            # was measured on the monotonic clock (submitted_at), so lay
            # it out on the tracer's perf_counter timeline ending where
            # execution began — the two clocks share no epoch.
            for request, result in zip(batch, results):
                tracer.record(
                    f"queued:r{request.request_id}",
                    exec_t0 - max(result.queued_s, 0.0),
                    exec_t0,
                    "serve",
                    model=model,
                    tenant=request.tenant,
                )
            tracer.record(
                "execute",
                exec_t0,
                exec_t1,
                "serve",
                model=model,
                requests=len(batch),
                samples=n_samples,
                batch_seq=batch_seq,
                chip_total_ns=stats.latency_ns,
                energy_fj=stats.total_energy_fj,
            )
        # Observe before completing the handles: a client that wakes on
        # handle.result() and immediately snapshots must see this batch.
        self.metrics.observe_batch(
            n_samples,
            [r.latency_s for r in results],
            [r.queued_s for r in results],
            [r.tenant for r in batch],
            now=finished,
        )
        if tracer is None:
            for request, result in zip(batch, results):
                self._complete_request(request, result)
        else:
            with tracer.span(
                "respond", "serve", model=model, requests=len(batch)
            ):
                for request, result in zip(batch, results):
                    self._complete_request(request, result)

    def _chaos_failover(self, model, batch, event) -> None:
        """Recover from a fired shard death before executing ``batch``.

        Re-plans the entry's deployment around the casualty (warm from
        the controller's artifact store when it holds the surviving
        topology), hot-swaps it into the registry, then requeues the
        displaced batch at the head of its lane so it re-executes
        exactly once on the recovered model.  ``requeue`` refuses during
        a cancelling shutdown — the batch then completes as CANCELLED
        here instead of being stranded behind ``drain_remaining``.

        An unrecoverable deployment (monolithic, or no shard left)
        drops the batch as CANCELLED; the record still lands in
        ``recoveries`` with ``n_shards_after`` at the floor.
        """
        import dataclasses

        from repro.chaos.stream import RecoveryRecord
        from repro.runtime import ShardedModel, snapshot
        from repro.runtime import shard as shard_compiled

        chaos = self.chaos
        self.metrics.observe_fault(event.kind)
        tracer = trace.current()
        t_start = time.perf_counter()
        try:
            entry = self.registry.entry(model)
        except KeyError:
            self._fail_batch(batch, f"model {model!r} was evicted before execution")
            return
        current = entry.compiled
        sharded = isinstance(current, ShardedModel)
        n_before = current.n_shards if sharded else 1
        n_after = n_before - 1
        dead = (
            event.shard
            if event.shard is not None and event.shard < n_before
            else n_before - 1
        )
        recovered = None
        warm = False
        replan_s = 0.0
        restore_s = 0.0
        if sharded and n_after >= 1:
            if chaos.store is not None and chaos.artifact_key_fn is not None:
                t0 = time.perf_counter()
                try:
                    key = chaos.artifact_key_fn(n_after)
                    restored = snapshot.load(chaos.store, key)
                    if (
                        isinstance(restored, ShardedModel)
                        and restored.n_shards == n_after
                    ):
                        recovered = restored
                        warm = True
                except snapshot.SnapshotError:
                    recovered = None  # cold re-plan below
                restore_s = time.perf_counter() - t0
            if recovered is None:
                t0 = time.perf_counter()
                recovered = shard_compiled(
                    current.compiled,
                    n_after,
                    link=current.link,
                    input_shape=chaos.input_shape,
                )
                replan_s = time.perf_counter() - t0
            self.registry.swap_compiled(model, recovered)

        displaced = tuple(request.request_id for request in batch)
        record = RecoveryRecord(
            events=(event,),
            dead_shards=(dead,),
            n_shards_before=n_before,
            n_shards_after=recovered.n_shards if recovered is not None else 0,
            displaced=displaced,
            dropped=() if recovered is not None else displaced,
            replayed=displaced if recovered is not None else (),
            resume_nodes=(0,) * len(displaced) if recovered is not None else (),
            warm_restored=warm,
            wall_s=time.perf_counter() - t_start,
            replan_s=replan_s,
            restore_s=restore_s,
        )
        if tracer is not None:
            with tracer.span(
                "chaos:recovery",
                "chaos",
                model=model,
                dead_shard=dead,
                n_shards_after=record.n_shards_after,
                warm_restored=warm,
            ):
                pass
        # Test seam, before the displaced batch is requeued — mirrors
        # the stream contract ("after failover, before replay").
        if chaos.recovery_hook is not None:
            chaos.recovery_hook(record)
        requeued = recovered is not None and self.queue.requeue(batch)
        if not requeued:
            # Unrecoverable, or a cancelling shutdown closed the queue
            # mid-recovery: complete the batch here, never strand it.
            record = dataclasses.replace(
                record, dropped=displaced, replayed=(), resume_nodes=()
            )
            for request in batch:
                self.metrics.observe_cancelled(request.tenant)
                self._complete_request(
                    request,
                    InferenceResult(
                        status=RequestStatus.CANCELLED,
                        request_id=request.request_id,
                        tenant=request.tenant,
                        model=request.model,
                        error=f"displaced by {event.kind} and not requeued",
                    ),
                )
        self.metrics.observe_recovery(
            record.wall_s,
            dropped=len(record.dropped),
            replayed=len(record.replayed),
        )
        with self._state_lock:
            self.recoveries.append(record)
        chaos.recoveries.append(record)

    def _fail_batch(self, batch: List[InferenceRequest], error: str) -> None:
        # Observe before completing, like the success path: a client
        # waking on handle.result() must see the failure in a snapshot.
        self.metrics.observe_failed([request.tenant for request in batch])
        for request in batch:
            self._complete_request(
                request,
                InferenceResult(
                    status=RequestStatus.FAILED,
                    request_id=request.request_id,
                    tenant=request.tenant,
                    model=request.model,
                    error=error,
                ),
            )

    def _complete_request(
        self, request: InferenceRequest, result: InferenceResult
    ) -> None:
        with self._state_lock:
            handle = self._handles.pop(request.request_id, None)
        if handle is not None:
            handle._complete(result)
