"""Text-mode visualization: render the paper's figures in a terminal.

The offline environment has no matplotlib, so the experiment runners
render their results as unicode bar charts and line plots.  These are
deliberately simple — fixed-width, no colour — but they make the
regenerated figures *look like figures* in CI logs and reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def hbar(value: float, max_value: float, width: int = 40) -> str:
    """One horizontal bar scaled to ``width`` characters."""
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    fraction = max(0.0, min(1.0, value / max_value))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _PARTIAL[int(remainder * len(_PARTIAL))] if full < width else ""
    return _FULL * full + partial


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Labelled horizontal bar chart.

    >>> print(bar_chart([("a", 1.0), ("b", 2.0)], width=4))
    a  ██    1
    b  ████  2
    """
    if not items:
        raise ValueError("nothing to plot")
    label_width = max(len(label) for label, _ in items)
    max_value = max(value for _, value in items)
    lines = [title] if title else []
    for label, value in items:
        bar = hbar(value, max_value, width)
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  {value:g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    title: str = "",
    width: int = 30,
    unit: str = "",
) -> str:
    """Bars grouped by outer key (e.g. model -> method -> value)."""
    if not groups:
        raise ValueError("nothing to plot")
    lines = [title] if title else []
    max_value = max(v for inner in groups.values() for v in inner.values())
    label_width = max(len(k) for inner in groups.values() for k in inner)
    for group_name, inner in groups.items():
        lines.append(f"[{group_name}]")
        for label, value in inner.items():
            bar = hbar(value, max_value, width)
            lines.append(
                f"  {label.ljust(label_width)}  {bar.ljust(width)}  {value:g}{unit}"
            )
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    width: int = 50,
    title: str = "",
    y_label: str = "",
) -> str:
    """Scatter/line plot on a character grid (x ascending)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("nothing to plot")
    y_min, y_max = min(ys), max(ys)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "●"
    lines = [title] if title else []
    for index, row in enumerate(grid):
        if index == 0:
            prefix = f"{y_max:8.3g} ┤"
        elif index == height - 1:
            prefix = f"{y_min:8.3g} ┤"
        else:
            prefix = " " * 8 + " │"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "└" + "─" * width)
    lines.append(" " * 10 + f"{x_min:<12g}{' ' * max(0, width - 24)}{x_max:>12g}")
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def stacked_fraction_bar(
    fractions: Dict[str, float], width: int = 50, legend: bool = True
) -> str:
    """A single 100%-stacked bar (for the Fig. 14 breakdowns)."""
    if not fractions:
        raise ValueError("nothing to plot")
    total = sum(fractions.values())
    if total <= 0:
        raise ValueError("fractions must sum to a positive value")
    markers = "█▓▒░▚▞▙"
    segments = []
    legend_parts = []
    for index, (label, value) in enumerate(fractions.items()):
        marker = markers[index % len(markers)]
        cells = int(round(value / total * width))
        segments.append(marker * cells)
        legend_parts.append(f"{marker}={label} {value / total * 100:.0f}%")
    bar = "".join(segments)[:width].ljust(width)
    if legend:
        return f"|{bar}|  " + "  ".join(legend_parts)
    return f"|{bar}|"
