"""Shared latency statistics: nearest-rank percentiles and summaries.

One implementation for every layer that reports latency percentiles —
the server's :class:`~repro.serve.metrics.ServerMetrics`, the
client-side :class:`~repro.serve.loadgen.LoadReport`, and the
profiler — so the p50/p95/p99 triple cannot drift between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def percentile(values: np.ndarray, q: float) -> float:
    """Nearest-rank percentile (no interpolation): the q-th of N sorted
    observations is element ``ceil(q/100 * N) - 1``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    ordered = np.sort(values)
    rank = max(int(np.ceil(q / 100.0 * ordered.size)) - 1, 0)
    return float(ordered[rank])


@dataclass(frozen=True)
class LatencySummary:
    """The p50/p95/p99 (+ count, mean) summary every layer reports."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float

    @staticmethod
    def of(values: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(values, dtype=np.float64)
        return LatencySummary(
            count=int(arr.size),
            mean_s=float(arr.mean()) if arr.size else 0.0,
            p50_s=percentile(arr, 50),
            p95_s=percentile(arr, 95),
            p99_s=percentile(arr, 99),
        )
