"""Structured tracing: nested spans over two clocks.

The repo's claims are *cost* claims — energy per sample, simulated chip
latency, ADC conversions — executed by a stack of four layers (runtime
plan → shard streams → scheduler → server).  A :class:`Tracer` records
that execution as **spans**: named, nested, thread-attributed intervals
carrying both clocks:

* **wall time** — ``time.perf_counter()``, what the host spent;
* **simulated chip time** — the monotone ``MacroStats.latency_ns``
  accumulated by the run the span instruments (machine-independent,
  the clock the paper's figures are drawn in).

Spans also carry free-form attributes (``energy_fj``, ``macs``,
``tenant``, ``batch`` …) so an exporter can attribute cost to
requests, plan nodes, and shard stages.

Tracing is **off by default** and the off state is the hot path: every
instrumented site guards with ``trace.current()`` — a module-global
read returning ``None`` — so a disabled tracer costs one attribute
load and a ``None`` check per guarded region
(``benchmarks/test_bench_obs.py`` pins the serving overhead < 3%).
Enable it for a region with::

    from repro.obs import trace

    with trace.tracing() as tracer:
        compiled.run(batch)
    trace.export_chrome(tracer, "out.json")   # via repro.obs.chrome

or process-wide with :func:`install` / :func:`uninstall`.

Thread-safety: finished spans append to the tracer under a lock, and
span nesting uses a per-thread stack, so concurrent server workers and
shard threads trace into one tracer without coordination.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One finished span.

    ``t0`` / ``t1`` are ``time.perf_counter()`` seconds.  ``attrs`` may
    carry the simulated-chip clock: ``chip_ns`` (duration) on leaf
    compute spans — the Chrome exporter builds the synthetic chip-time
    track from exactly those — plus whatever the instrumented site
    attributed (``energy_fj``, ``macs``, ``tenant`` …).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    thread_id: int
    thread_name: str
    t0: float
    t1: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return self.t1 - self.t0

    @property
    def chip_ns(self) -> float:
        return float(self.attrs.get("chip_ns", 0.0))


class Span:
    """Context manager for one in-flight span (see :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self._record = record

    def set(self, key: str, value: Any) -> "Span":
        """Attach (or overwrite) one attribute."""
        self._record.attrs[key] = value
        return self

    @property
    def attrs(self) -> Dict[str, Any]:
        return self._record.attrs

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self._record)


class Tracer:
    """Thread-safe collector of :class:`SpanRecord`.

    ``max_spans`` bounds memory: once full, further spans are counted
    in :attr:`dropped` instead of stored (the exporters note the drop).
    """

    def __init__(self, max_spans: int = 200_000):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._ids = itertools.count()
        self._stacks = threading.local()

    # -- recording -----------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def span(self, name: str, category: str = "", **attrs: Any) -> Span:
        """Open a nested span; close it by exiting the ``with`` block."""
        stack = self._stack()
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=stack[-1] if stack else None,
            name=name,
            category=category,
            thread_id=threading.get_ident(),
            thread_name=threading.current_thread().name,
            t0=time.perf_counter(),
            t1=0.0,
            attrs=attrs,
        )
        stack.append(record.span_id)
        return Span(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.t1 = time.perf_counter()
        stack = self._stack()
        if stack and stack[-1] == record.span_id:
            stack.pop()
        self._append(record)

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        category: str = "",
        thread_name: Optional[str] = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Record a span retroactively, with explicit perf-counter times.

        Used for intervals only known after the fact — a request's time
        in the scheduler queue, a batch's coalescing window.  The span
        is parentless and attributed to the calling thread unless
        ``thread_name`` overrides the display name.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=None,
            name=name,
            category=category,
            thread_id=threading.get_ident(),
            thread_name=(
                thread_name
                if thread_name is not None
                else threading.current_thread().name
            ),
            t0=t0,
            t1=t1,
            attrs=attrs,
        )
        self._append(record)
        return record

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(record)

    # -- reading -------------------------------------------------------
    def spans(self) -> List[SpanRecord]:
        """Finished spans, in completion order (a consistent copy)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


#: The process-wide tracer; ``None`` means tracing is disabled.  Hot
#: paths read this through :func:`current` exactly once per region.
_TRACER: Optional[Tracer] = None

#: Reusable no-op context manager for cold-path ``maybe_span`` guards.
_NULL_SPAN = contextlib.nullcontext(None)


def current() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled.

    This is the one guard every instrumented site evaluates; keep calls
    to it out of inner loops (resolve once per run / batch / request).
    """
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Enable process-wide tracing; returns the active tracer."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active, if any."""
    global _TRACER
    tracer, _TRACER = _TRACER, None
    return tracer


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope-local tracing: install on entry, restore the previous
    tracer (usually ``None``) on exit."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    try:
        yield _TRACER
    finally:
        _TRACER = previous


def maybe_span(name: str, category: str = "", **attrs: Any):
    """A span when tracing is enabled, else a shared no-op context.

    The cold-path convenience guard::

        with trace.maybe_span("snapshot_load", "snapshot", key=key) as sp:
            ...
            if sp is not None:
                sp.set("bytes", n)
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)
