"""Unified metrics registry with Prometheus and JSON exposition.

The serve layer already *collects* — :class:`ServerMetrics` ring
buffers, :class:`CacheStats` counters, per-tenant
:class:`ExecutionSession` energy — but each behind its own ad-hoc
surface.  :class:`MetricsRegistry` unifies them behind the three
standard instrument kinds (counter, gauge, histogram) with optional
labels, and renders the whole registry as:

* **Prometheus text exposition** (:meth:`MetricsRegistry.to_prometheus`)
  — ``# HELP`` / ``# TYPE`` headers, ``name{label="value"} value``
  samples, cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
  histogram triples — scrapeable by any Prometheus-compatible agent;
* **JSON** (:meth:`MetricsRegistry.to_json`) — the same families as a
  plain dict for programmatic consumers.

:func:`collect_server` snapshots a live
:class:`~repro.serve.server.InferenceServer` (request counters, typed
rejections, queue depth, batch-size histogram, latency quantiles,
throughput, engine-cache tiers, per-tenant energy) into a registry in
one call — the implementation behind ``repro serve --metrics OUT.prom``.
"""

from __future__ import annotations

import dataclasses
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (upper bounds); chosen for batch sizes and
#: sub-second latencies alike.  ``+Inf`` is implicit.
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    f = float(value)
    return str(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def _label_str(label_names: Sequence[str], label_values: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in zip(label_names, label_values)
    )
    return "{" + pairs + "}"


class Counter:
    """Monotone counter child (one label combination)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Set-to-current-value instrument child."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram child (Prometheus semantics)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float]):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times — for replaying pre-binned
        histograms such as the server's batch-size counts)."""
        with self._lock:
            self._sum += value * count
            self._count += count
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += count
                    break

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(cumulative bucket counts, sum, count)."""
        with self._lock:
            cumulative: List[int] = []
            running = 0
            for c in self._counts:
                running += c
                cumulative.append(running)
            return cumulative, self._sum, self._count


class _Family:
    """One named metric family: type + help + children per label set."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child for this label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
            return child

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self._buckets or DEFAULT_BUCKETS)

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())


class MetricsRegistry:
    """Named families of counters / gauges / histograms.

    Re-declaring a family with the same name and kind returns the
    existing one (so collectors are idempotent); re-declaring with a
    different kind or labels is a hard error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(label_names):
                    raise ValueError(
                        f"metric {name!r} already declared as {family.kind}"
                        f"{family.label_names}, not {kind}{tuple(label_names)}"
                    )
                return family
            family = _Family(name, kind, help, label_names, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> _Family:
        return self._declare(name, "counter", help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> _Family:
        return self._declare(name, "gauge", help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _Family:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        return self._declare(name, "histogram", help, label_names, buckets)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- exposition ----------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = _label_str(family.label_names, values)
                if isinstance(child, Histogram):
                    cumulative, total, count = child.snapshot()
                    for bound, n in zip(child.buckets, cumulative):
                        le = _merge_le(family.label_names, values, bound)
                        lines.append(f"{family.name}_bucket{le} {n}")
                    le = _merge_le(family.label_names, values, float("inf"))
                    lines.append(f"{family.name}_bucket{le} {count}")
                    lines.append(
                        f"{family.name}_sum{labels} {_format_value(total)}"
                    )
                    lines.append(f"{family.name}_count{labels} {count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict[str, object]:
        """The same families as a JSON-ready dict."""
        out: List[Dict[str, object]] = []
        for family in self.families():
            samples: List[Dict[str, object]] = []
            for values, child in family.children():
                labels = dict(zip(family.label_names, values))
                if isinstance(child, Histogram):
                    cumulative, total, count = child.snapshot()
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                _format_value(b): n
                                for b, n in zip(child.buckets, cumulative)
                            },
                            "sum": total,
                            "count": count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"metrics": out}


def _merge_le(
    label_names: Sequence[str], values: Tuple[str, ...], bound: float
) -> str:
    names = tuple(label_names) + ("le",)
    vals = values + (_format_value(bound),)
    return _label_str(names, vals)


# -- collectors --------------------------------------------------------


def collect_cache(cache, registry: MetricsRegistry, prefix: str = "repro") -> None:
    """Fold an :class:`~repro.runtime.cache.EngineCache`'s counters in.

    Iterates ``dataclasses.fields(CacheStats)`` so a newly added counter
    shows up here without an edit (the same drift-proofing as
    ``fraction_of_stats``).
    """
    stats = cache.stats
    family = registry.counter(
        f"{prefix}_engine_cache_events_total",
        "Engine-cache activity by event (memory and disk tiers).",
        ("event",),
    )
    for f in dataclasses.fields(stats):
        family.labels(event=f.name).inc(float(getattr(stats, f.name)))
    registry.gauge(
        f"{prefix}_engine_cache_entries",
        "Programmed engines currently resident in the memory tier.",
    ).labels().set(len(cache))


def collect_server(
    server, registry: Optional[MetricsRegistry] = None, prefix: str = "repro"
) -> MetricsRegistry:
    """Snapshot a live :class:`InferenceServer` into a registry.

    Unifies the server's :class:`MetricsSnapshot` (requests, queue,
    batching, latency quantiles, throughput), the shared engine cache,
    and per-tenant session energy under one exposition surface.
    """
    registry = registry if registry is not None else MetricsRegistry()
    snap = server.snapshot()

    for name, value, help in (
        ("requests_submitted", snap.submitted, "Requests admitted to submit()."),
        ("requests_completed", snap.completed, "Requests completed successfully."),
        ("requests_failed", snap.failed, "Requests failed during execution."),
        ("requests_cancelled", snap.cancelled, "Requests cancelled at shutdown."),
        ("batches_executed", snap.batches, "Dynamic batches executed."),
    ):
        registry.counter(f"{prefix}_{name}_total", help).labels().inc(float(value))

    rejected = registry.counter(
        f"{prefix}_requests_rejected_total",
        "Typed admission rejections.",
        ("reason",),
    )
    for reason, count in sorted(snap.rejected.items()):
        rejected.labels(reason=reason).inc(float(count))

    registry.gauge(
        f"{prefix}_queue_depth", "Requests waiting in the scheduler queue."
    ).labels().set(snap.queue_depth)
    registry.gauge(
        f"{prefix}_throughput_rps", "Completed requests/s over the rolling window."
    ).labels().set(snap.throughput_rps)
    registry.gauge(
        f"{prefix}_throughput_sps", "Completed samples/s over the rolling window."
    ).labels().set(snap.throughput_sps)
    registry.gauge(
        f"{prefix}_uptime_seconds", "Seconds since the metrics collector was born."
    ).labels().set(snap.uptime_s)
    registry.gauge(
        f"{prefix}_metrics_window_seconds", "Rolling-throughput window size."
    ).labels().set(snap.window_s)

    latency = registry.gauge(
        f"{prefix}_request_latency_seconds",
        "End-to-end request latency, nearest-rank quantiles.",
        ("quantile",),
    )
    latency.labels(quantile="0.5").set(snap.p50_latency_s)
    latency.labels(quantile="0.95").set(snap.p95_latency_s)
    latency.labels(quantile="0.99").set(snap.p99_latency_s)
    registry.gauge(
        f"{prefix}_queued_seconds_mean", "Mean time requests spent queued."
    ).labels().set(snap.mean_queued_s)

    sizes = registry.histogram(
        f"{prefix}_batch_size",
        "Samples per executed dynamic batch.",
        buckets=DEFAULT_BUCKETS,
    ).labels()
    for size, count in sorted(snap.batch_size_hist.items()):
        sizes.observe(float(size), count=count)

    faults = registry.counter(
        f"{prefix}_chaos_faults_total",
        "Chaos faults fired against the server, by fault kind.",
        ("kind",),
    )
    for kind, count in sorted(snap.faults.items()):
        faults.labels(kind=kind).inc(float(count))
    registry.counter(
        f"{prefix}_chaos_recoveries_total", "Completed shard failovers."
    ).labels().inc(float(snap.recoveries))
    registry.counter(
        f"{prefix}_chaos_recovery_dropped_total",
        "Requests dropped (cancelled) by failovers.",
    ).labels().inc(float(snap.recovery_dropped))
    registry.counter(
        f"{prefix}_chaos_recovery_replayed_total",
        "Requests requeued for exactly-once replay by failovers.",
    ).labels().inc(float(snap.recovery_replayed))
    registry.gauge(
        f"{prefix}_chaos_recovery_seconds_mean",
        "Mean wall-clock failover recovery time.",
    ).labels().set(snap.mean_recovery_s)

    collect_cache(server.registry.cache, registry, prefix=prefix)

    tenant_counters = {
        "completed": registry.counter(
            f"{prefix}_tenant_completed_total", "Completed requests per tenant.",
            ("tenant",),
        ),
        "samples": registry.counter(
            f"{prefix}_tenant_samples_total", "Executed samples per tenant.",
            ("tenant",),
        ),
        "rejected": registry.counter(
            f"{prefix}_tenant_rejected_total", "Rejected requests per tenant.",
            ("tenant",),
        ),
        "failed": registry.counter(
            f"{prefix}_tenant_failed_total", "Failed requests per tenant.",
            ("tenant",),
        ),
    }
    energy = registry.gauge(
        f"{prefix}_tenant_energy_per_sample_fj",
        "Session energy per executed sample (fJ) per tenant.",
        ("tenant",),
    )
    macs = registry.gauge(
        f"{prefix}_tenant_macs_per_sample",
        "MAC operations per executed sample per tenant.",
        ("tenant",),
    )
    for t in snap.tenants:
        tenant_counters["completed"].labels(tenant=t.tenant).inc(float(t.completed))
        tenant_counters["samples"].labels(tenant=t.tenant).inc(float(t.samples))
        tenant_counters["rejected"].labels(tenant=t.tenant).inc(float(t.rejected))
        tenant_counters["failed"].labels(tenant=t.tenant).inc(float(t.failed))
        energy.labels(tenant=t.tenant).set(t.energy_per_sample_fj)
        macs.labels(tenant=t.tenant).set(t.macs_per_sample)
    return registry


def export_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write the registry's text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(registry.to_prometheus())
