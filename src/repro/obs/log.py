"""Library-grade logging for the ``repro`` package.

The root ``repro`` logger carries a :class:`logging.NullHandler` —
importing the library never configures handlers or emits output, as a
library must not (the stdlib logging HOWTO contract).  Modules obtain
children through :func:`get_logger` (``repro.runtime.cache``,
``repro.serve.registry`` …) and log *decisions* at DEBUG level: cache
program vs disk-restore, warm-start vs cold compile, snapshot
save/load, server lifecycle.

Applications opt in; the CLI's global ``-v/--verbose`` flag calls
:func:`configure` (``-v`` → INFO, ``-vv`` → DEBUG) which wires
``logging.basicConfig`` for the ``repro`` hierarchy.
"""

from __future__ import annotations

import logging

#: Root logger of the library hierarchy.
ROOT = logging.getLogger("repro")
ROOT.addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """The ``repro.<name>`` child logger (idempotent)."""
    return ROOT.getChild(name)


def configure(verbosity: int = 0) -> None:
    """Wire console logging for the ``repro`` hierarchy.

    ``0`` leaves the library silent (NullHandler only); ``1`` enables
    INFO, ``2`` or more DEBUG.  Calls ``logging.basicConfig`` — safe to
    call once per process, exactly what a CLI entry point wants.
    """
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
    )
    ROOT.setLevel(level)
