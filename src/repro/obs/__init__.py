"""Observability: structured tracing, metrics exposition, profiling.

The substrate every layer of the stack reports through:

* :mod:`repro.obs.trace` — thread-safe nested spans over two clocks
  (wall ``perf_counter`` + simulated ``MacroStats.latency_ns``);
  disabled by default with a near-zero hot-path guard.
* :mod:`repro.obs.chrome` — Chrome trace-event JSON exporter
  (Perfetto-loadable, one track per thread plus a synthetic
  simulated-chip-time track).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`
  (counters/gauges/histograms) with Prometheus text + JSON exposition
  and a one-call :func:`collect_server` snapshot.
* :mod:`repro.obs.stats` — the shared nearest-rank percentile /
  :class:`LatencySummary` helpers.
* :mod:`repro.obs.log` — the ``repro`` logger hierarchy
  (``NullHandler`` by default; the CLI's ``-v`` wires it up).
* :mod:`repro.obs.profiler` — the per-plan-node profiler behind
  ``repro profile`` (imported lazily: it depends on the runtime).

See docs/observability.md for the span model and exporter formats.
"""

from repro.obs import trace
from repro.obs.chrome import chrome_trace, export_chrome
from repro.obs.log import configure as configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    collect_cache,
    collect_server,
    export_prometheus,
)
from repro.obs.stats import LatencySummary, percentile
from repro.obs.trace import Span, SpanRecord, Tracer

__all__ = [
    "trace",
    "Tracer",
    "Span",
    "SpanRecord",
    "chrome_trace",
    "export_chrome",
    "MetricsRegistry",
    "collect_cache",
    "collect_server",
    "export_prometheus",
    "LatencySummary",
    "percentile",
    "get_logger",
    "configure_logging",
]
