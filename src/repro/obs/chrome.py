"""Chrome trace-event exporter.

Serialises a :class:`~repro.obs.trace.Tracer` into the Chrome
trace-event JSON object format (the one ``chrome://tracing`` and
Perfetto load): ``{"traceEvents": [...]}`` where every finished span
becomes a ``ph: "X"`` *complete* event with microsecond ``ts``/``dur``,
plus ``ph: "M"`` metadata events naming the processes and threads.

Two synthetic *processes* organise the tracks:

* **pid 1 — "wall clock"**: one track (tid) per real thread that
  recorded spans — server workers, ``shard-{s}`` stream threads, the
  main thread — with ``ts`` relative to the earliest span so traces
  start at 0.
* **pid 2 — "simulated chip"**: a synthetic per-thread track laid out
  in the simulated clock.  Spans carrying a ``chip_ns`` attribute (the
  leaf compute spans) are placed end-to-end per thread in wall-start
  order, each with ``dur = chip_ns / 1000`` µs — so the track's total
  extent *is* the chip time the run accumulated, directly comparable
  against the wall tracks above it.

Span attributes ride along in ``args`` and show in the Perfetto span
detail pane.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Union

from repro.obs.trace import SpanRecord, Tracer

WALL_PID = 1
CHIP_PID = 2


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The trace-event object for ``tracer`` (see module docstring)."""
    spans = tracer.spans()
    events: List[Dict[str, Any]] = [
        _meta(WALL_PID, 0, "process_name", {"name": "wall clock"}),
        _meta(CHIP_PID, 0, "process_name", {"name": "simulated chip"}),
    ]
    if not spans:
        return {"traceEvents": events}

    epoch = min(s.t0 for s in spans)
    # Stable tid per thread, in order of first appearance; thread names
    # come from the span that recorded them (retroactive spans may carry
    # a display name distinct from the recording thread).
    tids: Dict[tuple, int] = {}
    for span in spans:
        track = (span.thread_id, span.thread_name)
        if track not in tids:
            tid = len(tids) + 1
            tids[track] = tid
            events.append(
                _meta(WALL_PID, tid, "thread_name", {"name": span.thread_name})
            )

    for span in spans:
        tid = tids[(span.thread_id, span.thread_name)]
        events.append(
            {
                "ph": "X",
                "pid": WALL_PID,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "span",
                "ts": (span.t0 - epoch) * 1e6,
                "dur": span.wall_s * 1e6,
                "args": _args(span),
            }
        )

    events.extend(_chip_events(spans, tids))
    if tracer.dropped:
        events.append(
            _meta(WALL_PID, 0, "process_labels",
                  {"labels": f"{tracer.dropped} spans dropped"})
        )
    return {"traceEvents": events}


def _chip_events(
    spans: List[SpanRecord],
    tids: Dict[tuple, int],
) -> List[Dict[str, Any]]:
    """The pid-2 synthetic track: chip_ns spans end-to-end per thread."""
    events: List[Dict[str, Any]] = []
    cursors: Dict[int, float] = {}
    named: Dict[int, bool] = {}
    chip = [s for s in sorted(spans, key=lambda s: s.t0) if "chip_ns" in s.attrs]
    for span in chip:
        tid = tids[(span.thread_id, span.thread_name)]
        if tid not in named:
            named[tid] = True
            events.append(
                _meta(CHIP_PID, tid, "thread_name",
                      {"name": f"{span.thread_name} (chip)"})
            )
        start_us = cursors.get(tid, 0.0)
        dur_us = span.chip_ns / 1000.0
        cursors[tid] = start_us + dur_us
        events.append(
            {
                "ph": "X",
                "pid": CHIP_PID,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "span",
                "ts": start_us,
                "dur": dur_us,
                "args": _args(span),
            }
        )
    return events


def _meta(pid: int, tid: int, name: str, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": tid, "name": name, "args": args}


def _args(span: SpanRecord) -> Dict[str, Any]:
    args = {k: _jsonable(v) for k, v in span.attrs.items()}
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    return args


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:  # numpy scalars
        return value.item()
    except AttributeError:
        return str(value)


def export_chrome(tracer: Tracer, out: Union[str, IO[str]]) -> Dict[str, Any]:
    """Write ``chrome_trace(tracer)`` as JSON to a path or open file."""
    doc = chrome_trace(tracer)
    if hasattr(out, "write"):
        json.dump(doc, out)  # type: ignore[arg-type]
    else:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    return doc
