"""DAG-level runtime profiler: per-plan-node cost attribution.

Runs a compiled model under a private tracer and aggregates the
per-node spans :meth:`CompiledModel.run` emits into a
:class:`ProfileReport` — per plan node: wall time, simulated chip time,
energy, MACs, share of the run's total energy, and the engine-cache
tier the node's engines currently reside in.  The node energy values
are deltas of the run's cumulative :class:`MacroStats`, so the report's
energy column sums to ``stats.total_energy_fj`` of the profiled runs
(the invariant ``repro profile`` prints and tests pin).

:func:`collapsed_stacks` renders the same spans in the folded
``stack;frames count`` format flamegraph tooling consumes
(https://github.com/brendangregg/FlameGraph — ``flamegraph.pl`` or any
of its ports).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import trace
from repro.obs.trace import SpanRecord, Tracer


@dataclass
class NodeProfile:
    """Aggregated cost of one plan node over the profiled runs."""

    name: str
    kind: str
    calls: int = 0
    wall_s: float = 0.0
    chip_ns: float = 0.0
    energy_fj: float = 0.0
    macs: float = 0.0
    tier: str = ""


@dataclass
class ProfileReport:
    """Outcome of :func:`profile`: per-node rows plus run totals."""

    model: str
    batch: int
    runs: int
    nodes: List[NodeProfile]
    wall_s: float
    stats: object  # MacroStats of all profiled runs combined
    tracer: Optional[Tracer] = field(default=None, repr=False)

    @property
    def total_energy_fj(self) -> float:
        return sum(node.energy_fj for node in self.nodes)

    @property
    def total_chip_ns(self) -> float:
        return sum(node.chip_ns for node in self.nodes)

    def rows(self) -> List[Tuple]:
        """Table rows: node, kind, calls, wall ms, chip ns, energy fJ,
        MACs, % of total energy, engine-cache tier."""
        total = self.total_energy_fj
        rows: List[Tuple] = []
        for node in self.nodes:
            share = 100.0 * node.energy_fj / total if total else 0.0
            rows.append(
                (
                    node.name or "<input>",
                    node.kind,
                    node.calls,
                    round(node.wall_s * 1e3, 3),
                    round(node.chip_ns, 1),
                    round(node.energy_fj, 1),
                    round(node.macs),
                    round(share, 1),
                    node.tier or "-",
                )
            )
        return rows


def _slot_tiers(compiled) -> Dict[str, str]:
    """Plan-node name -> engine-cache tier (weight-bearing nodes only)."""
    from repro.runtime.sharded import _node_slots

    tiers: Dict[str, str] = {}
    for node in compiled._nodes:
        slots = _node_slots(node)
        if not slots:
            continue
        unique = sorted({slot.cache_tier() for slot in slots})
        tiers[node.name] = unique[0] if len(unique) == 1 else "+".join(unique)
    return tiers


def profile(
    compiled,
    batch: np.ndarray,
    *,
    runs: int = 1,
    rng_seed: int = 0,
) -> ProfileReport:
    """Profile ``runs`` executions of ``batch`` through ``compiled``.

    ``compiled`` is a :class:`~repro.runtime.CompiledModel` (a
    :class:`~repro.runtime.ShardedModel` profiles its underlying
    compiled plan).  Each run draws from ``default_rng(rng_seed + i)``,
    so the profile is reproducible and bitwise identical to equally
    seeded plain runs.  Uses a private tracer — an installed
    process-wide tracer is restored afterwards.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    if hasattr(compiled, "compiled"):  # ShardedModel: profile the plan
        compiled = compiled.compiled
    x = np.asarray(batch, dtype=np.float64)

    total = None
    t0 = time.perf_counter()
    with trace.tracing() as tracer:
        for i in range(runs):
            _, stats = compiled.run(x, rng=np.random.default_rng(rng_seed + i))
            total = stats if total is None else total + stats
    wall_s = time.perf_counter() - t0

    nodes: Dict[str, NodeProfile] = {}
    plan_index: Dict[str, int] = {}
    for span in tracer.spans():
        if span.category != "plan":
            continue
        node = nodes.get(span.name)
        if node is None:
            node = nodes[span.name] = NodeProfile(
                name=span.name, kind=str(span.attrs.get("kind", ""))
            )
            plan_index[span.name] = int(span.attrs.get("node_index", 0))
        node.calls += 1
        node.wall_s += span.wall_s
        node.chip_ns += span.chip_ns
        node.energy_fj += float(span.attrs.get("energy_fj", 0.0))
        node.macs += float(span.attrs.get("macs", 0.0))
    # Report in plan order, not span-completion order.
    order = sorted(nodes, key=lambda name: plan_index[name])

    tiers = _slot_tiers(compiled)
    for name, node in nodes.items():
        node.tier = tiers.get(name, "")

    return ProfileReport(
        model=type(compiled.model).__name__,
        batch=int(x.shape[0]) if x.ndim else 1,
        runs=runs,
        nodes=[nodes[name] for name in order],
        wall_s=wall_s,
        stats=total,
        tracer=tracer,
    )


def collapsed_stacks(
    tracer: Tracer, *, metric: str = "wall_us"
) -> List[str]:
    """Folded flamegraph lines (``frame;frame;... value``) from a trace.

    Stacks follow span parentage (``run;conv1;...``); the value is the
    span's *self* cost — its metric minus its children's — so the
    flamegraph's widths add up correctly.  ``metric`` is ``"wall_us"``
    (integer microseconds) or ``"chip_ns"`` (simulated nanoseconds).
    """
    if metric not in ("wall_us", "chip_ns"):
        raise ValueError(f"unknown metric {metric!r}")
    spans = tracer.spans()
    by_id: Dict[int, SpanRecord] = {span.span_id: span for span in spans}

    def value_of(span: SpanRecord) -> float:
        if metric == "wall_us":
            return span.wall_s * 1e6
        return span.chip_ns

    children_cost: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children_cost[span.parent_id] = (
                children_cost.get(span.parent_id, 0.0) + value_of(span)
            )

    totals: Dict[str, float] = {}
    for span in spans:
        frames = [span.name or "<anon>"]
        parent = span.parent_id
        while parent is not None and parent in by_id:
            record = by_id[parent]
            frames.append(record.name or "<anon>")
            parent = record.parent_id
        stack = ";".join(reversed(frames))
        self_cost = max(value_of(span) - children_cost.get(span.span_id, 0.0), 0.0)
        totals[stack] = totals.get(stack, 0.0) + self_cost

    return [
        f"{stack} {max(int(round(value)), 0)}"
        for stack, value in sorted(totals.items())
        if int(round(value)) > 0
    ]
