"""Compile-once runtime amortization study.

The deployment question behind the runtime refactor: how much wall
clock does programming-once actually buy over the seed's per-call path,
which re-quantized the weights and rebuilt every subarray tile on each
inference?  This study measures the two serving regimes of interest —

* **serving** — requests arrive one sample at a time (the heavy-traffic
  deployment regime the ROADMAP targets); the seed path pays the full
  programming cost on every request.
* **streaming** — one large batch per call; programming cost amortizes
  over the batch, so the remaining gap is the runtime's optimized
  execution kernels.

Both regimes run the compiled path and the seed reference path on the
same requests and verify the outputs are bitwise identical — the
runtime is a pure restructuring, not an approximation.  Timings take
the minimum over ``repeats`` (the standard low-noise estimator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.runtime import (
    EngineCache,
    RuntimeConfig,
    compile_model,
    reference_forward,
)


@dataclass
class RuntimeStudyConfig:
    """Study budget.

    ``model`` selects a zoo network (``resnet8``, ``resnet18``,
    ``mobilenet``, ``vgg8``, …) instead of the synthetic MLP: it is
    built at ``width_mult`` for ``image_hw``-pixel inputs and deployed
    with batch-norm folding — the graph-plan runtime executes residual
    and grouped-conv models end to end.  ``None`` keeps the MLP.
    """

    in_features: int = 1024
    layer_widths: Sequence[int] = (512, 256)
    num_classes: int = 10
    n_requests: int = 32
    repeats: int = 3
    seed: int = 0
    model: Optional[str] = None
    width_mult: float = 0.25
    image_hw: int = 16


def fast_config() -> RuntimeStudyConfig:
    return RuntimeStudyConfig(
        in_features=256, layer_widths=(128,), n_requests=8, repeats=2
    )


def full_config() -> RuntimeStudyConfig:
    return RuntimeStudyConfig()


@dataclass
class RegimeResult:
    regime: str  # "serving" | "streaming"
    n_calls: int
    n_samples: int
    compiled_ms: float
    reference_ms: float
    bitwise_identical: bool

    @property
    def speedup(self) -> float:
        return self.reference_ms / self.compiled_ms if self.compiled_ms else 0.0


@dataclass
class RuntimeStudyResult:
    compile_ms: float = 0.0
    engines_programmed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    regimes: List[RegimeResult] = field(default_factory=list)

    def regime(self, name: str) -> RegimeResult:
        for entry in self.regimes:
            if entry.regime == name:
                return entry
        raise KeyError(f"no regime {name!r}")

    def rows(self) -> List[Tuple]:
        return [
            (
                r.regime,
                r.n_calls,
                r.n_samples,
                round(r.compiled_ms, 1),
                round(r.reference_ms, 1),
                round(r.speedup, 2),
                r.bitwise_identical,
            )
            for r in self.regimes
        ]


def _build_model(config: RuntimeStudyConfig) -> Tuple[nn.Module, RuntimeConfig]:
    if config.model is not None:
        from repro import models

        model = models.build_model(
            config.model,
            num_classes=config.num_classes,
            width_mult=config.width_mult,
            rng=np.random.default_rng(config.seed),
        )
        model.eval()
        # Zoo models carry BatchNorm; deployment folds it exactly once.
        return model, RuntimeConfig(fold_bn=True)
    rng = np.random.default_rng(config.seed)
    layers: List[nn.Module] = []
    width = config.in_features
    for next_width in config.layer_widths:
        layers += [nn.Linear(width, next_width, rng=rng), nn.ReLU()]
        width = next_width
    layers.append(nn.Linear(width, config.num_classes, rng=rng))
    return nn.Sequential(*layers), RuntimeConfig()


def _requests(config: RuntimeStudyConfig) -> np.ndarray:
    rng = np.random.default_rng(config.seed + 1)
    if config.model is not None:
        return rng.normal(
            size=(config.n_requests, 3, config.image_hw, config.image_hw)
        )
    return rng.normal(size=(config.n_requests, config.in_features))


def _time_calls(fn, calls, repeats: int) -> Tuple[float, list]:
    """Minimum wall-clock over ``repeats`` passes; outputs of the last."""
    best = float("inf")
    outputs = []
    for _ in range(repeats):
        outputs = []
        start = time.perf_counter()
        for x in calls:
            outputs.append(fn(x))
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, outputs


def run(config: RuntimeStudyConfig = None) -> RuntimeStudyResult:
    """Measure compiled vs seed per-call inference on both regimes."""
    config = config if config is not None else fast_config()
    model, runtime_config = _build_model(config)
    requests = _requests(config)

    cache = EngineCache()
    start = time.perf_counter()
    compiled = compile_model(model, runtime_config, cache=cache)
    compile_ms = (time.perf_counter() - start) * 1000.0
    result = RuntimeStudyResult(
        compile_ms=compile_ms,
        engines_programmed=cache.stats.programmed,
    )

    def compiled_call(x):
        return compiled.run(x)[0]

    def reference_call(x):
        return reference_forward(model, x)[0]

    serving = [requests[i : i + 1] for i in range(config.n_requests)]
    for regime, calls in (("serving", serving), ("streaming", [requests])):
        for x in calls:  # warm both paths (page cache, einsum paths)
            compiled.run(x)
        reference_forward(model, calls[0])
        compiled_ms, outs_c = _time_calls(compiled_call, calls, config.repeats)
        reference_ms, outs_r = _time_calls(reference_call, calls, config.repeats)
        bitwise = all(
            np.array_equal(a, b) for a, b in zip(outs_c, outs_r)
        )
        result.regimes.append(
            RegimeResult(
                regime=regime,
                n_calls=len(calls),
                n_samples=sum(x.shape[0] for x in calls),
                compiled_ms=compiled_ms,
                reference_ms=reference_ms,
                bitwise_identical=bitwise,
            )
        )
    result.cache_hits = cache.stats.hits
    result.cache_misses = cache.stats.misses
    return result
