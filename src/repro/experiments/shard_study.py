"""Sharded pipeline-parallel makespan study on executed traffic.

Section 4.3.3 analyses serial-vs-pipelined schedules analytically
(``arch/pipeline.py``); this study reproduces the comparison on *real
executed traffic*: a conv stack is compiled once, cut across 1..N
simulated chiplets (:func:`repro.runtime.shard`), and a stream of
micro-batches is executed pipeline-parallel through the shards.  The
per-stage macro latencies and SIMBA-link transfer times measured from
that execution drive the makespan comparison:

* **serial** — the monolithic single-chip execution of the stream (sum
  of all per-batch compute latencies; no links);
* **pipelined** — shard ``s`` starts micro-batch ``i`` once it arrived
  over the serial link and shard ``s`` retired micro-batch ``i - 1``.

Every sharded output is verified bitwise against the unsharded
compiled model — sharding is scheduling, never arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.runtime import RuntimeConfig, compile_model, shard, stream_rng


@dataclass
class ShardStudyConfig:
    """Study budget.

    ``model`` selects a zoo network (``resnet8``, ``resnet18``,
    ``mobilenet``, …) instead of the synthetic conv stack: it is built
    at ``width_mult``, deployed with batch-norm folding, and cut across
    the shard sweep like any other plan — residual diamonds stay whole
    (single-edge-frontier cuts).  ``None`` keeps the conv stack.
    """

    image_hw: int = 16
    channels: Sequence[int] = (8, 12, 12, 16)
    num_classes: int = 10
    n_batches: int = 8
    batch_size: int = 4
    shard_counts: Sequence[int] = (1, 2, 4)
    queue_depth: int = 2
    seed: int = 0
    model: Optional[str] = None
    width_mult: float = 0.25


def fast_config() -> ShardStudyConfig:
    return ShardStudyConfig(
        image_hw=12, channels=(6, 8, 8), n_batches=6, batch_size=2,
        shard_counts=(1, 2, 4),
    )


def full_config() -> ShardStudyConfig:
    return ShardStudyConfig(
        image_hw=20, channels=(12, 16, 16, 24, 24), n_batches=16,
        batch_size=8, shard_counts=(1, 2, 4, 6),
    )


@dataclass
class ShardPoint:
    """Measured stream execution at one shard count."""

    n_shards: int
    serial_ms: float
    pipelined_ms: float
    link_bits: float
    link_energy_fj: float
    bitwise_identical: bool
    balance: float
    wall_s: float

    @property
    def speedup(self) -> float:
        return self.serial_ms / self.pipelined_ms if self.pipelined_ms else 1.0


@dataclass
class ShardStudyResult:
    n_batches: int = 0
    batch_samples: int = 0
    points: List[ShardPoint] = field(default_factory=list)

    def point(self, n_shards: int) -> ShardPoint:
        for p in self.points:
            if p.n_shards == n_shards:
                return p
        raise KeyError(f"no point at {n_shards} shards")

    def rows(self) -> List[Tuple]:
        return [
            (
                p.n_shards,
                round(p.serial_ms, 3),
                round(p.pipelined_ms, 3),
                round(p.speedup, 2),
                round(p.link_energy_fj / 1e6, 2),
                round(p.balance, 2),
                p.bitwise_identical,
            )
            for p in self.points
        ]


def _build_model(config: ShardStudyConfig) -> Tuple[nn.Module, RuntimeConfig]:
    if config.model is not None:
        from repro import models

        model = models.build_model(
            config.model,
            num_classes=config.num_classes,
            width_mult=config.width_mult,
            rng=np.random.default_rng(config.seed),
        )
        model.eval()
        # Zoo models carry BatchNorm; deployment folds it exactly once.
        return model, RuntimeConfig(fold_bn=True)
    rng = np.random.default_rng(config.seed)
    layers: List[nn.Module] = []
    width = 3
    for ch in config.channels:
        layers += [nn.Conv2d(width, ch, 3, padding=1, rng=rng), nn.ReLU()]
        width = ch
    hw = config.image_hw // 2
    layers += [
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(width * hw * hw, config.num_classes, rng=rng),
    ]
    return nn.Sequential(*layers), RuntimeConfig()


def run(config: ShardStudyConfig = None) -> ShardStudyResult:
    """Execute the micro-batch stream at every shard count and compare
    the serial and pipelined makespans measured from it."""
    config = config if config is not None else fast_config()
    model, runtime_config = _build_model(config)
    compiled = compile_model(model, runtime_config)
    input_shape = (1, 3, config.image_hw, config.image_hw)
    batches = [
        np.random.default_rng([config.seed + 1, i]).normal(
            size=(config.batch_size, 3, config.image_hw, config.image_hw)
        )
        for i in range(config.n_batches)
    ]
    # Unsharded per-batch replay with the stream's per-batch RNGs: the
    # bitwise oracle for every shard count.
    expected = [
        compiled.run(batch, rng=stream_rng(config.seed, i))[0]
        for i, batch in enumerate(batches)
    ]

    result = ShardStudyResult(
        n_batches=config.n_batches, batch_samples=config.batch_size
    )
    for n in config.shard_counts:
        sharded = shard(compiled, n, input_shape=input_shape)
        stream = sharded.run_stream(
            batches, seed=config.seed, queue_depth=config.queue_depth
        )
        bitwise = all(
            np.array_equal(out, ref) for out, ref in zip(stream.outputs, expected)
        )
        result.points.append(
            ShardPoint(
                n_shards=n,
                serial_ms=stream.serial_makespan_ns / 1e6,
                pipelined_ms=stream.pipelined_makespan_ns / 1e6,
                link_bits=stream.stats.link_bits,
                link_energy_fj=stream.stats.link_energy_fj,
                bitwise_identical=bitwise,
                balance=sharded.plan.balance,
                wall_s=stream.wall_s,
            )
        )
    return result
