"""Experiment runners — one per paper table/figure.

Every runner exposes ``run(config) -> result`` returning plain dicts /
dataclasses that print the same rows or series the paper reports, plus a
``fast_config()`` (seconds, used by tests and CI benchmarks) and a
``full_config()`` (minutes, the paper-scale budget used by
``scripts/run_full_experiments.py``).

=============  ====================================================
module         reproduces
=============  ====================================================
``fig6b``      ATL transferability decay (Fig. 6b)
``fig10``      ReBranch generalization: accuracy + area (Fig. 10)
``fig11``      Branch compression D*U and D-U split sweeps (Fig. 11)
``fig12``      Detection mAP + chip area (Fig. 12)
``table1``     ROM-CiM macro specification summary (Table I)
``fig14``      Chip-level system comparison (Fig. 14a-c)
=============  ====================================================

Extension studies (paper prose / named future work):

==================  ================================================
module              implements
==================  ================================================
``encoding_study``  sec. 3.1 word-line encoding trade-off
``cim_accuracy``    end-to-end accuracy vs (ADC bits, encoding)
``pipeline_study``  sec. 4.3.3 ping-pong weight reload
``du_search``       sec. 3.2 minimum-area D/U selection
``related_work_quant``  sec. 2.3 sub-8-bit quantization claim
``options_study``   Options I-IV head-to-head (Fig. 6)
``ablations``       ADC bits, bit-line noise, packing, standby, init
``runtime_study``   compile-once runtime amortization (serving/streaming)
``backend_study``   kernel-backend autotuning: default vs tuned serving
``shard_study``     sharded pipeline-parallel makespans on executed traffic
``warmstart_study``  cold compile vs persisted-artifact warm start
==================  ================================================
"""

from repro.experiments import (
    ablations,
    backend_study,
    cim_accuracy,
    du_search,
    encoding_study,
    fig6b,
    fig10,
    fig11,
    fig12,
    fig14,
    options_study,
    pipeline_study,
    related_work_quant,
    runtime_study,
    shard_study,
    table1,
    warmstart_study,
)
from repro.experiments.common import (
    PretrainedBundle,
    pretrain_classifier,
    clone_with_new_head,
)

__all__ = [
    "ablations",
    "backend_study",
    "cim_accuracy",
    "du_search",
    "encoding_study",
    "fig6b",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "options_study",
    "pipeline_study",
    "related_work_quant",
    "runtime_study",
    "shard_study",
    "table1",
    "warmstart_study",
    "PretrainedBundle",
    "pretrain_classifier",
    "clone_with_new_head",
]
