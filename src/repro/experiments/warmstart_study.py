"""Warm-start study: cold compile vs artifact load, measured end to end.

The deployment question behind the snapshot layer: how much startup
wall clock does a persisted compiled artifact actually buy over
programming from scratch?  For each model in the sweep the study

* **cold-compiles** the model into a fresh :class:`EngineCache`
  (quantize weights, decompose bit planes, place tiles, fuse kernels —
  everything a new process pays on its first registration),
* **saves** the compiled image into a content-addressed
  :class:`~repro.runtime.ArtifactStore`, then
* **warm-starts** by :func:`~repro.runtime.load`-ing the artifact into
  another fresh cache, and
* **verifies** the restored model's outputs are bitwise identical to
  the freshly compiled one (same inputs, same execution RNG).

Timings take the minimum over ``repeats`` passes (the standard
low-noise estimator).  ``benchmarks/test_bench_warmstart.py`` pins the
headline number: warm-start load must be at least 5x faster than the
cold compile it replaces, with the bitwise check green.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.runtime import (
    ArtifactStore,
    EngineCache,
    RuntimeConfig,
    compile_model,
    load,
    save,
)


@dataclass
class WarmstartStudyConfig:
    """Sweep budget.

    ``mlp_widths`` defines the serving-scale classifier (the regime the
    snapshot layer targets: heavy weights, many subarray tiles);
    ``conv_channels`` a small convolutional pipeline; ``image_hw`` its
    input resolution.  ``repeats`` is the min-of-N timing estimator
    width, ``batch`` the verification batch size.
    """

    mlp_widths: Sequence[int] = (2048, 1024, 512, 10)
    conv_channels: Sequence[int] = (16, 32, 32)
    image_hw: int = 16
    repeats: int = 4
    batch: int = 4
    seed: int = 0
    store_dir: Optional[str] = None  # default: a fresh temp directory


def fast_config() -> WarmstartStudyConfig:
    return WarmstartStudyConfig(
        mlp_widths=(256, 128, 10), conv_channels=(8, 8), image_hw=8, repeats=2
    )


def full_config() -> WarmstartStudyConfig:
    return WarmstartStudyConfig()


@dataclass
class WarmstartResult:
    """One model's cold-vs-warm startup comparison."""

    model: str
    n_weight_layers: int
    cold_compile_ms: float
    save_ms: float
    load_ms: float
    artifact_mb: float
    bitwise_identical: bool

    @property
    def speedup(self) -> float:
        return self.cold_compile_ms / self.load_ms if self.load_ms else 0.0


@dataclass
class WarmstartStudyResult:
    results: List[WarmstartResult] = field(default_factory=list)

    def result(self, name: str) -> WarmstartResult:
        for entry in self.results:
            if entry.model == name:
                return entry
        raise KeyError(f"no model {name!r}")

    def rows(self) -> List[Tuple]:
        return [
            (
                r.model,
                r.n_weight_layers,
                round(r.cold_compile_ms, 1),
                round(r.save_ms, 1),
                round(r.load_ms, 1),
                round(r.speedup, 2),
                round(r.artifact_mb, 2),
                r.bitwise_identical,
            )
            for r in self.results
        ]


def _mlp(widths: Sequence[int], rng: np.random.Generator) -> nn.Module:
    layers: List[nn.Module] = []
    for a, b in zip(widths, widths[1:]):
        layers += [nn.Linear(a, b, rng=rng), nn.ReLU()]
    return nn.Sequential(*layers[:-1])


def _conv(channels: Sequence[int], hw: int, rng: np.random.Generator) -> nn.Module:
    layers: List[nn.Module] = []
    previous = 3
    for width in channels:
        layers += [nn.Conv2d(previous, width, 3, padding=1, rng=rng), nn.ReLU()]
        previous = width
    layers += [nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(previous, 10, rng=rng)]
    return nn.Sequential(*layers)


def _min_time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Minimum wall-clock over ``repeats`` calls; value of the last."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, value


def measure(
    name: str,
    model: nn.Module,
    sample: np.ndarray,
    store: ArtifactStore,
    repeats: int,
) -> WarmstartResult:
    """Cold-compile vs save/load one model through ``store``."""
    cold_ms, compiled = _min_time(
        lambda: compile_model(model, RuntimeConfig(), cache=EngineCache()), repeats
    )
    save_ms, key = _min_time(lambda: save(compiled, store), 1)
    load_ms, loaded = _min_time(
        lambda: load(store, key, cache=EngineCache()), repeats
    )
    expected, _ = compiled.run(sample, rng=np.random.default_rng(7))
    restored, _ = loaded.run(sample, rng=np.random.default_rng(7))
    return WarmstartResult(
        model=name,
        n_weight_layers=compiled.n_weight_layers,
        cold_compile_ms=cold_ms,
        save_ms=save_ms,
        load_ms=load_ms,
        artifact_mb=store.model_path(key).stat().st_size / 1e6,
        bitwise_identical=bool(np.array_equal(expected, restored)),
    )


def run(config: Optional[WarmstartStudyConfig] = None) -> WarmstartStudyResult:
    """Measure cold vs warm startup for the configured model sweep."""
    config = config if config is not None else fast_config()
    rng = np.random.default_rng(config.seed)
    data_rng = np.random.default_rng(config.seed + 1)
    store_dir = (
        config.store_dir
        if config.store_dir is not None
        else tempfile.mkdtemp(prefix="warmstart-study-")
    )
    store = ArtifactStore(store_dir)
    hw = config.image_hw

    sweep: Dict[str, Tuple[nn.Module, np.ndarray]] = {
        "mlp": (
            _mlp(config.mlp_widths, rng),
            data_rng.normal(size=(config.batch, config.mlp_widths[0])),
        ),
        "conv": (
            _conv(config.conv_channels, hw, rng),
            data_rng.normal(size=(config.batch, 3, hw, hw)),
        ),
    }
    result = WarmstartStudyResult()
    for name, (model, sample) in sweep.items():
        result.results.append(
            measure(name, model, sample, store, config.repeats)
        )
    return result
