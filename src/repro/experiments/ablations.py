"""Ablation studies for design choices the paper's text argues about.

Not figures from the paper, but the knobs its text argues about:

* ``adc_resolution_sweep`` — MVM fidelity vs column-ADC bits (the
  "number of ADCs and simultaneously activated rows" trade-off flagged
  for future work in section 4.3.1).
* ``bitline_noise_sweep`` — robustness of the bit-serial MVM to analog
  bit-line noise (the variation concern raised for beyond-CMOS CiM).
* ``branch_init_ablation`` — zero-initialized res-conv (ours/paper:
  start at the pretrained function) vs random init.
* ``projection_ablation`` — frozen random compress/decompress
  projections (deployable in ROM) vs making them trainable (would force
  them into SRAM, defeating the area saving).
* ``packing_ablation`` — the section 4.3.2 subarray co-location
  optimization vs one-layer-per-subarray mapping.
* ``duty_cycle_ablation`` — the non-volatility standby-power advantage
  vs deployment duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import models
from repro.arch.packing import compare_packings
from repro.arch.technology import duty_cycle_energy_ratio
from repro.cim import AdcSpec, BitlineModel, CimTiledMatmul, MacroConfig
from repro.datasets import classification_suite
from repro.experiments.common import (
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import TrainConfig, apply_rebranch, rebranch_modules


# ----------------------------------------------------------------------
# Circuit-level ablations (fast, deterministic)
# ----------------------------------------------------------------------
def adc_resolution_sweep(
    bits_list: Sequence[int] = (3, 4, 5, 6, 7, 8),
    matrix_shape: Tuple[int, int] = (256, 32),
    n_vectors: int = 8,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Relative MVM error and energy per MAC for each ADC resolution."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=matrix_shape)
    x = rng.integers(0, 256, size=(matrix_shape[0], n_vectors))
    exact = weights.T @ x
    rows = []
    for bits in bits_list:
        config = MacroConfig(adc=AdcSpec(bits=bits))
        engine = CimTiledMatmul(weights, config, rng=np.random.default_rng(seed + 1))
        approx, stats = engine.matmul(x)
        rows.append(
            {
                "adc_bits": bits,
                "rel_error": float(
                    np.abs(approx - exact).mean() / np.abs(exact).mean()
                ),
                "energy_per_mac_fj": stats.energy_per_mac_fj,
            }
        )
    return rows


def bitline_noise_sweep(
    sigmas: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    seed: int = 0,
) -> List[Dict[str, float]]:
    """MVM error vs Gaussian bit-line noise (in ON-cell count units)."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=(128, 16))
    x = rng.integers(0, 256, size=(128, 8))
    exact = weights.T @ x
    rows = []
    for sigma in sigmas:
        config = MacroConfig(
            adc=AdcSpec(bits=8),
            bitline=BitlineModel(max_rows=128, noise_sigma_counts=sigma),
        )
        engine = CimTiledMatmul(weights, config, rng=np.random.default_rng(seed + 2))
        approx, _ = engine.matmul(x)
        rows.append(
            {
                "noise_sigma": sigma,
                "rel_error": float(
                    np.abs(approx - exact).mean() / np.abs(exact).mean()
                ),
            }
        )
    return rows


def packing_ablation(width_mult: float = 0.125) -> Dict[str, float]:
    """Naive vs first-fit 2-D subarray packing on a VGG-8 variant.

    Fragmentation — and therefore the benefit of co-locating layers —
    is largest when layer matrices are small relative to the 128x32
    subarray (early layers, scaled models, and the ReBranch compress /
    res-conv / decompress layers); at full width most tiles are full
    and the naive mapping is already near-optimal.
    """
    model = models.vgg8(width_mult=width_mult, rng=np.random.default_rng(0))
    profile = models.profile_model(model, (1, 3, 32, 32))
    return compare_packings(profile)


def duty_cycle_ablation(
    duty_cycles: Sequence[float] = (1.0, 0.1, 0.01),
    weight_bits: int = 385_000_000,
    active_energy_j: float = 1.5e-3,
    inference_rate_hz: float = 30.0,
) -> List[Dict[str, float]]:
    """ROM vs SRAM wall-clock energy as the deployment idles more."""
    rows = []
    for duty in duty_cycles:
        entry = duty_cycle_energy_ratio(
            active_energy_j, inference_rate_hz, weight_bits, duty_cycle=duty
        )
        entry["duty_cycle"] = duty
        rows.append(entry)
    return rows


# ----------------------------------------------------------------------
# Training ablations (scaled models)
# ----------------------------------------------------------------------
@dataclass
class TrainAblationConfig:
    width_mult: float = 0.125
    target: str = "medium"
    pretrain_epochs: int = 8
    transfer_epochs: int = 6
    n_train: int = 200
    n_test: int = 128
    seed: int = 0


@dataclass
class TrainAblationResult:
    source_accuracy: float = 0.0
    accuracies: Dict[str, float] = field(default_factory=dict)


def branch_init_ablation(
    config: Optional[TrainAblationConfig] = None,
) -> TrainAblationResult:
    """Zero-init res-conv (paper-faithful) vs random-init res-conv."""
    config = config if config is not None else TrainAblationConfig()
    suite = classification_suite(seed=config.seed)
    bundle = pretrain_classifier(
        "vgg8",
        suite,
        width_mult=config.width_mult,
        train_config=TrainConfig(epochs=config.pretrain_epochs, lr=2e-3, batch_size=64),
        n_train=2 * config.n_train,
        n_test=config.n_test,
        seed=config.seed,
    )
    splits = suite.target_splits(config.target, config.n_train, config.n_test)
    result = TrainAblationResult(source_accuracy=bundle.source_accuracy)
    train_cfg = TrainConfig(epochs=config.transfer_epochs, lr=2e-3, batch_size=64)

    for variant in ("zero_init", "random_init"):
        model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
        apply_rebranch(model, rng=np.random.default_rng(config.seed + 2))
        if variant == "random_init":
            rng = np.random.default_rng(config.seed + 3)
            for module in rebranch_modules(model):
                module.res_conv.weight.data = 0.1 * rng.normal(
                    size=module.res_conv.weight.shape
                )
        result.accuracies[variant] = transfer_and_evaluate(model, splits, train_cfg)
    return result


def projection_ablation(
    config: Optional[TrainAblationConfig] = None,
) -> TrainAblationResult:
    """Frozen random projections vs trainable projections.

    Trainable projections can only help accuracy but move the compress/
    decompress weights into SRAM — the result quantifies how much
    accuracy the ROM-deployable frozen choice gives up (paper: little).
    """
    config = config if config is not None else TrainAblationConfig()
    suite = classification_suite(seed=config.seed)
    bundle = pretrain_classifier(
        "vgg8",
        suite,
        width_mult=config.width_mult,
        train_config=TrainConfig(epochs=config.pretrain_epochs, lr=2e-3, batch_size=64),
        n_train=2 * config.n_train,
        n_test=config.n_test,
        seed=config.seed,
    )
    splits = suite.target_splits(config.target, config.n_train, config.n_test)
    result = TrainAblationResult(source_accuracy=bundle.source_accuracy)
    train_cfg = TrainConfig(epochs=config.transfer_epochs, lr=2e-3, batch_size=64)

    for variant in ("frozen_projections", "trainable_projections"):
        model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
        apply_rebranch(model, rng=np.random.default_rng(config.seed + 2))
        if variant == "trainable_projections":
            for module in rebranch_modules(model):
                module.compress.unfreeze()
                module.decompress.unfreeze()
        result.accuracies[variant] = transfer_and_evaluate(model, splits, train_cfg)
    return result
