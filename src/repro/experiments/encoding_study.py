"""Activation-encoding design space (section 3.1's trade-off remark).

Sweeps the three word-line encodings of :mod:`repro.cim.encoding`
across input precisions and noise conditions, and reports the axes the
paper's "different speed-accuracy trade-off" sentence refers to:
word-line cycles, ADC conversions, energy per MAC, and MVM error.

The expected shape:

* bit-serial is the cycle-count sweet spot at 8-bit inputs (Table I's
  operating point);
* unary pulses cut ADC conversions (and energy) by ``input_bits``x but
  pay ``(2**b - 1) / b``x in word-line cycles;
* pulse width matches unary's conversion savings at one cycle, but its
  error grows with timing jitter — the fastest and least accurate
  corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cim import AdcSpec, BitlineModel, CimMacro, MacroConfig
from repro.cim.encoding import (
    ActivationEncoding,
    BitSerialEncoding,
    PulseWidthEncoding,
    UnaryPulseEncoding,
)


@dataclass
class EncodingStudyConfig:
    """Workload and sweep parameters."""

    input_bits_list: Sequence[int] = (2, 4, 8)
    jitter_sigma_slots: float = 0.25
    noise_sigma_counts: float = 0.0
    adc_bits: int = 5
    rows: int = 128
    logical_cols: int = 16
    n_vectors: int = 32
    seed: int = 0


@dataclass
class EncodingPoint:
    """One (encoding, input precision) corner of the design space."""

    encoding: str
    input_bits: int
    wl_cycles: int
    conversions_per_column: int
    rel_error: float
    energy_per_mac_fj: float
    adc_energy_share: float
    latency_ns: float


@dataclass
class EncodingStudyResult:
    points: List[EncodingPoint] = field(default_factory=list)

    def by_key(self) -> Dict[Tuple[str, int], EncodingPoint]:
        return {(p.encoding, p.input_bits): p for p in self.points}

    def rows(self) -> List[Tuple]:
        return [
            (
                p.encoding,
                p.input_bits,
                p.wl_cycles,
                p.conversions_per_column,
                p.rel_error,
                p.energy_per_mac_fj,
                p.latency_ns,
            )
            for p in self.points
        ]


def fast_config() -> EncodingStudyConfig:
    return EncodingStudyConfig(n_vectors=8, logical_cols=8)


def full_config() -> EncodingStudyConfig:
    return EncodingStudyConfig(n_vectors=64, logical_cols=32)


def _encodings(config: EncodingStudyConfig) -> List[ActivationEncoding]:
    return [
        BitSerialEncoding(),
        UnaryPulseEncoding(),
        PulseWidthEncoding(jitter_sigma_slots=config.jitter_sigma_slots),
    ]


def _measure(
    encoding: ActivationEncoding,
    input_bits: int,
    config: EncodingStudyConfig,
) -> EncodingPoint:
    rng = np.random.default_rng(config.seed)
    macro_config = MacroConfig(
        rows=config.rows,
        input_bits=input_bits,
        adc=AdcSpec(bits=config.adc_bits),
        bitline=BitlineModel(
            max_rows=config.rows, noise_sigma_counts=config.noise_sigma_counts
        ),
    )
    low, high = macro_config.weight_range()
    weights = rng.integers(low, high + 1, size=(config.rows, config.logical_cols))
    x = rng.integers(0, 2**input_bits, size=(config.rows, config.n_vectors))
    macro = CimMacro(macro_config, weights, rng=np.random.default_rng(config.seed + 1))

    approx, stats = encoding.matmul(macro, x)
    exact = macro.exact_matmul(x)
    scale = float(np.abs(exact).mean())
    rel_error = float(np.abs(approx - exact).mean() / scale) if scale else 0.0
    total = stats.total_energy_fj
    return EncodingPoint(
        encoding=encoding.name,
        input_bits=input_bits,
        wl_cycles=encoding.wl_cycles(input_bits),
        conversions_per_column=encoding.conversions_per_column(input_bits),
        rel_error=rel_error,
        energy_per_mac_fj=stats.energy_per_mac_fj,
        adc_energy_share=stats.adc_energy_fj / total if total else 0.0,
        latency_ns=stats.latency_ns / config.n_vectors,
    )


def run(config: Optional[EncodingStudyConfig] = None) -> EncodingStudyResult:
    """Measure every encoding at every input precision of the sweep."""
    config = config if config is not None else EncodingStudyConfig()
    result = EncodingStudyResult()
    for input_bits in config.input_bits_list:
        for encoding in _encodings(config):
            result.points.append(_measure(encoding, input_bits, config))
    return result


def jitter_sweep(
    sigmas: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    input_bits: int = 8,
    config: Optional[EncodingStudyConfig] = None,
) -> List[Dict[str, float]]:
    """Pulse-width error vs timing-jitter sigma (slot units).

    Uses a high-resolution ADC by default: behind the macro's 5-bit
    column ADC, quantization dominates and timing jitter is invisible —
    itself a finding worth keeping (the pulse-width accuracy penalty
    only bites once the conversion path stops being the bottleneck).
    """
    config = config if config is not None else EncodingStudyConfig(adc_bits=12)
    rows = []
    for sigma in sigmas:
        point = _measure(
            PulseWidthEncoding(jitter_sigma_slots=sigma), input_bits, config
        )
        rows.append({"jitter_sigma_slots": sigma, "rel_error": point.rel_error})
    return rows
