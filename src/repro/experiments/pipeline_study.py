"""Ping-pong scheduling study (section 4.3.3's perspectives paragraph).

Applies the :mod:`repro.arch.pipeline` scheduler to the Fig. 14
single-chip SRAM-CiM baseline: the chip is sized so VGG-8 fits (the
Fig. 14 protocol), larger models stream weights from DRAM, and the
study measures how much of that streaming latency double-buffered
ping-pong execution hides — and that it hides none of the energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import models
from repro.arch.memory import DramSpec
from repro.arch.pipeline import relief_summary, tasks_for_single_chip
from repro.arch.mapping import weight_reload_factor
from repro.arch.system import SramSingleChipSystem
from repro.cim.spec import sram_macro_spec

BENCHMARKS: Tuple[Tuple[str, Tuple[int, int, int, int]], ...] = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)


@dataclass
class PipelineStudyConfig:
    benchmarks: Tuple[Tuple[str, Tuple[int, int, int, int]], ...] = BENCHMARKS
    fit_margin: float = 1.25
    compute_slowdown: float = 1.0
    seed: int = 0


def fast_config() -> PipelineStudyConfig:
    return PipelineStudyConfig(benchmarks=BENCHMARKS[:2])


def full_config() -> PipelineStudyConfig:
    return PipelineStudyConfig()


@dataclass
class PipelineStudyResult:
    chip_capacity_bits: int = 0
    chip_gops: float = 0.0
    rows: List[Dict[str, float]] = field(default_factory=list)

    def by_model(self) -> Dict[str, Dict[str, float]]:
        return {row["model"]: row for row in self.rows}


def run(config: Optional[PipelineStudyConfig] = None) -> PipelineStudyResult:
    """Relief summary for every benchmark on the shared Fig. 14 chip."""
    config = config if config is not None else PipelineStudyConfig()
    rng = np.random.default_rng(config.seed)
    dram = DramSpec()
    spec = sram_macro_spec()

    profiles = {}
    for name, shape in config.benchmarks:
        model = models.build_model(name, rng=rng)
        profiles[name] = models.profile_model(model, shape)

    smallest_bits = min(p.total_params * 8 for p in profiles.values())
    chip_area = SramSingleChipSystem().area_for_capacity(
        int(smallest_bits * config.fit_margin)
    )
    usable = chip_area * 0.95 - SramSingleChipSystem().cache.area_mm2
    n_macros = max(1, int(usable // spec.area_mm2))
    capacity_bits = n_macros * spec.capacity_bits
    chip_gops = n_macros * spec.throughput_gops

    result = PipelineStudyResult(
        chip_capacity_bits=capacity_bits, chip_gops=chip_gops
    )
    for name, profile in profiles.items():
        reload_factor = weight_reload_factor(
            profile, SramSingleChipSystem().cache.capacity_bits
        )
        tasks = tasks_for_single_chip(
            profile,
            capacity_bits,
            chip_gops,
            dram=dram,
            reload_factor=reload_factor,
        )
        summary = relief_summary(
            tasks, dram=dram, compute_slowdown=config.compute_slowdown
        )
        summary["model"] = name
        summary["resident_fraction"] = (
            min(1.0, capacity_bits / (profile.total_params * 8))
        )
        result.rows.append(summary)
    return result


def slowdown_sensitivity(
    slowdowns: Tuple[float, ...] = (1.0, 1.25, 1.5, 2.0),
    model_name: str = "yolo",
    shape: Tuple[int, int, int, int] = (1, 3, 416, 416),
    seed: int = 0,
) -> List[Dict[str, float]]:
    """How much bank-switching compute loss the overlap can absorb."""
    rng = np.random.default_rng(seed)
    model = models.build_model(model_name, rng=rng)
    profile = models.profile_model(model, shape)
    spec = sram_macro_spec()
    # A deliberately small chip so the model is reload-dominated.
    capacity_bits = int(profile.total_params * 8 * 0.25)
    n_macros = max(1, math.ceil(capacity_bits / spec.capacity_bits))
    tasks = tasks_for_single_chip(
        profile, capacity_bits, n_macros * spec.throughput_gops
    )
    rows = []
    for slowdown in slowdowns:
        summary = relief_summary(tasks, compute_slowdown=slowdown)
        rows.append(
            {
                "compute_slowdown": slowdown,
                "latency_relief": summary["latency_relief"],
            }
        )
    return rows
