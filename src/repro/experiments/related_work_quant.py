"""Related-work claim check: sub-8-bit quantization on modern networks.

Section 2.3 rejects ultra-scaled quantization as an alternative to
ROM-CiM density: "ultra-scaled networks below 8-bit quantization, such
as TNN [14] and BNN [15], are still difficult to implement on modern
networks like ResNet [11] and MobileNet [16]".

The study post-training-quantizes the weights of a plain CNN (VGG-8)
and a depthwise-separable CNN (MobileNet) at int8 / int4 / ternary /
binary and measures test accuracy on the synthetic source task.  The
reproduced shape: int8 is free for both; ternary/binary cost the
depthwise model far more than the plain one (its per-filter weight
populations are too small to survive a 3-level alphabet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets import classification_suite
from repro.nn.tensor import Tensor, no_grad
from repro.eval.classification import accuracy
from repro.experiments.common import pretrain_classifier
from repro.quant import mean_quantization_error, quantize_weights_
from repro.rebranch import TrainConfig

SCHEMES: Tuple[str, ...] = ("int8", "int4", "ternary", "binary")


@dataclass
class RelatedWorkQuantConfig:
    model_names: Tuple[str, ...] = ("vgg8", "mobilenet")
    schemes: Tuple[str, ...] = SCHEMES
    width_mult: float = 0.125
    pretrain_epochs: int = 10
    n_train: int = 512
    n_test: int = 256
    batch_size: int = 64
    seed: int = 0


def fast_config() -> RelatedWorkQuantConfig:
    return RelatedWorkQuantConfig(pretrain_epochs=6, n_train=256, n_test=160)


def full_config() -> RelatedWorkQuantConfig:
    return RelatedWorkQuantConfig(pretrain_epochs=16, n_train=1024, n_test=512)


@dataclass
class QuantPoint:
    model: str
    scheme: str
    accuracy: float
    accuracy_drop: float
    weight_error: float


@dataclass
class RelatedWorkQuantResult:
    baselines: Dict[str, float] = field(default_factory=dict)
    points: List[QuantPoint] = field(default_factory=list)

    def at(self, model: str, scheme: str) -> QuantPoint:
        for point in self.points:
            if point.model == model and point.scheme == scheme:
                return point
        raise KeyError(f"no point for ({model}, {scheme})")

    def rows(self) -> List[Tuple]:
        return [
            (p.model, p.scheme, p.accuracy, p.accuracy_drop, p.weight_error)
            for p in self.points
        ]


def _evaluate(model, x, y) -> float:
    model.eval()
    logits = []
    for start in range(0, len(x), 128):
        batch = x[start : start + 128]
        with no_grad():
            logits.append(model(Tensor(batch)).data)
    return accuracy(np.concatenate(logits), y)


def run(config: Optional[RelatedWorkQuantConfig] = None) -> RelatedWorkQuantResult:
    """Pretrain both models once; evaluate every quantization scheme."""
    config = config if config is not None else RelatedWorkQuantConfig()
    suite = classification_suite(seed=config.seed)
    src = suite.source_splits(n_train=config.n_train, n_test=config.n_test)

    result = RelatedWorkQuantResult()
    for model_name in config.model_names:
        bundle = pretrain_classifier(
            model_name,
            suite,
            width_mult=config.width_mult,
            train_config=TrainConfig(
                epochs=config.pretrain_epochs,
                lr=2e-3,
                batch_size=config.batch_size,
                seed=config.seed,
            ),
            n_train=config.n_train,
            n_test=config.n_test,
            seed=config.seed,
        )
        baseline = bundle.source_accuracy
        result.baselines[model_name] = baseline
        for scheme in config.schemes:
            model = bundle.fresh(rng_seed=config.seed)
            quantize_weights_(model, scheme)
            acc = _evaluate(model, src.x_test, src.y_test)
            result.points.append(
                QuantPoint(
                    model=model_name,
                    scheme=scheme,
                    accuracy=acc,
                    accuracy_drop=baseline - acc,
                    weight_error=mean_quantization_error(
                        bundle.fresh(rng_seed=config.seed), scheme
                    ),
                )
            )
    return result
