"""Fig. 14 — chip-level comparison of YOLoC vs SRAM-CiM systems.

(a) Energy efficiency and area of YOLoC vs the iso-capacity single-chip
    SRAM-CiM and the SRAM-CiM chiplet assembly (paper: YOLoC wins
    1x / 4.8x / 10.2x / 14.8x on VGG-8 / ResNet-18 / Tiny-YOLO / YOLO
    against the single chip, ~2% against chiplets at ~10x less area).
(b) YOLoC chip area breakdown (array / buffer / ADC / R-W / peripheral).
(c) Per-model energy breakdown of the single-chip SRAM-CiM baseline
    (CiM / peripheral / DRAM) with the improvement ratio overlay.

Protocol: one shared chip design sized so the smallest benchmark
(VGG-8) fits entirely in SRAM-CiM (the paper's Fig. 14c shows VGG-8
with no DRAM traffic); classification models run at CIFAR resolution,
detectors at 416x416.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import models
from repro.arch.system import (
    SramChipletSystem,
    SramSingleChipSystem,
    SystemReport,
    YolocSystem,
)

#: (model, input shape) pairs of the paper's benchmark set.
BENCHMARKS: Tuple[Tuple[str, Tuple[int, int, int, int]], ...] = (
    ("vgg8", (1, 3, 32, 32)),
    ("resnet18", (1, 3, 32, 32)),
    ("tiny_yolo", (1, 3, 416, 416)),
    ("yolo", (1, 3, 416, 416)),
)

#: The paper's improvement ratios, for side-by-side comparison.
PAPER_IMPROVEMENTS = {"vgg8": 1.0, "resnet18": 4.8, "tiny_yolo": 10.2, "yolo": 14.8}


@dataclass
class Fig14Config:
    benchmarks: Tuple[Tuple[str, Tuple[int, int, int, int]], ...] = BENCHMARKS
    #: Chip capacity margin over the smallest model (sizes the shared chip).
    fit_margin: float = 1.25
    d: int = 4
    u: int = 4
    seed: int = 0


def fast_config() -> Fig14Config:
    return Fig14Config()


def full_config() -> Fig14Config:
    return Fig14Config()


@dataclass
class ModelComparison:
    model: str
    yoloc: SystemReport
    single_chip: SystemReport
    chiplet: SystemReport

    @property
    def improvement_vs_single(self) -> float:
        return self.single_chip.energy.total_pj / self.yoloc.energy.total_pj

    @property
    def improvement_vs_chiplet(self) -> float:
        return self.chiplet.energy.total_pj / self.yoloc.energy.total_pj

    @property
    def area_saving_vs_chiplet(self) -> float:
        return self.chiplet.area.total_mm2 / self.yoloc.area.total_mm2


@dataclass
class Fig14Result:
    chip_area_mm2: float = 0.0
    comparisons: List[ModelComparison] = field(default_factory=list)
    latency_overheads: Dict[str, float] = field(default_factory=dict)

    def improvements(self) -> Dict[str, float]:
        return {c.model: c.improvement_vs_single for c in self.comparisons}

    def yoloc_area_breakdown(self, model: str) -> Dict[str, float]:
        for comparison in self.comparisons:
            if comparison.model == model:
                return comparison.yoloc.area.fractions()
        raise KeyError(model)

    def energy_breakdown(self, model: str) -> Dict[str, float]:
        for comparison in self.comparisons:
            if comparison.model == model:
                return comparison.single_chip.energy.fractions()
        raise KeyError(model)


def run(config: Optional[Fig14Config] = None) -> Fig14Result:
    config = config if config is not None else fast_config()
    rng = np.random.default_rng(config.seed)

    profiles = {}
    for name, shape in config.benchmarks:
        model = models.build_model(name, rng=rng)
        profiles[name] = models.profile_model(model, shape)

    smallest_bits = min(p.total_params * 8 for p in profiles.values())
    single = SramSingleChipSystem()
    chip_area = single.area_for_capacity(int(smallest_bits * config.fit_margin))

    result = Fig14Result(chip_area_mm2=chip_area)
    yoloc = YolocSystem(d=config.d, u=config.u)
    for name, profile in profiles.items():
        comparison = ModelComparison(
            model=name,
            yoloc=yoloc.evaluate(profile),
            single_chip=SramSingleChipSystem(chip_area_mm2=chip_area).evaluate(profile),
            chiplet=SramChipletSystem(chiplet_area_mm2=chip_area).evaluate(profile),
        )
        result.comparisons.append(comparison)
        result.latency_overheads[name] = yoloc.latency_overhead(profile)
    return result


def format_report(result: Fig14Result) -> str:
    lines = [
        f"Shared SRAM-CiM chip area: {result.chip_area_mm2:.0f} mm^2",
        f"{'model':<10}{'E_yoloc(uJ)':>12}{'E_single(uJ)':>14}{'improve':>9}"
        f"{'vs paper':>9}{'chiplet x':>10}{'areaX':>7}{'lat ovh':>8}",
    ]
    for c in result.comparisons:
        paper = PAPER_IMPROVEMENTS.get(c.model, float("nan"))
        lines.append(
            f"{c.model:<10}{c.yoloc.energy_per_inference_uj:>12.1f}"
            f"{c.single_chip.energy_per_inference_uj:>14.1f}"
            f"{c.improvement_vs_single:>8.1f}x{paper:>8.1f}x"
            f"{c.improvement_vs_chiplet:>9.2f}x"
            f"{c.area_saving_vs_chiplet:>6.1f}x"
            f"{result.latency_overheads[c.model] * 100:>7.1f}%"
        )
    return "\n".join(lines)
