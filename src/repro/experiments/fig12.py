"""Fig. 12 — detection quality vs chip area.

Two halves, matching the paper's figure:

* **mAP bars** — train a source ("COCO-analog") detector, then migrate
  it to target tasks with four methods: fully-trainable SRAM-CiM YOLO,
  fully-trainable Tiny-YOLO, DeepConv (only last conv group + prediction
  trainable), and YOLoC (ReBranch).  Paper: 81.2 / 70.7 / 78.3 / 81.4 on
  PASCAL VOC — YOLoC matches the all-trainable baseline (-0.5%..+0.2%),
  DeepConv trails, Tiny-YOLO trails badly.
* **Chip area bars** — the area to hold *all* weights of the full-size
  models per method, from the analytic area model.  Paper: YOLoC is
  9.7x smaller than SRAM-CiM YOLO and 2.4x smaller than SRAM-CiM
  Tiny-YOLO.

The accuracy half runs scaled-down detectors on synthetic data; the
area half uses the full-size YOLO / Tiny-YOLO profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import models
from repro.arch.mapping import map_model
from repro.arch.memory import SramBufferModel
from repro.cim.spec import rom_macro_spec, sram_macro_spec
from repro.datasets.detection import detection_suite
from repro.experiments.detection import (
    DetectionTrainConfig,
    build_scaled_detector,
    evaluate_map,
    sample_task,
    train_detector,
)
from repro.rebranch import apply_rebranch
from repro.rebranch.options import apply_deep_conv

DETECTION_METHODS = ("sram_cim", "tiny_yolo", "deep_conv", "yoloc")


@dataclass
class Fig12Config:
    targets: tuple = ("pedestrian", "traffic", "voc")
    methods: tuple = DETECTION_METHODS
    image_size: int = 48
    n_train: int = 160
    n_test: int = 96
    pretrain_epochs: int = 12
    transfer_epochs: int = 8
    d: int = 4
    u: int = 4
    seed: int = 0


def fast_config() -> Fig12Config:
    return Fig12Config(
        targets=("voc",),
        image_size=32,
        n_train=80,
        n_test=48,
        pretrain_epochs=6,
        transfer_epochs=4,
    )


def full_config() -> Fig12Config:
    return Fig12Config()


@dataclass
class DetectionRow:
    method: str
    target: str
    map50: float
    trainable_params: int


@dataclass
class AreaRow:
    """Full-size chip area of one method (Fig. 12 bar chart)."""

    method: str
    rom_cim_cm2: float
    sram_cim_cm2: float
    cache_cm2: float
    peripheral_cm2: float

    @property
    def total_cm2(self) -> float:
        return (
            self.rom_cim_cm2 + self.sram_cim_cm2 + self.cache_cm2 + self.peripheral_cm2
        )


@dataclass
class Fig12Result:
    source_map: Dict[str, float] = field(default_factory=dict)
    rows: List[DetectionRow] = field(default_factory=list)
    areas: List[AreaRow] = field(default_factory=list)

    def map_table(self) -> Dict[str, Dict[str, float]]:
        table: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            table.setdefault(row.target, {})[row.method] = row.map50
        return table

    def area_by_method(self) -> Dict[str, float]:
        return {row.method: row.total_cm2 for row in self.areas}


def _full_size_areas(d: int, u: int) -> List[AreaRow]:
    """The area half of Fig. 12 from the full-size profiles."""
    rom = rom_macro_spec()
    sram = sram_macro_spec()
    cache = SramBufferModel()
    rng = np.random.default_rng(0)
    yolo_profile = models.profile_model(
        models.yolo_v2(rng=rng), (1, 3, 416, 416)
    )
    tiny_profile = models.profile_model(
        models.tiny_yolo(rng=rng), (1, 3, 416, 416)
    )

    def row(method: str, rom_bits: int, sram_bits: int) -> AreaRow:
        rom_area = rom_bits / 1e6 / rom.density_mb_mm2
        sram_area = sram_bits / 1e6 / sram.density_mb_mm2
        cim = rom_area + sram_area
        return AreaRow(
            method=method,
            rom_cim_cm2=rom_area / 100,
            sram_cim_cm2=sram_area / 100,
            cache_cm2=cache.area_mm2 / 100,
            peripheral_cm2=0.10 * (cim + cache.area_mm2) / 100,
        )

    all_sram_yolo = map_model(yolo_profile, "all_sram")
    all_sram_tiny = map_model(tiny_profile, "all_sram")
    deep_conv = map_model(yolo_profile, "all_rom", trainable_tail_layers=2)
    yoloc = map_model(yolo_profile, "yoloc", d=d, u=u)
    return [
        row("sram_cim", 0, all_sram_yolo.total_weight_bits),
        row("tiny_yolo", 0, all_sram_tiny.total_weight_bits),
        row("deep_conv", deep_conv.rom_weight_bits, deep_conv.sram_weight_bits),
        row("yoloc", yoloc.rom_weight_bits, yoloc.sram_weight_bits),
    ]


def run(config: Optional[Fig12Config] = None) -> Fig12Result:
    config = config if config is not None else fast_config()
    suite = detection_suite(seed=config.seed, image_size=config.image_size)
    result = Fig12Result()
    result.areas = _full_size_areas(config.d, config.u)

    source = suite["source"]
    (src_imgs, src_boxes, src_labels), (src_t_imgs, src_t_boxes, src_t_labels) = (
        sample_task(source, config.n_train, config.n_test, seed=config.seed)
    )

    # Pretrain the big and tiny source detectors once.
    pretrain_cfg = DetectionTrainConfig(
        epochs=config.pretrain_epochs, seed=config.seed
    )
    base = build_scaled_detector(
        "yolo", source.config.num_classes, rng=np.random.default_rng(config.seed)
    )
    train_detector(base, src_imgs, src_boxes, src_labels, pretrain_cfg)
    result.source_map["yolo"] = evaluate_map(
        base, src_t_imgs, src_t_boxes, src_t_labels
    )
    base_state = base.state_dict()

    tiny_base = build_scaled_detector(
        "tiny", source.config.num_classes, rng=np.random.default_rng(config.seed + 1)
    )
    train_detector(tiny_base, src_imgs, src_boxes, src_labels, pretrain_cfg)
    result.source_map["tiny"] = evaluate_map(
        tiny_base, src_t_imgs, src_t_boxes, src_t_labels
    )
    tiny_state = tiny_base.state_dict()

    transfer_cfg = DetectionTrainConfig(
        epochs=config.transfer_epochs, seed=config.seed
    )
    for target_name in config.targets:
        task = suite[target_name]
        (imgs, boxes, labels), (t_imgs, t_boxes, t_labels) = sample_task(
            task, config.n_train, config.n_test, seed=config.seed + 10
        )
        num_classes = task.config.num_classes
        for method in config.methods:
            kind = "tiny" if method == "tiny_yolo" else "yolo"
            state = tiny_state if kind == "tiny" else base_state
            model = build_scaled_detector(
                kind, num_classes, rng=np.random.default_rng(config.seed + 2)
            )
            if num_classes == source.config.num_classes:
                model.load_state_dict(state)
            else:
                # Re-headed transfer: load backbone + shared head convs.
                partial = {
                    key: value
                    for key, value in state.items()
                    if not key.startswith("head.") or "head.0." in key
                }
                own = model.state_dict()
                own.update(partial)
                model.load_state_dict(own)

            if method == "deep_conv":
                apply_deep_conv(model)
            elif method == "yoloc":
                # Branch the backbone; head stays trainable in SRAM-CiM.
                apply_rebranch(
                    model.backbone,
                    d=config.d,
                    u=config.u,
                    skip_last=False,
                    rng=np.random.default_rng(config.seed + 3),
                )
            # sram_cim / tiny_yolo: leave fully trainable.

            train_detector(model, imgs, boxes, labels, transfer_cfg)
            result.rows.append(
                DetectionRow(
                    method=method,
                    target=target_name,
                    map50=evaluate_map(model, t_imgs, t_boxes, t_labels),
                    trainable_params=sum(
                        p.size for p in model.parameters() if p.requires_grad
                    ),
                )
            )
    return result
