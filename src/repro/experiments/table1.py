"""Table I — ROM-CiM macro specification summary.

Derives every Table I row from the circuit model and reports it next to
the paper's printed value, plus the Fig. 2/4 cell density comparison
(ROM 1T vs 6T SRAM vs published SRAM-CiM cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cim.cells import ROM_1T, SRAM_6T, SRAM_CIM_6T, all_cim_cells
from repro.cim.spec import TABLE1_PAPER, rom_macro_spec, sram_macro_spec


@dataclass
class Table1Result:
    rows: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    cell_comparison: List[Tuple[str, float, float]] = field(default_factory=list)
    sram_density_ratio: float = 0.0

    def max_relative_error(self) -> float:
        """Worst paper-vs-model relative deviation over nonzero rows."""
        worst = 0.0
        for paper, model in self.rows.values():
            if paper:
                worst = max(worst, abs(model - paper) / abs(paper))
        return worst


def run() -> Table1Result:
    """Compute Table I and the supporting cell comparison."""
    rom = rom_macro_spec()
    sram = sram_macro_spec()
    model_table = rom.table()

    result = Table1Result()
    for key, paper_value in TABLE1_PAPER.items():
        result.rows[key] = (paper_value, float(model_table[key]))

    # Fig. 2/4: cell areas relative to the proposed ROM cell.
    result.cell_comparison.append(("rom-1t", ROM_1T.area_um2, 1.0))
    result.cell_comparison.append(
        ("sram-6t", SRAM_6T.area_um2, SRAM_6T.relative_area(ROM_1T))
    )
    for cell in all_cim_cells():
        if cell is ROM_1T:
            continue
        result.cell_comparison.append(
            (cell.name, cell.area_um2, cell.relative_area(ROM_1T))
        )
    result.sram_density_ratio = rom.density_mb_mm2 / sram.density_mb_mm2
    return result


def format_report(result: Table1Result) -> str:
    lines = ["Table I: ROM-CiM macro specification (paper vs model)", "-" * 60]
    for key, (paper, model) in result.rows.items():
        lines.append(f"{key:32s} paper={paper:<12g} model={model:.4g}")
    lines.append("")
    lines.append("Cell comparison (vs proposed ROM 1T cell)")
    for name, area, ratio in result.cell_comparison:
        lines.append(f"  {name:18s} {area:.3f} um^2  ({ratio:.1f}x)")
    lines.append(f"ROM vs SRAM-CiM macro density ratio: {result.sram_density_ratio:.1f}x")
    return "\n".join(lines)
