"""Fig. 6(b) — Option II (ATL) transferability decay.

Freezing more and more of the early conv layers and retraining the rest
shows the paper's effect: the first layers transfer well, but accuracy
decays as deeper layers are frozen ("transferability decay when going
deep"), bottoming out at the classifier-only point (~4% loss in the
paper's sketch, much larger on harder migrations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets import classification_suite
from repro.experiments.common import (
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import TrainConfig, apply_atl


@dataclass
class Fig6bConfig:
    model: str = "vgg8"
    target: str = "medium"
    width_mult: float = 0.125
    pretrain_epochs: int = 12
    transfer_epochs: int = 10
    n_train: int = 300
    n_test: int = 300
    seed: int = 0
    #: Numbers of frozen leading conv layers to sweep (None = all counts).
    frozen_counts: Optional[tuple] = None


def fast_config() -> Fig6bConfig:
    return Fig6bConfig(
        width_mult=0.125,
        pretrain_epochs=6,
        transfer_epochs=4,
        n_train=160,
        n_test=128,
        frozen_counts=(0, 3, 6),
    )


def full_config() -> Fig6bConfig:
    return Fig6bConfig()


@dataclass
class AtlPoint:
    n_frozen_convs: int
    accuracy: float
    trainable_params: int


@dataclass
class Fig6bResult:
    source_accuracy: float = 0.0
    points: List[AtlPoint] = field(default_factory=list)

    def accuracies(self) -> List[float]:
        return [p.accuracy for p in self.points]


def run(config: Optional[Fig6bConfig] = None) -> Fig6bResult:
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    bundle = pretrain_classifier(
        config.model,
        suite,
        width_mult=config.width_mult,
        train_config=TrainConfig(
            epochs=config.pretrain_epochs, lr=2e-3, batch_size=64, seed=config.seed
        ),
        n_train=2 * config.n_train,
        n_test=config.n_test,
        seed=config.seed,
    )
    splits = suite.target_splits(
        config.target, n_train=config.n_train, n_test=config.n_test
    )

    probe = clone_with_new_head(bundle, splits.num_classes)
    from repro import nn  # local import to avoid cycle at module load

    n_convs = sum(1 for m in probe.modules() if isinstance(m, nn.Conv2d))
    counts = (
        config.frozen_counts
        if config.frozen_counts is not None
        else tuple(range(n_convs + 1))
    )

    result = Fig6bResult(source_accuracy=bundle.source_accuracy)
    train_cfg = TrainConfig(
        epochs=config.transfer_epochs, lr=2e-3, batch_size=64, seed=config.seed
    )
    for n_frozen in counts:
        model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
        apply_atl(model, min(n_frozen, n_convs))
        accuracy = transfer_and_evaluate(model, splits, train_cfg)
        result.points.append(
            AtlPoint(
                n_frozen_convs=int(min(n_frozen, n_convs)),
                accuracy=accuracy,
                trainable_params=sum(
                    p.size for p in model.parameters() if p.requires_grad
                ),
            )
        )
    return result
