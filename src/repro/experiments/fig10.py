"""Fig. 10 — ReBranch generalization analysis.

(a) Test accuracy of All-SRAM / All-ROM / ReBranch when transferring a
    source-pretrained model to each target task.
(b) Accuracy *and normalized memory area* of All-SRAM / All-ROM /
    DeepConv / ReBranch (area normalized to the All-SRAM baseline).

Paper reference points (VGG-8, CIFAR-100 source):
accuracy C100->CIFAR10 = 90.9 (AllSRAM) / 87.3 (AllROM) / 90.2
(ReBranch); ReBranch total area ~= 0.11-0.29x of All-SRAM; orderings
AllSRAM ~= ReBranch > DeepConv-area >> AllROM-accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets import classification_suite
from repro.experiments.common import (
    PretrainedBundle,
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import (
    METHOD_APPLIERS,
    TrainConfig,
    apply_rebranch,
    method_footprint,
)

METHODS = ("all_sram", "all_rom", "deep_conv", "rebranch")


@dataclass
class Fig10Config:
    """Budget knobs for the Fig. 10 runner."""

    models: tuple = ("vgg8", "resnet18")
    targets: tuple = ("near", "simple", "medium", "far")
    methods: tuple = METHODS
    width_mult: float = 0.125
    d: int = 4
    u: int = 4
    pretrain_epochs: int = 12
    transfer_epochs: int = 10
    n_train: int = 300
    n_test: int = 300
    seed: int = 0


def fast_config() -> Fig10Config:
    """Seconds-scale configuration for tests/benchmarks."""
    return Fig10Config(
        models=("vgg8",),
        targets=("near",),
        methods=("all_sram", "all_rom", "rebranch"),
        width_mult=0.125,
        pretrain_epochs=8,
        transfer_epochs=8,
        n_train=240,
        n_test=128,
    )


def full_config() -> Fig10Config:
    """The paper-scale configuration (scripts/run_full_experiments.py)."""
    return Fig10Config()


@dataclass
class MethodResult:
    model: str
    target: str
    method: str
    accuracy: float
    trainable_params: int
    rom_bits: int
    sram_bits: int
    area_mm2: float
    normalized_area: float


@dataclass
class Fig10Result:
    source_accuracy: Dict[str, float] = field(default_factory=dict)
    rows: List[MethodResult] = field(default_factory=list)

    def accuracy_table(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """model -> target -> method -> accuracy (Fig. 10a)."""
        table: Dict[str, Dict[str, Dict[str, float]]] = {}
        for row in self.rows:
            table.setdefault(row.model, {}).setdefault(row.target, {})[
                row.method
            ] = row.accuracy
        return table

    def area_table(self) -> Dict[str, Dict[str, float]]:
        """model -> method -> normalized area (Fig. 10b)."""
        table: Dict[str, Dict[str, float]] = {}
        for row in self.rows:
            table.setdefault(row.model, {})[row.method] = row.normalized_area
        return table


def _prepare(method: str, model, config: Fig10Config, seed: int):
    if method == "rebranch":
        return apply_rebranch(
            model, d=config.d, u=config.u, rng=np.random.default_rng(seed)
        )
    return METHOD_APPLIERS[method](model)


def run(config: Optional[Fig10Config] = None) -> Fig10Result:
    """Execute the Fig. 10 protocol and return all rows."""
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    result = Fig10Result()
    train_cfg = TrainConfig(
        epochs=config.transfer_epochs, lr=2e-3, batch_size=64, seed=config.seed
    )

    for model_name in config.models:
        bundle = pretrain_classifier(
            model_name,
            suite,
            width_mult=config.width_mult,
            train_config=TrainConfig(
                epochs=config.pretrain_epochs, lr=2e-3, batch_size=64, seed=config.seed
            ),
            n_train=2 * config.n_train,
            n_test=config.n_test,
            seed=config.seed,
        )
        result.source_accuracy[model_name] = bundle.source_accuracy

        baselines: Dict[str, float] = {}
        for target in config.targets:
            splits = suite.target_splits(
                target, n_train=config.n_train, n_test=config.n_test
            )
            for method in config.methods:
                model = clone_with_new_head(
                    bundle, splits.num_classes, seed=config.seed + 1
                )
                model = _prepare(method, model, config, seed=config.seed + 2)
                accuracy = transfer_and_evaluate(model, splits, train_cfg)
                footprint = method_footprint(model)
                if method == "all_sram":
                    baselines.setdefault(target, footprint.total_area_mm2)
                base_area = baselines.get(target, footprint.total_area_mm2)
                result.rows.append(
                    MethodResult(
                        model=model_name,
                        target=target,
                        method=method,
                        accuracy=accuracy,
                        trainable_params=sum(
                            p.size for p in model.parameters() if p.requires_grad
                        ),
                        rom_bits=footprint.rom_bits,
                        sram_bits=footprint.sram_bits,
                        area_mm2=footprint.total_area_mm2,
                        normalized_area=footprint.total_area_mm2 / base_area,
                    )
                )
    return result
