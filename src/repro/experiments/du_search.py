"""Automated D/U search (section 3.2's optimization goal).

Runs :mod:`repro.rebranch.search` with the standard training-based
evaluator: pretrain once on the suite's source task, then for every
candidate (D, U) apply ReBranch, fine-tune on the target task, and
measure accuracy plus the SRAM/ROM footprint.  The selection rule is
the paper's: smallest SRAM area within an accuracy tolerance of the
best candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets import classification_suite
from repro.experiments.common import (
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import TrainConfig, apply_rebranch, method_footprint
from repro.rebranch.search import (
    DuCandidate,
    DuEvaluation,
    DuSearchResult,
    search,
)


@dataclass
class DuSearchConfig:
    model_name: str = "vgg8"
    target: str = "medium"
    width_mult: float = 0.125
    pretrain_epochs: int = 10
    transfer_epochs: int = 8
    n_train: int = 256
    n_test: int = 192
    #: Allowed accuracy drop below the best candidate.
    tolerance: float = 0.02
    candidates: Optional[Sequence[Tuple[int, int]]] = None
    seed: int = 0


def fast_config() -> DuSearchConfig:
    return DuSearchConfig(
        pretrain_epochs=6,
        transfer_epochs=4,
        n_train=160,
        n_test=128,
        candidates=((2, 2), (4, 4), (8, 8)),
    )


def full_config() -> DuSearchConfig:
    return DuSearchConfig(
        pretrain_epochs=16,
        transfer_epochs=12,
        n_train=512,
        n_test=256,
        candidates=((1, 4), (2, 2), (2, 8), (4, 4), (8, 2), (4, 16), (8, 8), (16, 4)),
    )


def run(config: Optional[DuSearchConfig] = None) -> DuSearchResult:
    """Search the (D, U) grid for the minimum-area working point."""
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    bundle = pretrain_classifier(
        config.model_name,
        suite,
        width_mult=config.width_mult,
        train_config=TrainConfig(
            epochs=config.pretrain_epochs, lr=2e-3, batch_size=64, seed=config.seed
        ),
        n_train=2 * config.n_train,
        n_test=config.n_test,
        seed=config.seed,
    )
    splits = suite.target_splits(
        config.target, n_train=config.n_train, n_test=config.n_test
    )
    train_cfg = TrainConfig(
        epochs=config.transfer_epochs, lr=2e-3, batch_size=64, seed=config.seed
    )

    def evaluate(candidate: DuCandidate) -> DuEvaluation:
        model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed)
        apply_rebranch(
            model,
            d=candidate.d,
            u=candidate.u,
            rng=np.random.default_rng(config.seed + 1),
        )
        accuracy = transfer_and_evaluate(model, splits, train_cfg)
        footprint = method_footprint(model)
        return DuEvaluation(
            candidate=candidate,
            accuracy=accuracy,
            sram_area_mm2=footprint.sram_area_mm2,
            total_area_mm2=footprint.total_area_mm2,
            trainable_params=sum(
                p.size for p in model.parameters() if p.requires_grad
            ),
        )

    candidates = None
    if config.candidates is not None:
        candidates = [DuCandidate(d, u) for d, u in config.candidates]
    return search(evaluate, candidates=candidates, tolerance=config.tolerance)
