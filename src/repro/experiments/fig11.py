"""Fig. 11 — ReBranch hyper-parameter analysis.

(a) Accuracy and normalized area versus the overall branch compression
    ratio D*U in {4, 16, 64} (paper: 16x is the sweet spot — smaller
    ratios pay SRAM area, larger ratios lose accuracy).
(b) Accuracy versus the D-U split at constant D*U = 16:
    (1,16), (2,8), (4,4), (8,2), (16,1) — the paper peaks at D=U=4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets import classification_suite
from repro.experiments.common import (
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import TrainConfig, apply_rebranch, method_footprint

RATIO_SWEEP: Tuple[Tuple[int, int], ...] = ((2, 2), (4, 4), (8, 8))
SPLIT_SWEEP: Tuple[Tuple[int, int], ...] = ((1, 16), (2, 8), (4, 4), (8, 2), (16, 1))


@dataclass
class Fig11Config:
    models: tuple = ("vgg8", "resnet18")
    target: str = "medium"
    width_mult: float = 0.125
    pretrain_epochs: int = 12
    transfer_epochs: int = 10
    n_train: int = 300
    n_test: int = 300
    seed: int = 0
    ratio_sweep: Tuple[Tuple[int, int], ...] = RATIO_SWEEP
    split_sweep: Tuple[Tuple[int, int], ...] = SPLIT_SWEEP


def fast_config() -> Fig11Config:
    return Fig11Config(
        models=("vgg8",),
        width_mult=0.125,
        pretrain_epochs=8,
        transfer_epochs=6,
        n_train=200,
        n_test=128,
        ratio_sweep=((2, 2), (4, 4)),
        split_sweep=((2, 8), (4, 4), (8, 2)),
    )


def full_config() -> Fig11Config:
    return Fig11Config()


@dataclass
class SweepPoint:
    model: str
    d: int
    u: int
    accuracy: float
    rom_area_mm2: float
    sram_area_mm2: float
    normalized_area: float
    trainable_params: int

    @property
    def du(self) -> int:
        return self.d * self.u


@dataclass
class Fig11Result:
    ratio_points: List[SweepPoint] = field(default_factory=list)
    split_points: List[SweepPoint] = field(default_factory=list)

    def best_split(self, model: str) -> Tuple[int, int]:
        points = [p for p in self.split_points if p.model == model]
        best = max(points, key=lambda p: p.accuracy)
        return best.d, best.u


def _one_point(
    bundle, splits, d: int, u: int, baseline_area: float, train_cfg, seed: int
) -> SweepPoint:
    model = clone_with_new_head(bundle, splits.num_classes, seed=seed)
    apply_rebranch(model, d=d, u=u, rng=np.random.default_rng(seed + 1))
    accuracy = transfer_and_evaluate(model, splits, train_cfg)
    footprint = method_footprint(model)
    return SweepPoint(
        model=bundle.model_name,
        d=d,
        u=u,
        accuracy=accuracy,
        rom_area_mm2=footprint.rom_area_mm2,
        sram_area_mm2=footprint.sram_area_mm2,
        normalized_area=footprint.total_area_mm2 / baseline_area,
        trainable_params=sum(p.size for p in model.parameters() if p.requires_grad),
    )


def run(config: Optional[Fig11Config] = None) -> Fig11Result:
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    result = Fig11Result()
    train_cfg = TrainConfig(
        epochs=config.transfer_epochs, lr=2e-3, batch_size=64, seed=config.seed
    )
    for model_name in config.models:
        bundle = pretrain_classifier(
            model_name,
            suite,
            width_mult=config.width_mult,
            train_config=TrainConfig(
                epochs=config.pretrain_epochs, lr=2e-3, batch_size=64, seed=config.seed
            ),
            n_train=2 * config.n_train,
            n_test=config.n_test,
            seed=config.seed,
        )
        splits = suite.target_splits(
            config.target, n_train=config.n_train, n_test=config.n_test
        )
        # All-SRAM baseline area: the fully trainable model.
        baseline = clone_with_new_head(bundle, splits.num_classes)
        baseline_area = method_footprint(baseline.unfreeze()).total_area_mm2

        for d, u in config.ratio_sweep:
            result.ratio_points.append(
                _one_point(bundle, splits, d, u, baseline_area, train_cfg, config.seed)
            )
        for d, u in config.split_sweep:
            result.split_points.append(
                _one_point(bundle, splits, d, u, baseline_area, train_cfg, config.seed)
            )
    return result
