"""Chaos campaign study: availability, recovery time, degraded accuracy.

The chaos runtime (:mod:`repro.chaos`) makes faults a first-class,
replayable input to the sharded stream executor.  This study drives it
as an experiment, answering the three questions an operator of a
chiplet fleet would ask:

* **Availability under shard death** — a sweep of single-shard-death
  campaigns (death point and casualty rotate deterministically with the
  campaign index) measures the fraction of requested micro-batches
  delivered, how many were replayed vs dropped, and the wall-clock
  recovery split (re-plan vs engine restore).  Every campaign also
  checks the differential witness: each *delivered* micro-batch is
  bitwise identical to the clean unsharded oracle.
* **Recovery-time distribution** — the per-campaign recovery walls are
  aggregated into min/mean/max rows (warm restores from an artifact
  store, when a ``store`` is configured, separate from cold re-plans).
* **Accuracy vs fault corner** — degradation schedules (bit-line noise
  sigma, ADC drift ramps) open a window over the whole stream, and the
  delivered outputs are scored against the clean oracle: mean relative
  error and argmax agreement (the label-free accuracy proxy every other
  study here uses).  The zero-magnitude corner doubles as the bitwise
  identity witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.chaos import ADC_DRIFT, BITLINE_NOISE, ChaosController, FaultEvent, FaultSchedule, SHARD_DEATH
from repro.runtime import RuntimeConfig, compile_model, shard, stream_rng


@dataclass
class ChaosStudyConfig:
    """Campaign budget.

    ``model`` selects a zoo network (``resnet8``, ``mobilenet``, …)
    instead of the synthetic conv stack, exactly like the shard study.
    ``corners`` are ``(kind, magnitude)`` degradation corners for the
    accuracy table; magnitude is a count-domain noise sigma for
    ``bitline_noise`` and a count-domain offset step per micro-batch of
    window age for ``adc_drift``.
    """

    image_hw: int = 16
    channels: Sequence[int] = (8, 12, 12, 16)
    num_classes: int = 10
    n_batches: int = 8
    batch_size: int = 4
    n_shards: int = 2
    queue_depth: int = 2
    seed: int = 0
    n_campaigns: int = 3
    drop: int = 0
    corners: Sequence[Tuple[str, float]] = (
        (BITLINE_NOISE, 0.0),
        (BITLINE_NOISE, 0.5),
        (BITLINE_NOISE, 2.0),
        (ADC_DRIFT, 0.5),
        (ADC_DRIFT, 2.0),
    )
    model: Optional[str] = None
    width_mult: float = 0.25


def fast_config() -> ChaosStudyConfig:
    return ChaosStudyConfig(
        image_hw=12, channels=(6, 8, 8), n_batches=6, batch_size=2,
        n_campaigns=2,
    )


def full_config() -> ChaosStudyConfig:
    return ChaosStudyConfig(
        image_hw=20, channels=(12, 16, 16, 24), n_batches=64, batch_size=4,
        n_campaigns=6, drop=2,
        corners=(
            (BITLINE_NOISE, 0.0),
            (BITLINE_NOISE, 0.25),
            (BITLINE_NOISE, 0.5),
            (BITLINE_NOISE, 1.0),
            (BITLINE_NOISE, 2.0),
            (ADC_DRIFT, 0.25),
            (ADC_DRIFT, 0.5),
            (ADC_DRIFT, 1.0),
            (ADC_DRIFT, 2.0),
        ),
    )


@dataclass
class CampaignPoint:
    """One shard-death campaign."""

    campaign: int
    death_at: int
    dead_shard: int
    availability: float
    delivered: int
    dropped: int
    replayed: int
    replan_ms: float
    restore_ms: float
    recovery_ms: float
    warm_restored: bool
    delivered_bitwise: bool


@dataclass
class CornerPoint:
    """One degradation corner scored against the clean oracle."""

    kind: str
    magnitude: float
    mean_rel_err: float
    argmax_agreement: float
    bitwise_identical: bool


@dataclass
class ChaosStudyResult:
    n_batches: int = 0
    batch_samples: int = 0
    n_shards: int = 0
    campaigns: List[CampaignPoint] = field(default_factory=list)
    corners: List[CornerPoint] = field(default_factory=list)

    def campaign_rows(self) -> List[Tuple]:
        return [
            (
                p.campaign,
                p.death_at,
                p.dead_shard,
                round(p.availability, 3),
                p.dropped,
                p.replayed,
                round(p.replan_ms, 1),
                round(p.recovery_ms, 1),
                p.delivered_bitwise,
            )
            for p in self.campaigns
        ]

    def corner_rows(self) -> List[Tuple]:
        return [
            (
                p.kind,
                p.magnitude,
                f"{p.mean_rel_err:.2e}",
                round(p.argmax_agreement, 3),
                p.bitwise_identical,
            )
            for p in self.corners
        ]

    def recovery_summary(self) -> List[Tuple]:
        """min/mean/max recovery wall times over the campaign sweep."""
        walls = [p.recovery_ms for p in self.campaigns]
        if not walls:
            return []
        return [
            ("recovery_ms_min", round(min(walls), 1)),
            ("recovery_ms_mean", round(float(np.mean(walls)), 1)),
            ("recovery_ms_max", round(max(walls), 1)),
            (
                "availability_mean",
                round(float(np.mean([p.availability for p in self.campaigns])), 3),
            ),
        ]


def _build_model(config: ChaosStudyConfig) -> Tuple[nn.Module, RuntimeConfig]:
    if config.model is not None:
        from repro import models

        model = models.build_model(
            config.model,
            num_classes=config.num_classes,
            width_mult=config.width_mult,
            rng=np.random.default_rng(config.seed),
        )
        model.eval()
        # Zoo models carry BatchNorm; deployment folds it exactly once.
        return model, RuntimeConfig(fold_bn=True)
    rng = np.random.default_rng(config.seed)
    layers: List[nn.Module] = []
    width = 3
    for ch in config.channels:
        layers += [nn.Conv2d(width, ch, 3, padding=1, rng=rng), nn.ReLU()]
        width = ch
    hw = config.image_hw // 2
    layers += [
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(width * hw * hw, config.num_classes, rng=rng),
    ]
    return nn.Sequential(*layers), RuntimeConfig()


def run(config: ChaosStudyConfig = None) -> ChaosStudyResult:
    """Execute the campaign sweep and the degradation-corner table."""
    config = config if config is not None else fast_config()
    model, runtime_config = _build_model(config)
    compiled = compile_model(model, runtime_config)
    input_shape = (1, 3, config.image_hw, config.image_hw)
    batches = [
        np.random.default_rng([config.seed + 1, i]).normal(
            size=(config.batch_size, 3, config.image_hw, config.image_hw)
        )
        for i in range(config.n_batches)
    ]
    # Unsharded per-batch replay with the stream's per-batch RNGs: the
    # bitwise / accuracy oracle for every campaign and corner.
    oracle = [
        compiled.run(batch, rng=stream_rng(config.seed, i))[0]
        for i, batch in enumerate(batches)
    ]
    sharded = shard(compiled, config.n_shards, input_shape=input_shape)

    result = ChaosStudyResult(
        n_batches=config.n_batches,
        batch_samples=config.batch_size,
        n_shards=config.n_shards,
    )

    # -- shard-death campaigns ----------------------------------------
    for c in range(config.n_campaigns):
        death_at = 1 + c % max(config.n_batches - 1, 1)
        dead_shard = c % config.n_shards
        schedule = FaultSchedule(
            seed=config.seed + c,
            events=(
                FaultEvent(
                    kind=SHARD_DEATH,
                    shard=dead_shard,
                    at_index=death_at,
                    drop=config.drop,
                    label=f"campaign-{c}",
                ),
            ),
        )
        controller = ChaosController(schedule, input_shape=input_shape)
        stream = sharded.run_stream(
            batches,
            seed=config.seed,
            queue_depth=config.queue_depth,
            chaos=controller,
        )
        bitwise = all(
            np.array_equal(out, oracle[i])
            for i, out in stream.outputs_by_index.items()
        )
        recovery = stream.recoveries[0] if stream.recoveries else None
        result.campaigns.append(
            CampaignPoint(
                campaign=c,
                death_at=death_at,
                dead_shard=dead_shard,
                availability=stream.availability,
                delivered=stream.n_delivered,
                dropped=len(stream.dropped_indexes),
                replayed=len(recovery.replayed) if recovery else 0,
                replan_ms=(recovery.replan_s if recovery else 0.0) * 1e3,
                restore_ms=(recovery.restore_s if recovery else 0.0) * 1e3,
                recovery_ms=(recovery.wall_s if recovery else 0.0) * 1e3,
                warm_restored=bool(recovery and recovery.warm_restored),
                delivered_bitwise=bitwise,
            )
        )

    # -- degradation corners ------------------------------------------
    for kind, magnitude in config.corners:
        schedule = FaultSchedule(
            seed=config.seed,
            events=(
                FaultEvent(kind=kind, at_index=0, magnitude=magnitude),
            ),
        )
        controller = ChaosController(schedule)
        stream = sharded.run_stream(
            batches,
            seed=config.seed,
            queue_depth=config.queue_depth,
            chaos=controller,
        )
        rel_errs = []
        agree = 0
        total = 0
        bitwise = True
        for i, out in stream.outputs_by_index.items():
            ref = oracle[i]
            bitwise = bitwise and np.array_equal(out, ref)
            scale = np.abs(ref).max()
            rel_errs.append(
                float(np.abs(out - ref).max() / scale) if scale else 0.0
            )
            agree += int((out.argmax(axis=1) == ref.argmax(axis=1)).sum())
            total += ref.shape[0]
        result.corners.append(
            CornerPoint(
                kind=kind,
                magnitude=magnitude,
                mean_rel_err=float(np.mean(rel_errs)) if rel_errs else 0.0,
                argmax_agreement=agree / total if total else 1.0,
                bitwise_identical=bitwise,
            )
        )
    return result
