"""Kernel-backend autotuning study.

The question behind the pluggable-backend layer: how much serving wall
clock does the compile-time autotuner buy over the default
``reference-fast`` kernels, per engine and end to end?  The study
compiles the same model twice — once with the default kernels, once
with ``backend="auto"`` — replays an identical serving workload
(requests one sample at a time, the regime the ROADMAP targets)
through both, and verifies every output is bitwise identical.  The
autotuner's own per-engine probe timings and winners are surfaced
alongside, so a run shows *what* was picked and *why* in one table.

Tuning is a pure speed decision: every candidate the tuner may pick
was vetoed against the reference kernel bit for bit, so the study's
bitwise column is a re-check of an already-enforced contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.runtime import EngineCache, RuntimeConfig, compile_model
from repro.runtime.backends import clear_tune_cache


@dataclass
class BackendStudyConfig:
    """Study budget.

    ``model`` selects a zoo network instead of the synthetic MLP (built
    at ``width_mult`` for ``image_hw``-pixel inputs, BN folded).
    ``probe_n`` is the autotuner's probe batch width for linear engines
    — match it to the serving batch size being measured.
    """

    in_features: int = 1024
    layer_widths: Sequence[int] = (512, 256)
    num_classes: int = 10
    n_requests: int = 32
    repeats: int = 3
    seed: int = 0
    probe_n: int = 1
    model: Optional[str] = None
    width_mult: float = 0.25
    image_hw: int = 16


def fast_config() -> BackendStudyConfig:
    return BackendStudyConfig(
        in_features=256, layer_widths=(128,), n_requests=8, repeats=2
    )


def full_config() -> BackendStudyConfig:
    return BackendStudyConfig()


@dataclass
class EngineTuneRow:
    """One engine's autotuning outcome."""

    layer_id: str
    winner: str
    probe_timings_ms: dict
    cached: bool

    @property
    def speedup(self) -> float:
        ref = self.probe_timings_ms.get("reference-fast")
        won = self.probe_timings_ms.get(self.winner)
        return ref / won if ref and won else 1.0


@dataclass
class BackendStudyResult:
    compile_default_ms: float = 0.0
    compile_tuned_ms: float = 0.0
    n_calls: int = 0
    n_samples: int = 0
    default_ms: float = 0.0
    tuned_ms: float = 0.0
    bitwise_identical: bool = False
    engines: List[EngineTuneRow] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.default_ms / self.tuned_ms if self.tuned_ms else 0.0

    @property
    def default_samples_per_s(self) -> float:
        return self.n_samples / (self.default_ms / 1000.0) if self.default_ms else 0.0

    @property
    def tuned_samples_per_s(self) -> float:
        return self.n_samples / (self.tuned_ms / 1000.0) if self.tuned_ms else 0.0

    def rows(self) -> List[Tuple]:
        return [
            (
                row.layer_id,
                row.winner,
                round(row.probe_timings_ms.get("reference-fast", 0.0), 3),
                round(row.probe_timings_ms.get(row.winner, 0.0), 3),
                round(row.speedup, 2),
                row.cached,
            )
            for row in self.engines
        ]


def _build_model(config: BackendStudyConfig) -> Tuple[nn.Module, dict]:
    if config.model is not None:
        from repro import models

        model = models.build_model(
            config.model,
            num_classes=config.num_classes,
            width_mult=config.width_mult,
            rng=np.random.default_rng(config.seed),
        )
        model.eval()
        return model, {"fold_bn": True}
    rng = np.random.default_rng(config.seed)
    layers: List[nn.Module] = []
    width = config.in_features
    for next_width in config.layer_widths:
        layers += [nn.Linear(width, next_width, rng=rng), nn.ReLU()]
        width = next_width
    layers.append(nn.Linear(width, config.num_classes, rng=rng))
    return nn.Sequential(*layers), {}


def _requests(config: BackendStudyConfig) -> np.ndarray:
    rng = np.random.default_rng(config.seed + 1)
    if config.model is not None:
        return rng.normal(
            size=(config.n_requests, 3, config.image_hw, config.image_hw)
        )
    return rng.normal(size=(config.n_requests, config.in_features))


def _time_calls(fn, calls, repeats: int) -> Tuple[float, list]:
    best = float("inf")
    outputs = []
    for _ in range(repeats):
        outputs = []
        start = time.perf_counter()
        for x in calls:
            outputs.append(fn(x))
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, outputs


def run(config: BackendStudyConfig = None) -> BackendStudyResult:
    """Serve the same workload on default vs autotuned kernels."""
    config = config if config is not None else fast_config()
    model, extra = _build_model(config)
    requests = _requests(config)

    start = time.perf_counter()
    default = compile_model(
        model, RuntimeConfig(**extra), cache=EngineCache()
    )
    compile_default_ms = (time.perf_counter() - start) * 1000.0

    clear_tune_cache()  # honest tuned-compile timing: no prior decisions
    start = time.perf_counter()
    tuned = compile_model(
        model,
        RuntimeConfig(backend="auto", tune_probe_n=config.probe_n, **extra),
        cache=EngineCache(),
    )
    compile_tuned_ms = (time.perf_counter() - start) * 1000.0

    result = BackendStudyResult(
        compile_default_ms=compile_default_ms,
        compile_tuned_ms=compile_tuned_ms,
    )
    for slot in tuned._slots:
        engine = slot.engine_for(slot.predicted_signed)
        report = engine.tune_report
        if report is not None:
            result.engines.append(
                EngineTuneRow(
                    layer_id=slot.layer_id,
                    winner=report.winner,
                    probe_timings_ms=dict(report.timings_ms),
                    cached=report.cached,
                )
            )

    calls = [requests[i : i + 1] for i in range(config.n_requests)]
    for x in calls:  # warm both paths (einsum capture, page cache)
        default.run(x)
        tuned.run(x)
    default_ms, outs_d = _time_calls(lambda x: default.run(x)[0], calls, config.repeats)
    tuned_ms, outs_t = _time_calls(lambda x: tuned.run(x)[0], calls, config.repeats)
    result.n_calls = len(calls)
    result.n_samples = sum(x.shape[0] for x in calls)
    result.default_ms = default_ms
    result.tuned_ms = tuned_ms
    result.bitwise_identical = all(
        np.array_equal(a, b) for a, b in zip(outs_d, outs_t)
    )
    return result
