"""Fig. 6 — head-to-head study of the four flexibility options.

Runs Options I-IV of section 3.2 on the same transfer problem:

* **Option I (ROSL)** — frozen ROM feature extractor + TCAM prototype
  classifier, enrolled from k support shots per class.
* **Option II (ATL)** — freeze a prefix of conv layers, retrain the rest.
* **Option III (SPWD)** — 2-bit trainable SRAM decoration in parallel
  with the frozen 8-bit ROM convs.
* **Option IV (ReBranch)** — the proposed residual branch.

The paper's argument, reproduced here as orderings: ROSL is competitive
only at tiny support sets; ATL's savings are capped by transferability
decay; SPWD's area saving is capped at the bit-ratio (4x); ReBranch
reaches ~10x+ area saving at baseline-level accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.datasets import classification_suite
from repro.experiments.common import (
    PretrainedBundle,
    clone_with_new_head,
    pretrain_classifier,
    transfer_and_evaluate,
)
from repro.rebranch import (
    RoslClassifier,
    TrainConfig,
    apply_atl,
    apply_rebranch,
    convert_to_spwd,
    method_footprint,
)


@dataclass
class OptionsConfig:
    width_mult: float = 0.125
    target: str = "medium"
    pretrain_epochs: int = 8
    transfer_epochs: int = 6
    n_train: int = 200
    n_test: int = 128
    rosl_shots: int = 5
    atl_frozen_convs: int = 3
    spwd_bits: int = 2
    seed: int = 0


def fast_config() -> OptionsConfig:
    return OptionsConfig(pretrain_epochs=6, transfer_epochs=4, n_train=128, n_test=96)


def full_config() -> OptionsConfig:
    return OptionsConfig(pretrain_epochs=12, transfer_epochs=10, n_train=300, n_test=300)


@dataclass
class OptionRow:
    option: str
    accuracy: float
    sram_bits: int
    rom_bits: int
    normalized_area: float


@dataclass
class OptionsResult:
    source_accuracy: float = 0.0
    rows: List[OptionRow] = field(default_factory=list)

    def by_option(self) -> Dict[str, OptionRow]:
        return {row.option: row for row in self.rows}


def _rosl_row(
    bundle: PretrainedBundle, splits, shots: int, seed: int
) -> OptionRow:
    model = bundle.fresh(rng_seed=seed)
    extractor = nn.Sequential(
        model.feature_extractor(), nn.GlobalAvgPool2d(), nn.Flatten()
    )
    with nn.no_grad():
        probe = extractor(nn.Tensor(splits.x_train[:1]))
    feature_dim = probe.shape[1]
    rosl = RoslClassifier(extractor, feature_dim, splits.num_classes)

    rng = np.random.default_rng(seed)
    support_idx: List[int] = []
    for class_id in range(splits.num_classes):
        candidates = np.nonzero(splits.y_train == class_id)[0]
        take = min(shots, len(candidates))
        support_idx.extend(rng.choice(candidates, size=take, replace=False))
    rosl.fit(splits.x_train[support_idx], splits.y_train[support_idx])
    accuracy = rosl.accuracy(splits.x_test, splits.y_test)

    rom_bits = sum(p.size for p in extractor.parameters()) * 8
    return OptionRow(
        option="rosl",
        accuracy=accuracy,
        sram_bits=rosl.tcam.tcam_bits,
        rom_bits=rom_bits,
        normalized_area=0.0,  # filled by caller
    )


def run(config: Optional[OptionsConfig] = None) -> OptionsResult:
    config = config if config is not None else fast_config()
    suite = classification_suite(seed=config.seed)
    bundle = pretrain_classifier(
        "vgg8",
        suite,
        width_mult=config.width_mult,
        train_config=TrainConfig(
            epochs=config.pretrain_epochs, lr=2e-3, batch_size=64, seed=config.seed
        ),
        n_train=2 * config.n_train,
        n_test=config.n_test,
        seed=config.seed,
    )
    splits = suite.target_splits(config.target, config.n_train, config.n_test)
    train_cfg = TrainConfig(
        epochs=config.transfer_epochs, lr=2e-3, batch_size=64, seed=config.seed
    )
    result = OptionsResult(source_accuracy=bundle.source_accuracy)

    # Baseline: all-SRAM fully trainable (area normalizer).
    baseline = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
    baseline_acc = transfer_and_evaluate(baseline.unfreeze(), splits, train_cfg)
    baseline_fp = method_footprint(baseline)
    result.rows.append(
        OptionRow(
            "all_sram", baseline_acc, baseline_fp.sram_bits, baseline_fp.rom_bits, 1.0
        )
    )

    # Option I: ROSL (no gradient training; prototype enrolment only).
    rosl_row = _rosl_row(bundle, splits, config.rosl_shots, config.seed + 2)
    rosl_area = (
        rosl_row.rom_bits / 1e6 / baseline_fp.rom_spec.density_mb_mm2
        + rosl_row.sram_bits / 1e6 / baseline_fp.sram_spec.density_mb_mm2
    )
    rosl_row.normalized_area = rosl_area / baseline_fp.total_area_mm2
    result.rows.append(rosl_row)

    # Option II: ATL.
    model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
    apply_atl(model, config.atl_frozen_convs)
    acc = transfer_and_evaluate(model, splits, train_cfg)
    fp = method_footprint(model)
    result.rows.append(
        OptionRow("atl", acc, fp.sram_bits, fp.rom_bits, fp.normalized_to(baseline_fp))
    )

    # Option III: SPWD (2-bit parallel decoration, QAT through STE).
    model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
    convert_to_spwd(model, bits=config.spwd_bits, rng=np.random.default_rng(config.seed))
    acc = transfer_and_evaluate(model, splits, train_cfg)
    fp = method_footprint(model)
    result.rows.append(
        OptionRow("spwd", acc, fp.sram_bits, fp.rom_bits, fp.normalized_to(baseline_fp))
    )

    # Option IV: ReBranch (proposed).
    model = clone_with_new_head(bundle, splits.num_classes, seed=config.seed + 1)
    apply_rebranch(model, rng=np.random.default_rng(config.seed + 3))
    acc = transfer_and_evaluate(model, splits, train_cfg)
    fp = method_footprint(model)
    result.rows.append(
        OptionRow(
            "rebranch", acc, fp.sram_bits, fp.rom_bits, fp.normalized_to(baseline_fp)
        )
    )
    return result
