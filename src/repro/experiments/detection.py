"""Detection training/evaluation helpers shared by the Fig. 12 runner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.datasets.detection import SyntheticDetectionTask
from repro.eval.detection import mean_average_precision
from repro.models.darknet import DarknetBackbone
from repro.models.yolo import YoloDetector, decode_predictions, encode_targets, yolo_loss
from repro.nn.tensor import Tensor

#: Scaled-down backbone configs for numpy-trainable detectors.  Both
#: downsample by 8 so a 48x48 image yields a 6x6 prediction grid; the
#: "yolo" one mirrors DarkNet-19's 3x3/1x1 alternation, the "tiny" one
#: mirrors the Tiny-YOLO straight pipe with half the width.
SCALED_YOLO_CFG = (16, "M", 32, ("pw", 16), 32, "M", 64, ("pw", 32), 64, "M", 128)
SCALED_TINY_CFG = (8, "M", 16, "M", 32, "M", 48)


def build_scaled_detector(
    kind: str,
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> YoloDetector:
    """A numpy-trainable detector with the requested backbone family."""
    rng = rng if rng is not None else np.random.default_rng()
    if kind == "yolo":
        backbone = DarknetBackbone(SCALED_YOLO_CFG, rng=rng)
        head_channels = 128
    elif kind == "tiny":
        backbone = DarknetBackbone(SCALED_TINY_CFG, rng=rng)
        head_channels = 64
    else:
        raise ValueError(f"unknown scaled detector kind {kind!r}")
    return YoloDetector(
        backbone, num_classes, head_channels=head_channels, width_mult=1.0, rng=rng
    )


@dataclass
class DetectionTrainConfig:
    epochs: int = 12
    batch_size: int = 16
    lr: float = 2e-3
    seed: int = 0


def train_detector(
    model: YoloDetector,
    images: np.ndarray,
    boxes: Sequence[np.ndarray],
    labels: Sequence[np.ndarray],
    config: Optional[DetectionTrainConfig] = None,
) -> List[float]:
    """Train the unfrozen parameters of ``model``; returns epoch losses."""
    config = config if config is not None else DetectionTrainConfig()
    trainable = [p for p in model.parameters() if p.requires_grad]
    if not trainable:
        raise ValueError("detector has no trainable parameters")
    optimizer = nn.Adam(trainable, lr=config.lr)
    rng = np.random.default_rng(config.seed)

    with nn.no_grad():
        grid = model(Tensor(images[:1])).shape[-1]
    targets = encode_targets(boxes, labels, grid, model.num_classes)

    losses: List[float] = []
    n = len(images)
    model.train()
    for _ in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss, batches = 0.0, 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            optimizer.zero_grad()
            predictions = model(Tensor(images[idx]))
            loss = yolo_loss(predictions, targets[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    return losses


def evaluate_map(
    model: YoloDetector,
    images: np.ndarray,
    boxes: Sequence[np.ndarray],
    labels: Sequence[np.ndarray],
    score_threshold: float = 0.3,
) -> float:
    """mAP@0.5 of the detector on the given labelled images."""
    model.eval()
    with nn.no_grad():
        raw = model(Tensor(images)).data
    detections = decode_predictions(raw, score_threshold=score_threshold)
    model.train()
    return mean_average_precision(detections, boxes, labels, model.num_classes)


def sample_task(
    task: SyntheticDetectionTask, n_train: int, n_test: int, seed: int = 0
) -> Tuple:
    """Train/test draws from one detection task."""
    train = task.sample(n_train, np.random.default_rng(seed + 1))
    test = task.sample(n_test, np.random.default_rng(seed + 2))
    return train, test
