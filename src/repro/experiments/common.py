"""Shared infrastructure for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro import nn, models
from repro.datasets import TransferSuite, SuiteSplits
from repro.rebranch import TrainConfig, TransferTrainer


@dataclass
class PretrainedBundle:
    """A source-task-pretrained model plus everything needed to clone it."""

    model_name: str
    width_mult: float
    state: Dict[str, np.ndarray]
    source_classes: int
    source_accuracy: float
    hidden: int = 64

    def fresh(self, rng_seed: int = 0) -> nn.Module:
        """A new model instance loaded with the pretrained weights."""
        model = models.build_model(
            self.model_name,
            num_classes=self.source_classes,
            width_mult=self.width_mult,
            rng=np.random.default_rng(rng_seed),
        )
        model.load_state_dict(self.state)
        return model


def pretrain_classifier(
    model_name: str,
    suite: TransferSuite,
    width_mult: float = 0.125,
    train_config: Optional[TrainConfig] = None,
    n_train: int = 600,
    n_test: int = 300,
    seed: int = 0,
) -> PretrainedBundle:
    """Pretrain a scaled classifier on the suite's source task."""
    src = suite.source_splits(n_train=n_train, n_test=n_test)
    model = models.build_model(
        model_name,
        num_classes=src.num_classes,
        width_mult=width_mult,
        rng=np.random.default_rng(seed),
    )
    config = train_config if train_config is not None else TrainConfig(
        epochs=12, lr=2e-3, batch_size=64, seed=seed
    )
    result = TransferTrainer(model, config).fit(
        src.x_train, src.y_train, src.x_test, src.y_test
    )
    return PretrainedBundle(
        model_name=model_name,
        width_mult=width_mult,
        state=model.state_dict(),
        source_classes=src.num_classes,
        source_accuracy=result.test_accuracy,
    )


def clone_with_new_head(
    bundle: PretrainedBundle, num_classes: int, seed: int = 1
) -> nn.Module:
    """Pretrained feature extractor + a freshly initialized classifier.

    The standard transfer-learning surgery: target tasks have different
    class counts, so the classifier is replaced before any freezing
    policy is applied.
    """
    model = bundle.fresh(rng_seed=seed)
    rng = np.random.default_rng(seed + 1)
    if hasattr(model, "classifier"):  # VGG
        in_features = model.classifier[0].in_features
        model.classifier = nn.Sequential(
            nn.Linear(in_features, bundle.hidden, rng=rng),
            nn.ReLU(),
            nn.Linear(bundle.hidden, num_classes, rng=rng),
        )
    elif hasattr(model, "fc"):  # ResNet
        model.fc = nn.Linear(model.fc.in_features, num_classes, rng=rng)
    else:
        raise TypeError(f"don't know how to re-head a {type(model).__name__}")
    return model


def transfer_and_evaluate(
    model: nn.Module,
    splits: SuiteSplits,
    train_config: TrainConfig,
) -> float:
    """Fine-tune the (already policy-prepared) model; return test accuracy."""
    result = TransferTrainer(model, train_config).fit(
        splits.x_train, splits.y_train, splits.x_test, splits.y_test
    )
    return result.test_accuracy


def format_table(rows, headers) -> str:
    """Plain-text table used by the example scripts and CLI reports."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [
            f"{value:.3f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        text_rows.append(cells)
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(cells) for cells in text_rows)
    return "\n".join(lines)
